"""Pipeline-parallel training engine over the simulated cluster.

Stages are contiguous slices of a Sequential model placed on devices across
machines; micro-batches flow through point-to-point messages (which is what
Swift's tensor log taps).  Numerics are exact NumPy; timing comes from the
static schedule simulator so bubbles, iteration time, and the logging
budget all fall out of the same model (paper Sections 2.1, 5.1).

The engine is an *instruction-stream interpreter* (DeepSpeed-style): the
schedule is not code but data — a per-stage
:class:`~repro.parallel.instructions.ScheduleProgram` of
``LoadMicroBatch / Forward / Backward / Send* / Recv* / OptimizerStep``
instructions produced by a registered generator (``1f1b``, ``gpipe``,
``interleaved_1f1b``, or anything added via
:func:`repro.parallel.register_schedule`) and statically verified before
the first iteration.  Instructions execute in simulated global-time
order, so failures land exactly where the schedule places them — and
:class:`~repro.cluster.failures.FailurePhase.INSTRUCTION` failures can
land *between* any two named instructions.

Design notes:

* **Activation recomputation on backward.**  Layers cache a single forward
  activation set, but 1F1B keeps several micro-batches in flight per stage.
  Each stage therefore caches only its *input* per (chunk, micro-batch) and
  re-runs the forward just before the corresponding backward.  This is
  numerically identical (deterministic layers) and mirrors common
  activation checkpointing practice.
* **Per-stage iteration counters.**  Stages update as soon as their own
  backwards finish, at different simulated times (wait-free across stages),
  so a crash can catch stages on different iterations — the pipeline
  flavour of the crash-consistency problem (Section 6, "Update-undo ...
  surviving workers need to exchange their current iteration number").
* **Virtual stages.**  With ``len(partition_sizes) == v * len(placement)``
  each physical stage hosts ``v`` model chunks (chunk ``c`` on stage
  ``c % p``, Megatron-style); the stage's ``module`` is the combined
  slice (state/checkpoint shape is unchanged), while forward/backward run
  per chunk.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.cluster.clock import SimClock
from repro.cluster.failures import FailureEvent, FailurePhase
from repro.cluster.topology import Cluster
from repro.comm.p2p import Transport
from repro.errors import ConfigurationError, MachineFailure
from repro.nn.sequential import Sequential
from repro.obs import NULL_RECORDER
from repro.optim.base import Optimizer
from repro.parallel.instructions import (
    Instruction,
    ScheduleProgram,
    verify_program,
)
from repro.parallel.partition import partition_by_sizes
from repro.parallel.programs import build_program
from repro.parallel.results import IterationResult
from repro.parallel.schedules import (
    ScheduleTiming,
    StageOp,
    program_op_key,
    simulate_program,
)

__all__ = ["PipelineStage", "PipelineEngine"]

_COMPUTE = ("Forward", "Backward")


class PipelineStage:
    """One pipeline stage: its model chunk(s), optimizer, and mb caches."""

    #: apply stage updates through the vectorized flat kernels (bitwise
    #: equal to the per-parameter path; set False to force the eager loop)
    fused_updates = True

    def __init__(self, stage_id: int, module: Sequential, optimizer: Optimizer,
                 device, chunks: dict[int, Sequential] | None = None):
        self.stage_id = stage_id
        self.module = module
        self.optimizer = optimizer
        self.device = device
        self.iteration = 0
        #: model chunks hosted here, keyed by global chunk id; the layers
        #: are shared with :attr:`module` (flat pipelines: one chunk whose
        #: id is the stage id and whose module *is* ``module``)
        self.chunks: dict[int, Sequential] = (
            dict(chunks) if chunks is not None else {stage_id: module}
        )
        #: per-(chunk, microbatch) stage inputs, kept until the backward
        self.input_cache: dict[tuple[int, int], np.ndarray] = {}
        #: last-stage only: per-microbatch outputs for the loss
        self.output_cache: dict[int, np.ndarray] = {}
        self.updated_this_iteration = False

    @property
    def alive(self) -> bool:
        return self.device.alive

    @property
    def machine_id(self) -> int:
        return self.device.machine.machine_id

    def forward_mb(self, microbatch: int, x: np.ndarray,
                   chunk: int | None = None) -> np.ndarray:
        c = self.stage_id if chunk is None else chunk
        self.input_cache[(c, microbatch)] = x
        return self.chunks[c](x)

    def backward_mb(self, microbatch: int, grad: np.ndarray,
                    chunk: int | None = None) -> np.ndarray:
        # repopulate layer caches for this micro-batch, then backprop
        c = self.stage_id if chunk is None else chunk
        x = self.input_cache.pop((c, microbatch))
        module = self.chunks[c]
        module(x)
        return module.backward(grad)

    def step(self) -> None:
        if self.fused_updates and type(self.optimizer).supports_flat():
            self.optimizer.step_flat()
        else:
            self.optimizer.step()
        self.iteration += 1
        self.updated_this_iteration = True

    def undo(self) -> None:
        """Invert the latest update (update-undo, Section 4)."""
        self.optimizer.undo()
        self.iteration -= 1
        self.updated_this_iteration = False

    def clear_caches(self) -> None:
        self.input_cache.clear()
        self.output_cache.clear()

    def reset_transient(self) -> None:
        self.clear_caches()
        self.updated_this_iteration = False

    def full_state(self) -> dict[str, np.ndarray]:
        state = {f"model/{k}": v for k, v in self.module.state_dict().items()}
        state.update(
            {f"optim/{k}": v for k, v in self.optimizer.state_dict().items()}
        )
        state["iteration"] = np.array(self.iteration, dtype=np.int64)
        return state

    def load_full_state(self, state: dict[str, np.ndarray]) -> None:
        self.module.load_state_dict(
            {k[len("model/"):]: v for k, v in state.items() if k.startswith("model/")}
        )
        self.optimizer.load_state_dict(
            {k[len("optim/"):]: v for k, v in state.items() if k.startswith("optim/")}
        )
        self.iteration = int(state["iteration"])

    def dirty_full_state_keys(self) -> set[str]:
        """Keys of :meth:`full_state` changed since the last checkpoint.

        Mirrors ``DPWorker.dirty_full_state_keys``; the per-stage iteration
        counter advances every iteration, so it is always dirty.
        """
        keys = {f"optim/{k}" for k in self.optimizer.dirty_state_keys()}
        keys.update(f"model/{name}" for name in self.optimizer.dirty_params)
        keys.update(
            f"model/{name}"
            for name, _ in self.module.named_parameters()
            if name not in self.optimizer.params
        )
        keys.add("iteration")
        return keys

    def clear_dirty(self) -> None:
        self.optimizer.clear_dirty()


class PipelineEngine:
    """Interprets a verified schedule program with real numerics + sim timing.

    Parameters
    ----------
    model_factory:
        Deterministic zero-argument model builder; also used by recovery to
        rebuild failed stages' architecture.
    partition_sizes:
        Layer counts per model chunk.  ``len(partition_sizes)`` must be a
        multiple of ``len(placement)``; the multiple is the number of
        *virtual stages* per physical stage (1 for flat schedules).
    placement:
        ``(machine_id, device_idx)`` per physical stage.
    fwd_times / bwd_times:
        Per-stage simulated compute seconds per micro-batch (temporal layer
        only; defaults to uniform 1 ms / 2 ms).
    schedule:
        Name of a registered schedule generator (``repro schedule --list``).
    """

    def __init__(
        self,
        cluster: Cluster,
        model_factory: Callable[[], Sequential],
        partition_sizes: list[int],
        placement: list[tuple[int, int]],
        num_microbatches: int,
        opt_factory: Callable[[Sequential], Optimizer],
        loss_factory: Callable[[], object],
        task,
        clock: SimClock | None = None,
        fwd_times: list[float] | None = None,
        bwd_times: list[float] | None = None,
        schedule: str = "1f1b",
        comm_time: float = 0.0,
    ):
        if (
            not partition_sizes
            or not placement
            or len(partition_sizes) % len(placement) != 0
        ):
            raise ConfigurationError("one placement entry per stage required")
        if num_microbatches < 1:
            raise ConfigurationError("need at least one micro-batch")
        self.cluster = cluster
        self.model_factory = model_factory
        self.partition_sizes = list(partition_sizes)
        self.placement = list(placement)
        self.num_stages = len(placement)
        self.virtual_stages = len(partition_sizes) // len(placement)
        self.num_microbatches = num_microbatches
        self.opt_factory = opt_factory
        self.loss_factory = loss_factory
        self.task = task
        self.clock = clock or SimClock()
        self.fwd_times = fwd_times or [1e-3] * self.num_stages
        self.bwd_times = bwd_times or [2e-3] * self.num_stages
        self.schedule_name = schedule
        self.comm_time = comm_time

        # the schedule is data: generate, then statically verify before
        # anything executes (third-party schedules get the same treatment)
        self._program = build_program(
            schedule, self.num_stages, num_microbatches, self.virtual_stages
        )
        verify_program(self._program)

        chunk_modules = partition_by_sizes(model_factory(), partition_sizes)
        self.stages: list[PipelineStage] = []
        for sid, (machine_id, dev_idx) in enumerate(placement):
            device = cluster.device(machine_id, dev_idx)
            chunks = self._stage_chunks(sid, chunk_modules)
            module = self._combine_chunks(sid, chunks)
            self.stages.append(
                PipelineStage(sid, module, opt_factory(module), device,
                              chunks=chunks)
            )
        self.transport = Transport(
            cluster, {s.stage_id: s.device for s in self.stages}
        )
        self.iteration = 0
        #: instrumentation sink (replaced by the trainer/session when a
        #: TraceRecorder is attached)
        self.recorder = NULL_RECORDER
        self._timing_cache: ScheduleTiming | None = None
        self._order_cache: list[Instruction] | None = None
        #: per-iteration extra time charged by fault-tolerance machinery
        #: (logging spills, checkpoint stalls); callables appended by FT
        #: components receive the ScheduleTiming and return seconds
        self.overhead_hooks: list[Callable[[ScheduleTiming], tuple[str, float]]] = []

    # -- schedule/timing ----------------------------------------------------
    def program(self) -> ScheduleProgram:
        """The verified instruction stream this engine interprets."""
        return self._program

    def per_stage_ops(self) -> list[list[StageOp]]:
        """Classic compute-op view of the program (back-compat)."""
        return [
            [
                StageOp(i.stage, "F" if i.op == "Forward" else "B",
                        i.microbatch)
                for i in self._program.compute_instructions(s)
            ]
            for s in range(self.num_stages)
        ]

    def timing(self) -> ScheduleTiming:
        if self._timing_cache is None:
            self._timing_cache = simulate_program(
                self._program, self.fwd_times, self.bwd_times, self.comm_time
            )
        return self._timing_cache

    def stage_bubble_time(self, stage_id: int) -> float:
        return self.timing().stage_bubble[stage_id]

    def _execution_order(self) -> list[Instruction]:
        """All non-step instructions in simulated global-time order.

        Compute instructions are anchored at their simulated start time;
        a receive/load rides with the compute that consumes it and a send
        with the compute that produced it, so each classic schedule "op"
        (recv + compute + send) stays contiguous and the global order is
        exactly the pre-instruction-stream engine's op order for flat
        programs.
        """
        if self._order_cache is not None:
            return self._order_cache
        timing = self.timing()
        p, v = self.num_stages, self.virtual_stages
        keyed: list[tuple[float, int, int, Instruction]] = []
        for s, stream in enumerate(self._program.streams):
            starts: dict[int, float] = {
                idx: timing.op_times[
                    program_op_key(i.op, i.stage, i.chunk, i.microbatch, p, v)
                ][0]
                for idx, i in enumerate(stream)
                if i.op in _COMPUTE
            }
            anchors: list[float | None] = [None] * len(stream)
            nxt: float | None = None
            for idx in range(len(stream) - 1, -1, -1):
                if idx in starts:
                    nxt = starts[idx]
                anchors[idx] = nxt
            prev: float | None = None
            for idx, instr in enumerate(stream):
                if idx in starts:
                    prev = starts[idx]
                elif instr.op in ("SendActivation", "SendGrad"):
                    anchors[idx] = prev
            for idx, instr in enumerate(stream):
                if instr.op == "OptimizerStep":
                    continue
                anchor = anchors[idx]
                if anchor is None:
                    anchor = timing.stage_finish[s]
                keyed.append((anchor, s, idx, instr))
        keyed.sort(key=lambda t: t[:3])
        self._order_cache = [t[3] for t in keyed]
        return self._order_cache

    # -- state access ----------------------------------------------------------
    def stage(self, stage_id: int) -> PipelineStage:
        return self.stages[stage_id]

    def stages_on_machine(self, machine_id: int) -> list[PipelineStage]:
        return [s for s in self.stages if s.machine_id == machine_id]

    def machine_of_stage(self, stage_id: int) -> int:
        return self.placement[stage_id][0]

    def full_state(self) -> dict[int, dict[str, np.ndarray]]:
        return {s.stage_id: s.full_state() for s in self.stages}

    def _stage_chunks(
        self, stage_id: int, chunk_modules: list[Sequential]
    ) -> dict[int, Sequential]:
        return {
            c: chunk_modules[c]
            for c in range(len(chunk_modules))
            if c % self.num_stages == stage_id
        }

    def _combine_chunks(
        self, stage_id: int, chunks: dict[int, Sequential]
    ) -> Sequential:
        if self.virtual_stages == 1:
            return chunks[stage_id]
        combined = Sequential()
        for c in sorted(chunks):
            for layer in chunks[c].layers:
                combined.append(layer)
        return combined

    def build_stage_parts(
        self, stage_id: int
    ) -> tuple[Sequential, dict[int, Sequential]]:
        """Fresh (combined module, chunk map) for a stage (recovery path)."""
        chunk_modules = partition_by_sizes(
            self.model_factory(), self.partition_sizes
        )
        chunks = self._stage_chunks(stage_id, chunk_modules)
        return self._combine_chunks(stage_id, chunks), chunks

    def build_stage_module(self, stage_id: int) -> Sequential:
        """Rebuild a stage's architecture (recovery re-instantiates it)."""
        return self.build_stage_parts(stage_id)[0]

    def new_stage(self, stage_id: int, device) -> PipelineStage:
        """A freshly built stage (module + optimizer) on ``device``."""
        module, chunks = self.build_stage_parts(stage_id)
        return PipelineStage(
            stage_id, module, self.opt_factory(module), device, chunks=chunks
        )

    def state_nbytes(self, stage_id: int) -> int:
        return sum(
            int(np.asarray(v).nbytes)
            for v in self.stages[stage_id].full_state().values()
        )

    # -- micro-batch data ---------------------------------------------------
    def microbatches(self, iteration: int) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Deterministic micro-batch split of iteration's global batch."""
        x, y = self.task.batch(iteration)
        xs = np.array_split(x, self.num_microbatches)
        ys = np.array_split(y, self.num_microbatches)
        return xs, ys

    # -- execution ----------------------------------------------------------------
    def run_iteration(self, failure: FailureEvent | None = None) -> IterationResult:
        """One full pipeline iteration with optional failure injection.

        Instructions execute in simulated global-time order, so a crash
        interrupts the iteration exactly where the schedule places it —
        including *between* instructions for
        ``FailurePhase.INSTRUCTION`` failures.
        """
        live = [s for s in self.stages if s.alive]
        if len(live) != self.num_stages:
            raise MachineFailure(-1, "cannot run with failed stages; recover first")
        if failure is not None and failure.phase == FailurePhase.ITERATION_START:
            return self._fail(failure)

        timing = self.timing()
        order = self._execution_order()
        num_compute = sum(1 for i in order if i.op in _COMPUTE)
        xs, ys = self.microbatches(self.iteration)
        for s in self.stages:
            s.module.zero_grad()
            s.reset_transient()

        losses: list[float] = []
        fail_on_phase = (
            failure.phase.value if failure is not None else None
        )
        instruction_hits = 0
        last_chunk = self._program.num_chunks - 1
        flat = self.virtual_stages == 1
        #: transient per-iteration dataflow: values between recv/compute/send
        acts: dict[tuple[int, int], np.ndarray] = {}
        outs: dict[tuple[int, int], np.ndarray] = {}
        grads_in: dict[tuple[int, int], np.ndarray] = {}
        grads_out: dict[tuple[int, int], np.ndarray] = {}
        with self.recorder.span("engine/schedule", ops=num_compute):
            for instr in order:
                stage = self.stages[instr.stage]
                if failure is not None and stage.machine_id == failure.machine_id:
                    if (
                        fail_on_phase in ("forward", "backward")
                        and instr.op == (
                            "Forward" if fail_on_phase == "forward" else "Backward"
                        )
                        and instr.microbatch >= failure.after_updates
                    ):
                        return self._fail(failure)
                    if (
                        fail_on_phase == "instruction"
                        and instr.op == failure.instruction
                    ):
                        if instruction_hits >= failure.after_updates:
                            return self._fail(failure)
                        instruction_hits += 1
                key = (instr.chunk, instr.microbatch)
                if instr.op == "LoadMicroBatch":
                    acts[key] = xs[instr.microbatch]
                elif instr.op == "RecvActivation":
                    src = (instr.chunk - 1) % self.num_stages
                    msg = (
                        self.transport.recv(instr.stage, src)
                        if flat
                        else self.transport.recv_matching(instr.stage, src, "fwd")
                    )
                    acts[key] = msg.tensor
                elif instr.op == "Forward":
                    out = stage.forward_mb(
                        instr.microbatch, acts.pop(key), chunk=instr.chunk
                    )
                    if instr.chunk == last_chunk:
                        stage.output_cache[instr.microbatch] = out
                    else:
                        outs[key] = out
                elif instr.op == "SendActivation":
                    dst = (instr.chunk + 1) % self.num_stages
                    self.transport.send(
                        instr.stage, dst, outs.pop(key), self.iteration,
                        instr.microbatch, "fwd",
                    )
                elif instr.op == "RecvGrad":
                    src = (instr.chunk + 1) % self.num_stages
                    msg = (
                        self.transport.recv(instr.stage, src)
                        if flat
                        else self.transport.recv_matching(instr.stage, src, "bwd")
                    )
                    grads_in[key] = msg.tensor
                elif instr.op == "Backward":
                    if instr.chunk == last_chunk:
                        loss_fn = self.loss_factory()
                        out = stage.output_cache.pop(instr.microbatch)
                        losses.append(loss_fn(out, ys[instr.microbatch]))
                        grad = loss_fn.backward() / self.num_microbatches
                    else:
                        grad = grads_in.pop(key)
                    grad_in = stage.backward_mb(
                        instr.microbatch, grad, chunk=instr.chunk
                    )
                    if instr.chunk > 0:
                        grads_out[key] = grad_in
                else:  # SendGrad
                    dst = (instr.chunk - 1) % self.num_stages
                    self.transport.send(
                        instr.stage, dst, grads_out.pop(key), self.iteration,
                        instr.microbatch, "bwd",
                    )

        # wait-free per-stage updates in completion-time order (last stage
        # finishes its backwards first — Figure 1a)
        update_order = sorted(
            range(self.num_stages), key=lambda i: timing.stage_finish[i]
        )
        updates_done = 0
        with self.recorder.span("engine/optimizer"):
            for sid in update_order:
                if (
                    failure is not None
                    and failure.phase == FailurePhase.MID_UPDATE
                    and updates_done >= failure.after_updates
                ):
                    return self._fail(failure)
                if (
                    failure is not None
                    and fail_on_phase == "instruction"
                    and failure.instruction == "OptimizerStep"
                    and self.stages[sid].machine_id == failure.machine_id
                ):
                    if instruction_hits >= failure.after_updates:
                        return self._fail(failure)
                    instruction_hits += 1
                self.stages[sid].step()
                updates_done += 1

        self.iteration += 1
        overheads: dict[str, float] = {}
        for hook in self.overhead_hooks:
            label, seconds = hook(timing)
            overheads[label] = overheads.get(label, 0.0) + seconds
        sim_time = timing.iteration_time + sum(overheads.values())
        self.clock.advance(sim_time, "iteration", iteration=self.iteration - 1)
        return IterationResult(
            iteration=self.iteration - 1,
            loss=float(np.mean(losses)),
            sim_time=sim_time,
            overheads=overheads,
        )

    def _fail(self, failure: FailureEvent) -> IterationResult:
        self.cluster.fail_machine(failure.machine_id)
        self.cluster.kvstore.raise_failure(failure.machine_id, self.iteration)
        # the interrupted iteration is abandoned wholesale: no in-flight
        # message may survive into the post-recovery re-run
        self.transport.drop_all()
        # clear in-flight activation caches but KEEP the updated-this-
        # iteration marks: update-undo consumes them during recovery
        for s in self.stages:
            if s.alive:
                s.clear_caches()
        return IterationResult(
            iteration=self.iteration,
            failed=True,
            failed_machine=failure.machine_id,
        )
