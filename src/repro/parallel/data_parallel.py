"""Synchronous data-parallel training engine with wait-free updates.

Each worker holds a full model replica; per-iteration gradients are
all-reduced and every replica applies the same update (paper Section 2.1).
Updates are *wait-free and layer-wise* (Section 2.3, Figure 4): a parameter
is updated as soon as its gradient is synchronized, so a machine crash can
strike between two parameter updates, leaving survivors partially updated —
the crash-consistency problem that update-undo repairs.

The engine keeps replicas bit-identical across workers (same deterministic
init, same reduced gradients, same update order), which is the invariant
replication-based recovery exploits.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.cluster.clock import SimClock
from repro.cluster.failures import FailureEvent, FailurePhase
from repro.cluster.topology import Cluster
from repro.comm.collectives import CollectiveGroup
from repro.errors import ConfigurationError, MachineFailure
from repro.nn.module import Module
from repro.nn.sequential import Sequential
from repro.optim.base import Optimizer
from repro.parallel.results import IterationResult

__all__ = ["DPWorker", "DataParallelEngine"]


class DPWorker:
    """One data-parallel worker: a replica, its optimizer, and undo marks."""

    def __init__(self, rank: int, device, model: Module, optimizer: Optimizer):
        self.rank = rank
        self.device = device
        self.model = model
        self.optimizer = optimizer
        self.iteration = 0
        #: parameter names updated in the current (possibly interrupted)
        #: update phase — the marks update-undo consumes (Section 6)
        self.updated_params: list[str] = []

    @property
    def alive(self) -> bool:
        return self.device.alive

    @property
    def machine_id(self) -> int:
        return self.device.machine.machine_id

    def model_state(self) -> dict[str, np.ndarray]:
        return self.model.state_dict()

    def full_state(self) -> dict[str, np.ndarray]:
        """Model + optimizer state — the paper's "model state"."""
        state = {f"model/{k}": v for k, v in self.model.state_dict().items()}
        state.update(
            {f"optim/{k}": v for k, v in self.optimizer.state_dict().items()}
        )
        return state

    def load_full_state(self, state: dict[str, np.ndarray]) -> None:
        self.model.load_state_dict(
            {k[len("model/"):]: v for k, v in state.items() if k.startswith("model/")}
        )
        self.optimizer.load_state_dict(
            {k[len("optim/"):]: v for k, v in state.items() if k.startswith("optim/")}
        )

    def dirty_full_state_keys(self) -> set[str]:
        """Keys of :meth:`full_state` changed since the last checkpoint.

        Optimizer-tracked parameters come from its dirty report; parameters
        the optimizer does not manage (``requires_grad=False`` leaves such
        as batch-norm running statistics, which mutate silently during the
        forward pass) are conservatively always reported dirty.
        """
        keys = {f"optim/{k}" for k in self.optimizer.dirty_state_keys()}
        keys.update(f"model/{name}" for name in self.optimizer.dirty_params)
        keys.update(
            f"model/{name}"
            for name, _ in self.model.named_parameters()
            if name not in self.optimizer.params
        )
        return keys

    def clear_dirty(self) -> None:
        self.optimizer.clear_dirty()


class DataParallelEngine:
    """Drives synchronous DP training over a simulated cluster.

    Parameters
    ----------
    model_factory:
        Zero-argument callable returning a freshly initialized model.  It
        must be deterministic so all replicas start identical (the paper's
        setting: replicas are exact copies).
    placement:
        One ``(machine_id, device_idx)`` per worker.
    compute_time_fn:
        Maps a per-worker shard size to simulated forward+backward seconds
        (the temporal layer; defaults to a throughput-neutral constant).
    """

    def __init__(
        self,
        cluster: Cluster,
        model_factory: Callable[[], Module],
        opt_factory: Callable[[Module], Optimizer],
        loss_factory: Callable[[], object],
        task,
        placement: list[tuple[int, int]],
        clock: SimClock | None = None,
        compute_time_fn: Callable[[int], float] | None = None,
    ):
        if len(placement) < 1:
            raise ConfigurationError("need at least one worker")
        self.cluster = cluster
        self.model_factory = model_factory
        self.opt_factory = opt_factory
        self.loss_factory = loss_factory
        self.task = task
        self.clock = clock or SimClock()
        self.compute_time_fn = compute_time_fn or (lambda n: 1e-3 * max(n, 1))
        self.workers: list[DPWorker] = []
        for rank, (machine_id, dev_idx) in enumerate(placement):
            device = cluster.device(machine_id, dev_idx)
            model = model_factory()
            self.workers.append(DPWorker(rank, device, model, opt_factory(model)))
        self.group = CollectiveGroup(
            cluster, {w.rank: w.device for w in self.workers}
        )
        #: update order: reverse parameter order, approximating gradients
        #: becoming ready from the output layer backwards (Figure 4)
        self.update_order: list[str] = [
            name for name, _ in self.workers[0].model.named_parameters()
        ][::-1]
        self.iteration = 0

    # -- queries ------------------------------------------------------------
    def alive_workers(self) -> list[DPWorker]:
        return [w for w in self.workers if w.alive]

    def worker(self, rank: int) -> DPWorker:
        return self.workers[rank]

    def state_nbytes(self) -> int:
        w = self.workers[0]
        return sum(int(np.asarray(v).nbytes) for v in w.full_state().values())

    def replicas_consistent(self) -> bool:
        """Bitwise agreement of all live replicas — the core DP invariant."""
        live = self.alive_workers()
        if len(live) < 2:
            return True
        ref = live[0].model.state_dict()
        return all(
            all(np.array_equal(ref[k], w.model.state_dict()[k]) for k in ref)
            for w in live[1:]
        )

    # -- the iteration ----------------------------------------------------------
    def run_iteration(
        self,
        failure: FailureEvent | None = None,
        survivor_progress: dict[int, int] | None = None,
    ) -> IterationResult:
        """Execute one synchronous DP iteration, optionally crashing.

        ``failure`` with phase ``MID_UPDATE`` kills the target machine after
        ``after_updates`` parameters have been updated; surviving workers
        stop at ``survivor_progress[rank]`` updates (default: the same
        count), reproducing the partially-updated state of Figure 4/5.
        """
        live = self.alive_workers()
        if not live:
            raise MachineFailure(-1, "no live workers")
        x, y = self.task.batch(self.iteration)
        shards = np.array_split(np.arange(len(x)), len(live))

        if failure is not None and failure.phase == FailurePhase.ITERATION_START:
            return self._fail(failure)

        # forward/backward on each live replica's shard
        losses = []
        t_compute = 0.0
        for w, idx in zip(live, shards):
            w.model.zero_grad()
            w.updated_params = []
            loss_fn = self.loss_factory()
            out = w.model(x[idx])
            losses.append(loss_fn(out, y[idx]))
            w.model.backward(loss_fn.backward())
            t_compute = max(t_compute, self.compute_time_fn(len(idx)))

        if failure is not None and failure.phase in (
            FailurePhase.FORWARD,
            FailurePhase.BACKWARD,
        ):
            # crash before any gradient synchronization completed: nobody
            # updated anything, survivors remain at iteration start state
            return self._fail(failure)

        # gradient synchronization (per-parameter ring all-reduce)
        grad_bytes = 0
        params_by_rank = [dict(w.model.named_parameters()) for w in self.workers]
        for name in self.update_order:
            buffers = {w.rank: params_by_rank[w.rank][name].grad for w in live}
            reduced = self.group.allreduce_mean(buffers)
            grad_bytes += int(reduced.nbytes)
            for w in live:
                params_by_rank[w.rank][name].grad = np.array(reduced, copy=True)
        t_comm = self.group.allreduce_time(grad_bytes)

        # wait-free layer-wise update
        mid_update = (
            failure is not None and failure.phase == FailurePhase.MID_UPDATE
        )
        for w in live:
            budget = len(self.update_order)
            if mid_update:
                if w.machine_id == failure.machine_id:
                    budget = failure.after_updates
                else:
                    budget = (survivor_progress or {}).get(
                        w.rank, failure.after_updates
                    )
                budget = min(budget, len(self.update_order))
            for name in self.update_order[:budget]:
                w.optimizer.step_param(name)
                w.updated_params.append(name)
            if not mid_update or budget == len(self.update_order):
                if not mid_update:
                    w.iteration += 1
                    w.updated_params = []

        if mid_update:
            return self._fail(failure, sim_time=t_compute + t_comm)

        self.iteration += 1
        self.clock.advance(t_compute + t_comm, "iteration", iteration=self.iteration)
        return IterationResult(
            iteration=self.iteration - 1,
            loss=float(np.mean(losses)),
            sim_time=t_compute + t_comm,
        )

    def _fail(self, failure: FailureEvent, sim_time: float = 0.0) -> IterationResult:
        self.cluster.fail_machine(failure.machine_id)
        self.cluster.kvstore.raise_failure(failure.machine_id, self.iteration)
        if sim_time:
            self.clock.advance(sim_time, "partial_iteration")
        return IterationResult(
            iteration=self.iteration,
            failed=True,
            failed_machine=failure.machine_id,
            sim_time=sim_time,
        )

    # -- recovery hooks (used by repro.core.replication) -----------------------
    def rebuild_worker(self, rank: int) -> DPWorker:
        """Recreate a worker object on its (replaced) device."""
        old = self.workers[rank]
        model = self.model_factory()
        worker = DPWorker(rank, old.device, model, self.opt_factory(model))
        self.workers[rank] = worker
        return worker
