"""Synchronous data-parallel training engine with wait-free updates.

Each worker holds a full model replica; per-iteration gradients are
all-reduced and every replica applies the same update (paper Section 2.1).
Updates are *wait-free and layer-wise* (Section 2.3, Figure 4): a parameter
is updated as soon as its gradient is synchronized, so a machine crash can
strike between two parameter updates, leaving survivors partially updated —
the crash-consistency problem that update-undo repairs.

The engine keeps replicas bit-identical across workers (same deterministic
init, same reduced gradients, same update order), which is the invariant
replication-based recovery exploits.

Two bitwise-equivalent execution paths exist for the reduce+update half of
the iteration:

* the **eager** path (``fused=False``) issues one all-reduce and one
  ``step_param`` per parameter per replica — the reference semantics;
* the **fused** path (default) accumulates gradients straight into each
  replica's flat arena (:mod:`repro.utils.flat`), synchronizes them with a
  *single* all-reduce over one contiguous buffer, and applies vectorized
  optimizer kernels.  Because replicas are bit-identical, the update runs
  *once* on a canonical replica; surviving replicas adopt read-only
  copy-on-write views of the canonical arena (they track every in-place
  arena update for free, and accidental in-place writes raise).  Failure
  injection — or any replica whose leaves stopped aliasing the canonical
  arena — automatically falls back to divergent per-replica state, so
  MID_UPDATE crash budgets, update-undo, and recovery see exactly the
  states the eager path would produce.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.cluster.clock import SimClock
from repro.cluster.failures import FailureEvent, FailurePhase
from repro.cluster.topology import Cluster
from repro.comm.collectives import CollectiveGroup
from repro.errors import ConfigurationError, MachineFailure
from repro.nn.module import Module
from repro.nn.sequential import Sequential
from repro.obs import NULL_RECORDER
from repro.optim.base import Optimizer
from repro.parallel.results import IterationResult
from repro.utils.flat import FlatBuffer

__all__ = ["DPWorker", "DataParallelEngine"]


class DPWorker:
    """One data-parallel worker: a replica, its optimizer, and undo marks."""

    def __init__(self, rank: int, device, model: Module, optimizer: Optimizer):
        self.rank = rank
        self.device = device
        self.model = model
        self.optimizer = optimizer
        self.iteration = 0
        #: parameter names updated in the current (possibly interrupted)
        #: update phase — the marks update-undo consumes (Section 6)
        self.updated_params: list[str] = []
        #: fused-path caches: (arena, [(Parameter, grad view)]) pairs for
        #: seeding, and [(Parameter, reduced view)] for the post-reduce
        #: rebind — rebuilt whenever the backing buffers change identity
        self._seed_pairs: tuple | None = None
        self._grad_pairs: tuple | None = None

    @property
    def alive(self) -> bool:
        return self.device.alive

    @property
    def machine_id(self) -> int:
        return self.device.machine.machine_id

    def model_state(self) -> dict[str, np.ndarray]:
        return self.model.state_dict()

    def full_state(self) -> dict[str, np.ndarray]:
        """Model + optimizer state — the paper's "model state"."""
        state = {f"model/{k}": v for k, v in self.model.state_dict().items()}
        state.update(
            {f"optim/{k}": v for k, v in self.optimizer.state_dict().items()}
        )
        return state

    def load_full_state(self, state: dict[str, np.ndarray]) -> None:
        self.model.load_state_dict(
            {k[len("model/"):]: v for k, v in state.items() if k.startswith("model/")}
        )
        self.optimizer.load_state_dict(
            {k[len("optim/"):]: v for k, v in state.items() if k.startswith("optim/")}
        )

    def dirty_full_state_keys(self) -> set[str]:
        """Keys of :meth:`full_state` changed since the last checkpoint.

        Optimizer-tracked parameters come from its dirty report; parameters
        the optimizer does not manage (``requires_grad=False`` leaves such
        as batch-norm running statistics, which mutate silently during the
        forward pass) are conservatively always reported dirty.
        """
        keys = {f"optim/{k}" for k in self.optimizer.dirty_state_keys()}
        keys.update(f"model/{name}" for name in self.optimizer.dirty_params)
        keys.update(
            f"model/{name}"
            for name, _ in self.model.named_parameters()
            if name not in self.optimizer.params
        )
        return keys

    def clear_dirty(self) -> None:
        self.optimizer.clear_dirty()


class DataParallelEngine:
    """Drives synchronous DP training over a simulated cluster.

    Parameters
    ----------
    model_factory:
        Zero-argument callable returning a freshly initialized model.  It
        must be deterministic so all replicas start identical (the paper's
        setting: replicas are exact copies).
    placement:
        One ``(machine_id, device_idx)`` per worker.
    compute_time_fn:
        Maps a per-worker shard size to simulated forward+backward seconds
        (the temporal layer; defaults to a throughput-neutral constant).
    """

    def __init__(
        self,
        cluster: Cluster,
        model_factory: Callable[[], Module],
        opt_factory: Callable[[Module], Optimizer],
        loss_factory: Callable[[], object],
        task,
        placement: list[tuple[int, int]],
        clock: SimClock | None = None,
        compute_time_fn: Callable[[int], float] | None = None,
        fused: bool = True,
    ):
        if len(placement) < 1:
            raise ConfigurationError("need at least one worker")
        self.cluster = cluster
        self.model_factory = model_factory
        self.opt_factory = opt_factory
        self.loss_factory = loss_factory
        self.task = task
        self.clock = clock or SimClock()
        #: instrumentation sink (replaced by the trainer/session when a
        #: TraceRecorder is attached); the null default keeps the fused hot
        #: path bitwise-identical and within the bench_obs_overhead budget
        self.recorder = NULL_RECORDER
        self.compute_time_fn = compute_time_fn or (lambda n: 1e-3 * max(n, 1))
        self.workers: list[DPWorker] = []
        for rank, (machine_id, dev_idx) in enumerate(placement):
            device = cluster.device(machine_id, dev_idx)
            model = model_factory()
            self.workers.append(DPWorker(rank, device, model, opt_factory(model)))
        self.group = CollectiveGroup(
            cluster, {w.rank: w.device for w in self.workers}
        )
        #: update order: reverse parameter order, approximating gradients
        #: becoming ready from the output layer backwards (Figure 4)
        self.update_order: list[str] = [
            name for name, _ in self.workers[0].model.named_parameters()
        ][::-1]
        self.iteration = 0
        #: fused flat-buffer reduce+update path (bitwise-equal to eager)
        self.fused = bool(fused)
        opt0 = self.workers[0].optimizer
        self._fusable = type(opt0).supports_flat() and all(
            name in opt0.params for name in self.update_order
        )
        #: fused all-reduce output, shared read-only by every replica's grads
        self._reduced: FlatBuffer | None = None
        #: worker whose arena the other replicas currently COW-share
        self._canonical: DPWorker | None = None

    # -- queries ------------------------------------------------------------
    def alive_workers(self) -> list[DPWorker]:
        return [w for w in self.workers if w.alive]

    def worker(self, rank: int) -> DPWorker:
        return self.workers[rank]

    def state_nbytes(self) -> int:
        w = self.workers[0]
        return sum(int(np.asarray(v).nbytes) for v in w.full_state().values())

    def replicas_consistent(self) -> bool:
        """Bitwise agreement of all live replicas — the core DP invariant."""
        live = self.alive_workers()
        if len(live) < 2:
            return True
        ref = live[0].model.state_dict()
        return all(
            all(np.array_equal(ref[k], w.model.state_dict()[k]) for k in ref)
            for w in live[1:]
        )

    # -- the iteration ----------------------------------------------------------
    def run_iteration(
        self,
        failure: FailureEvent | None = None,
        survivor_progress: dict[int, int] | None = None,
    ) -> IterationResult:
        """Execute one synchronous DP iteration, optionally crashing.

        ``failure`` with phase ``MID_UPDATE`` kills the target machine after
        ``after_updates`` parameters have been updated; surviving workers
        stop at ``survivor_progress[rank]`` updates (default: the same
        count), reproducing the partially-updated state of Figure 4/5.
        """
        live = self.alive_workers()
        if not live:
            raise MachineFailure(-1, "no live workers")
        x, y = self.task.batch(self.iteration)
        shards = np.array_split(np.arange(len(x)), len(live))

        if failure is not None and failure.phase == FailurePhase.ITERATION_START:
            return self._fail(failure)

        # forward/backward on each live replica's shard
        use_fused = self.fused and self._fusable
        losses = []
        t_compute = 0.0
        with self.recorder.span("engine/forward_backward"):
            for w, idx in zip(live, shards):
                if use_fused:
                    # accumulate gradients straight into the flat arena so
                    # the reduce needs no per-parameter gather (covers every
                    # parameter, so no separate zero_grad pass is needed)
                    self._seed_grads(w)
                else:
                    w.model.zero_grad()
                w.updated_params = []
                loss_fn = self.loss_factory()
                out = w.model(x[idx])
                losses.append(loss_fn(out, y[idx]))
                w.model.backward(loss_fn.backward())
                t_compute = max(t_compute, self.compute_time_fn(len(idx)))

        if failure is not None and failure.phase in (
            FailurePhase.FORWARD,
            FailurePhase.BACKWARD,
        ):
            # crash before any gradient synchronization completed: nobody
            # updated anything, survivors remain at iteration start state
            return self._fail(failure)

        if use_fused:
            return self._finish_fused(
                live, losses, t_compute, failure, survivor_progress
            )

        # gradient synchronization (per-parameter ring all-reduce)
        grad_bytes = 0
        params_by_rank = [dict(w.model.named_parameters()) for w in self.workers]
        with self.recorder.span("engine/allreduce") as sp:
            for name in self.update_order:
                buffers = {w.rank: params_by_rank[w.rank][name].grad for w in live}
                reduced = self.group.allreduce_mean(buffers)
                grad_bytes += int(reduced.nbytes)
                for w in live:
                    params_by_rank[w.rank][name].grad = np.array(reduced, copy=True)
            sp.set(bytes=grad_bytes)
        t_comm = self.group.allreduce_time(grad_bytes)

        # wait-free layer-wise update
        mid_update = (
            failure is not None and failure.phase == FailurePhase.MID_UPDATE
        )
        with self.recorder.span("engine/optimizer"):
            for w in live:
                budget = len(self.update_order)
                if mid_update:
                    if w.machine_id == failure.machine_id:
                        budget = failure.after_updates
                    else:
                        budget = (survivor_progress or {}).get(
                            w.rank, failure.after_updates
                        )
                    budget = min(budget, len(self.update_order))
                for name in self.update_order[:budget]:
                    w.optimizer.step_param(name)
                    w.updated_params.append(name)
                if not mid_update:
                    w.iteration += 1
                    w.updated_params = []

        if mid_update:
            return self._fail(failure, sim_time=t_compute + t_comm)

        self.iteration += 1
        self.clock.advance(t_compute + t_comm, "iteration", iteration=self.iteration)
        return IterationResult(
            iteration=self.iteration - 1,
            loss=float(np.mean(losses)),
            sim_time=t_compute + t_comm,
        )

    # -- fused flat-buffer reduce + update --------------------------------------
    def _finish_fused(
        self,
        live: list[DPWorker],
        losses: list[float],
        t_compute: float,
        failure: FailureEvent | None,
        survivor_progress: dict[int, int] | None,
    ) -> IterationResult:
        """Fused tail of the iteration: one all-reduce, one (shared) update.

        Bitwise-equivalent to the eager tail: the reduce sums the same
        per-rank values in the same order over one contiguous buffer, and
        the vectorized kernels perform the same elementwise arithmetic as
        ``step_param`` — verified end-to-end by ``tests/test_flat.py`` and
        gated in ``benchmarks/bench_step.py``.
        """
        order = self.update_order
        if self._reduced is None:
            opt0 = self.workers[0].optimizer
            self._reduced = FlatBuffer(
                {n: opt0.params[n].data.shape for n in order}, order
            )
        with self.recorder.span("engine/allreduce") as sp:
            buffers = {
                w.rank: w.optimizer.flat_arena(order).grads.data for w in live
            }
            self.group.allreduce_mean(buffers, out=self._reduced.data)
            grad_bytes = self._reduced.nbytes
            sp.set(bytes=grad_bytes)
            # every replica reads the same reduced gradients (undo consumes
            # them); read-only views make accidental in-place writes loud
            for w in live:
                cache = w._grad_pairs
                if cache is None or cache[0] is not self._reduced:
                    gviews = self._reduced.frozen_views()
                    w._grad_pairs = (self._reduced, [
                        (w.optimizer.params[name], gviews[name]) for name in order
                    ])
                    cache = w._grad_pairs
                for param, view in cache[1]:
                    param.grad = view
        t_comm = self.group.allreduce_time(grad_bytes)

        if failure is not None and failure.phase == FailurePhase.MID_UPDATE:
            # failure injection: replicas stop at different update budgets,
            # so every replica needs divergent private state — privatize
            # COW followers first (their views alias the canonical arena,
            # which the canonical's bind/update would otherwise mutate)
            prev_canon, self._canonical = self._canonical, None
            for w in sorted(live, key=lambda w: w is prev_canon):
                w.optimizer.bind_flat(order)
            for w in live:
                if w.machine_id == failure.machine_id:
                    budget = failure.after_updates
                else:
                    budget = (survivor_progress or {}).get(
                        w.rank, failure.after_updates
                    )
                budget = min(budget, len(order))
                w.updated_params = list(
                    w.optimizer.step_flat(
                        count=budget, order=order, grads=self._reduced.data
                    )
                )
            return self._fail(failure, sim_time=t_compute + t_comm)

        canon = live[0]
        with self.recorder.span("engine/optimizer"):
            if self._sharing_valid(live, canon):
                # replicas are bit-identical and share the canonical arena:
                # compute the update once; followers see it through their
                # views
                canon.optimizer.step_flat(order=order, grads=self._reduced.data)
                for w in live:
                    if w is not canon:
                        self._sync_follower_scalars(w, canon)
            else:
                # divergent/unverified replicas: fused compute on every one,
                # then re-establish canonical sharing once they provably
                # agree
                for w in sorted(live, key=lambda w: w is self._canonical):
                    w.optimizer.bind_flat(order)
                for w in live:
                    w.optimizer.step_flat(order=order, grads=self._reduced.data)
                if self._replicas_arena_equal(live, canon):
                    for w in live:
                        if w is not canon:
                            self._share_follower(w, canon)
                    self._canonical = canon
                else:
                    self._canonical = None
            for w in live:
                w.iteration += 1
                w.updated_params = []

        self.iteration += 1
        self.clock.advance(t_compute + t_comm, "iteration", iteration=self.iteration)
        return IterationResult(
            iteration=self.iteration - 1,
            loss=float(np.mean(losses)),
            sim_time=t_compute + t_comm,
        )

    def _seed_grads(self, w: DPWorker) -> None:
        """Point ``w``'s gradients at its zeroed flat arena (cached pairs)."""
        arena = w.optimizer.flat_arena(self.update_order)
        cache = w._seed_pairs
        if cache is None or cache[0] is not arena:
            views = arena.grads.views()
            w._seed_pairs = (arena, [
                (p, views[name]) for name, p in w.model.named_parameters()
            ])
            cache = w._seed_pairs
        arena.grads.data[:] = 0.0
        for param, view in cache[1]:
            param.grad = view

    def _sharing_valid(self, live: list[DPWorker], canon: DPWorker) -> bool:
        """All live replicas still alias the canonical arena leaf-for-leaf.

        Pure ``is``/length checks — any rebinding (recovery loads, undo,
        elastic membership churn, test interference) breaks aliasing and
        routes the iteration through the verified per-replica path instead.
        """
        if self._canonical is not canon:
            return False
        opt = canon.optimizer
        if not opt.flat_bound(self.update_order):
            return False
        arena = opt.flat_arena(self.update_order)
        fparams = arena.params.frozen_views()
        fslots = [(s, b.frozen_views()) for s, b in arena.slots.items()]
        cstates = opt.state
        for w in live:
            if w is canon:
                continue
            wopt = w.optimizer
            wparams, wstates = wopt.params, wopt.state
            for name in self.update_order:
                if wparams[name].data is not fparams[name]:
                    return False
                cstate, wstate = cstates[name], wstates[name]
                # sharing is only ever established over flat slots (see
                # _replicas_arena_equal), so size + per-flat-slot aliasing
                # pins the whole slot dict
                if len(wstate) != len(cstate):
                    return False
                for slot, views in fslots:
                    if slot in cstate and wstate.get(slot) is not views[name]:
                        return False
        return True

    def _replicas_arena_equal(self, live: list[DPWorker], canon: DPWorker) -> bool:
        """Bitwise agreement of all live arenas (the sharing precondition)."""
        copt = canon.optimizer
        ca = copt.flat_arena(self.update_order)
        for w in live:
            if w is canon:
                continue
            wopt = w.optimizer
            wa = wopt.flat_arena(self.update_order)
            if not np.array_equal(ca.params.data, wa.params.data):
                return False
            if any(
                not np.array_equal(buf.data, wa.slots[slot].data)
                for slot, buf in ca.slots.items()
            ):
                return False
            if wopt.step_counts != copt.step_counts:
                return False
            if any(
                wopt.state[n].keys() != copt.state[n].keys()
                for n in self.update_order
            ):
                return False
        # only share when every slot lives in the arena — non-flat slots
        # (exotic loads) would dodge the aliasing checks of _sharing_valid
        return all(
            set(copt.state[n]) <= ca.slots.keys() for n in self.update_order
        )

    def _share_follower(self, w: DPWorker, canon: DPWorker) -> None:
        """Bind a replica's leaves as frozen COW views of the canonical arena.

        Only reached after :meth:`_replicas_arena_equal`, whose final guard
        ensures every canonical slot is arena-backed.
        """
        opt, wopt = canon.optimizer, w.optimizer
        arena = opt.flat_arena(self.update_order)
        fparams = arena.params.frozen_views()
        fslots = {s: b.frozen_views() for s, b in arena.slots.items()}
        for name in self.update_order:
            wopt.params[name].data = fparams[name]
            cstate, wstate = opt.state[name], wopt.state[name]
            for slot in list(wstate.keys() - cstate.keys()):
                del wstate[slot]
            for slot in cstate:
                wstate[slot] = fslots[slot][name]
        self._sync_follower_scalars(w, canon)

    def _sync_follower_scalars(self, w: DPWorker, canon: DPWorker) -> None:
        """Mirror the canonical step's scalar bookkeeping onto a follower."""
        opt, wopt = canon.optimizer, w.optimizer
        for name in self.update_order:
            wopt.step_counts[name] = opt.step_counts[name]
            wopt.undo_journal[name] = dict(opt.undo_journal[name])
        wopt.dirty_params.update(self.update_order)

    def _fail(self, failure: FailureEvent, sim_time: float = 0.0) -> IterationResult:
        self.cluster.fail_machine(failure.machine_id)
        self.cluster.kvstore.raise_failure(failure.machine_id, self.iteration)
        if sim_time:
            self.clock.advance(sim_time, "partial_iteration")
        return IterationResult(
            iteration=self.iteration,
            failed=True,
            failed_machine=failure.machine_id,
            sim_time=sim_time,
        )

    # -- recovery hooks (used by repro.core.replication) -----------------------
    def rebuild_worker(self, rank: int) -> DPWorker:
        """Recreate a worker object on its (replaced) device."""
        old = self.workers[rank]
        model = self.model_factory()
        worker = DPWorker(rank, old.device, model, self.opt_factory(model))
        self.workers[rank] = worker
        if self._canonical is old:
            self._canonical = None
        return worker
