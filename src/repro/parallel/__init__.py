"""Parallel execution engines: partitioning, schedules, DP, PP, hybrid."""

from repro.parallel.data_parallel import DataParallelEngine, DPWorker
from repro.parallel.fsdp import FSDPEngine, FSDPWorker, ShardPlan
from repro.parallel.operator_parallel import (
    ColumnParallelLinear,
    RowParallelLinear,
    TensorParallelMLP,
    shard_linear_by_columns,
    shard_linear_by_rows,
)
from repro.parallel.hybrid import (
    ParallelLayout,
    StagePlacement,
    megatron_figure2_layout,
)
from repro.parallel.partition import (
    partition_balanced,
    partition_by_sizes,
    stage_boundaries,
)
from repro.parallel.instructions import (
    INSTRUCTION_OPS,
    Instruction,
    ProgramCheck,
    ScheduleProgram,
    ScheduleVerificationError,
    verify_program,
)
from repro.parallel.pipeline import PipelineEngine, PipelineStage
from repro.parallel.programs import (
    build_program,
    default_virtual_stages,
    get_schedule,
    register_schedule,
    schedule_names,
)
from repro.parallel.results import IterationResult
from repro.parallel.schedules import (
    ScheduleTiming,
    StageOp,
    bubble_ratio,
    program_op_key,
    schedule_1f1b,
    schedule_gpipe,
    simulate_program,
    simulate_schedule,
)

__all__ = [
    "DataParallelEngine",
    "DPWorker",
    "FSDPEngine",
    "FSDPWorker",
    "ShardPlan",
    "ColumnParallelLinear",
    "RowParallelLinear",
    "TensorParallelMLP",
    "shard_linear_by_columns",
    "shard_linear_by_rows",
    "PipelineEngine",
    "PipelineStage",
    "IterationResult",
    "partition_balanced",
    "partition_by_sizes",
    "stage_boundaries",
    "schedule_1f1b",
    "schedule_gpipe",
    "simulate_schedule",
    "simulate_program",
    "program_op_key",
    "bubble_ratio",
    "ScheduleTiming",
    "StageOp",
    "INSTRUCTION_OPS",
    "Instruction",
    "ScheduleProgram",
    "ProgramCheck",
    "ScheduleVerificationError",
    "verify_program",
    "register_schedule",
    "get_schedule",
    "schedule_names",
    "default_virtual_stages",
    "build_program",
    "ParallelLayout",
    "StagePlacement",
    "megatron_figure2_layout",
]
