"""Parallel execution engines: partitioning, schedules, DP, PP, hybrid."""

from repro.parallel.data_parallel import DataParallelEngine, DPWorker
from repro.parallel.fsdp import FSDPEngine, FSDPWorker, ShardPlan
from repro.parallel.operator_parallel import (
    ColumnParallelLinear,
    RowParallelLinear,
    TensorParallelMLP,
    shard_linear_by_columns,
    shard_linear_by_rows,
)
from repro.parallel.hybrid import (
    ParallelLayout,
    StagePlacement,
    megatron_figure2_layout,
)
from repro.parallel.partition import (
    partition_balanced,
    partition_by_sizes,
    stage_boundaries,
)
from repro.parallel.pipeline import PipelineEngine, PipelineStage
from repro.parallel.results import IterationResult
from repro.parallel.schedules import (
    ScheduleTiming,
    StageOp,
    bubble_ratio,
    schedule_1f1b,
    schedule_gpipe,
    simulate_schedule,
)

__all__ = [
    "DataParallelEngine",
    "DPWorker",
    "FSDPEngine",
    "FSDPWorker",
    "ShardPlan",
    "ColumnParallelLinear",
    "RowParallelLinear",
    "TensorParallelMLP",
    "shard_linear_by_columns",
    "shard_linear_by_rows",
    "PipelineEngine",
    "PipelineStage",
    "IterationResult",
    "partition_balanced",
    "partition_by_sizes",
    "stage_boundaries",
    "schedule_1f1b",
    "schedule_gpipe",
    "simulate_schedule",
    "bubble_ratio",
    "ScheduleTiming",
    "StageOp",
    "ParallelLayout",
    "StagePlacement",
    "megatron_figure2_layout",
]
