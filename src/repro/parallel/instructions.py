"""Pipeline schedules as *data*: instruction streams plus a static verifier.

The DeepSpeed-style pipeline engine design (SNIPPETS.md Snippet 1): a
schedule is not code baked into the engine but a per-stage sequence of
small instructions — load a micro-batch, run a forward, ship an
activation, receive a gradient, step the optimizer — that a generic
executor interprets.  :class:`ScheduleProgram` is that data structure;
:func:`verify_program` is the correctness-tooling pass that checks any
program *before* execution, so third-party schedules registered through
:func:`repro.parallel.register_schedule` are validated as data rather
than trusted as code.

Programs serialize to the same canonical JSONL shape as
:class:`repro.chaos.FailureTrace` (one header line, one line per
instruction, ``json.dumps`` with sorted keys and no whitespace), so
golden instruction streams under ``tests/traces/`` are byte-stable and
schedule changes are reviewable as diffs.

Vocabulary
----------

``LoadMicroBatch / Forward / Backward / SendActivation /
RecvActivation / SendGrad / RecvGrad / OptimizerStep``.  Each
instruction names a physical ``stage``, a ``microbatch``, and a
``chunk`` — the virtual-stage id for interleaved schedules.  With
``virtual_stages == 1`` chunk ``c`` simply *is* stage ``c``; with
``v > 1`` chunk ``c`` lives on physical stage ``c % p`` (Megatron-style
interleaving), activations flow chunk ``c`` → ``c+1`` and gradients
``c`` → ``c-1``, wrapping across the physical ring.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigurationError

__all__ = [
    "PROGRAM_VERSION",
    "INSTRUCTION_OPS",
    "Instruction",
    "ScheduleProgram",
    "ScheduleVerificationError",
    "ProgramCheck",
    "verify_program",
]

#: bump when the program JSONL schema changes; readers reject newer
PROGRAM_VERSION = 1

#: the full instruction vocabulary, in documentation order
INSTRUCTION_OPS = (
    "LoadMicroBatch",
    "Forward",
    "Backward",
    "SendActivation",
    "RecvActivation",
    "SendGrad",
    "RecvGrad",
    "OptimizerStep",
)

_COMPUTE_OPS = ("Forward", "Backward")


class ScheduleVerificationError(ConfigurationError):
    """An instruction stream failed static verification.

    The message always names the stage and the per-stage instruction
    index of the offending instruction, so a rejected third-party
    schedule is debuggable from the diagnostic alone.

    >>> raise ScheduleVerificationError("stage 0, instruction 3: ...")
    Traceback (most recent call last):
        ...
    repro.parallel.instructions.ScheduleVerificationError: stage 0, ...
    """


@dataclass(frozen=True)
class Instruction:
    """One unit of pipeline work, addressed to one stage.

    ``microbatch`` and ``chunk`` are ``-1`` for ``OptimizerStep`` (it
    applies to the whole stage, not one micro-batch).

    >>> Instruction("Forward", stage=1, microbatch=0, chunk=1)
    Instruction(op='Forward', stage=1, microbatch=0, chunk=1)
    >>> Instruction.from_json(
    ...     Instruction("OptimizerStep", stage=2).to_json()).stage
    2
    """

    op: str
    stage: int
    microbatch: int = -1
    chunk: int = -1

    def to_json(self) -> str:
        """Canonical single-line JSON (sorted keys, no whitespace)."""
        return json.dumps(
            {"chunk": self.chunk, "mb": self.microbatch, "op": self.op,
             "stage": self.stage},
            sort_keys=True, separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, line: str) -> "Instruction":
        d = json.loads(line)
        return cls(op=str(d["op"]), stage=int(d["stage"]),
                   microbatch=int(d["mb"]), chunk=int(d["chunk"]))


@dataclass(frozen=True)
class ScheduleProgram:
    """A complete pipeline schedule: one instruction stream per stage.

    ``num_chunks == num_stages * virtual_stages``; chunk ``c`` is placed
    on physical stage ``c % num_stages``.  Programs are immutable and
    hashable, and round-trip byte-stably through :meth:`to_jsonl` /
    :meth:`from_jsonl` (the :class:`repro.chaos.FailureTrace` mold).

    >>> from repro.parallel.programs import build_program
    >>> prog = build_program("1f1b", num_stages=2, num_microbatches=2)
    >>> (prog.num_stages, prog.num_microbatches, prog.virtual_stages)
    (2, 2, 1)
    >>> ScheduleProgram.from_jsonl(prog.to_jsonl()) == prog
    True
    """

    name: str
    num_stages: int
    num_microbatches: int
    num_chunks: int
    streams: tuple[tuple[Instruction, ...], ...]
    version: int = PROGRAM_VERSION

    def __post_init__(self) -> None:
        if self.version > PROGRAM_VERSION:
            raise ConfigurationError(
                f"program version {self.version} is newer than supported "
                f"version {PROGRAM_VERSION}"
            )
        if self.num_stages < 1 or self.num_microbatches < 1:
            raise ConfigurationError(
                "need at least one stage and one micro-batch"
            )
        if self.num_chunks % self.num_stages != 0:
            raise ConfigurationError(
                f"num_chunks ({self.num_chunks}) must be a multiple of "
                f"num_stages ({self.num_stages})"
            )
        object.__setattr__(
            self, "streams", tuple(tuple(s) for s in self.streams)
        )

    @property
    def virtual_stages(self) -> int:
        """Model chunks per physical stage (1 = non-interleaved)."""
        return self.num_chunks // self.num_stages

    @property
    def num_instructions(self) -> int:
        return sum(len(s) for s in self.streams)

    def compute_instructions(self, stage: int) -> tuple[Instruction, ...]:
        """The stage's Forward/Backward instructions, in stream order."""
        return tuple(
            i for i in self.streams[stage] if i.op in _COMPUTE_OPS
        )

    # -- serialization ----------------------------------------------------
    def to_jsonl(self) -> str:
        header = {
            "kind": "schedule_program",
            "name": self.name,
            "num_chunks": self.num_chunks,
            "num_microbatches": self.num_microbatches,
            "num_stages": self.num_stages,
            "version": self.version,
        }
        lines = [json.dumps(header, sort_keys=True, separators=(",", ":"))]
        for stream in self.streams:
            lines.extend(i.to_json() for i in stream)
        return "\n".join(lines) + "\n"

    @classmethod
    def from_jsonl(cls, text: str) -> "ScheduleProgram":
        lines = [ln for ln in text.splitlines() if ln.strip()]
        if not lines:
            raise ConfigurationError("empty schedule program")
        try:
            header = json.loads(lines[0])
            instrs = [Instruction.from_json(ln) for ln in lines[1:]]
        except (json.JSONDecodeError, KeyError) as exc:
            raise ConfigurationError(
                f"schedule program is not valid JSONL: {exc}"
            ) from exc
        if not isinstance(header, dict) or "version" not in header:
            raise ConfigurationError("program header missing 'version'")
        p = int(header["num_stages"])
        streams: list[list[Instruction]] = [[] for _ in range(p)]
        for instr in instrs:
            if not 0 <= instr.stage < p:
                raise ConfigurationError(
                    f"instruction stage {instr.stage} outside [0, {p})"
                )
            streams[instr.stage].append(instr)
        return cls(
            name=str(header["name"]),
            num_stages=p,
            num_microbatches=int(header["num_microbatches"]),
            num_chunks=int(header["num_chunks"]),
            streams=tuple(tuple(s) for s in streams),
            version=int(header["version"]),
        )

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_jsonl())
        return path

    @classmethod
    def load(cls, path: str | Path) -> "ScheduleProgram":
        return cls.from_jsonl(Path(path).read_text())


@dataclass(frozen=True)
class ProgramCheck:
    """What :func:`verify_program` measured while verifying.

    >>> from repro.parallel.programs import build_program
    >>> check = verify_program(build_program("1f1b", 3, 4))
    >>> check.peak_in_flight        # 1F1B: at most p - stage in flight
    (3, 2, 1)
    """

    num_instructions: int
    #: per-stage peak of outstanding forwards (cache-residency proxy)
    peak_in_flight: tuple[int, ...]


def _show(instr: Instruction) -> str:
    if instr.op == "OptimizerStep":
        return instr.op
    return f"{instr.op} chunk {instr.chunk} mb {instr.microbatch}"


def verify_program(
    program: ScheduleProgram, max_in_flight: int | None = None
) -> ProgramCheck:
    """Statically check an instruction stream before execution.

    Rules enforced (every violation names stage + instruction index):

    1. **Well-formedness** — known ops, in-range micro-batches, every
       chunk filed on its owning stage (``chunk % p == stage``).
    2. **Forward-before-backward** per (chunk, micro-batch), with each
       compute's data dependency (load/recv before forward, gradient
       before backward, compute before its send) satisfied in stream
       order.
    3. **Exactly one ``OptimizerStep`` per stage**, after all of the
       stage's other instructions.
    4. **Completeness** — every (chunk, micro-batch) is forwarded and
       backwarded exactly once, and every required send/recv/load
       appears exactly once.
    5. **Send/recv pairing** — per directed channel and message kind,
       the sent sequence equals the received sequence (the transport is
       FIFO per kind).
    6. **Deadlock-freedom** — an abstract execution over the streams
       makes progress to completion; a stall names every blocked stage.
    7. **Cache residency** (opt-in) — with ``max_in_flight`` given, no
       stage ever holds more outstanding forwards than the bound.

    >>> from repro.parallel.programs import build_program
    >>> verify_program(build_program("gpipe", 2, 3)).num_instructions
    29
    >>> verify_program(build_program("gpipe", 2, 3), max_in_flight=1)
    Traceback (most recent call last):
        ...
    repro.parallel.instructions.ScheduleVerificationError: stage 0, ...
    """
    p, m, c_total = (
        program.num_stages, program.num_microbatches, program.num_chunks
    )
    if len(program.streams) != p:
        raise ScheduleVerificationError(
            f"program declares {p} stages but carries "
            f"{len(program.streams)} streams"
        )

    def err(stage: int, idx: int, instr: Instruction, msg: str):
        raise ScheduleVerificationError(
            f"stage {stage}, instruction {idx} ({_show(instr)}): {msg}"
        )

    last_chunk = c_total - 1
    loads: set[tuple[int, int]] = set()
    forwards: set[tuple[int, int]] = set()
    backwards: set[tuple[int, int]] = set()
    sends_act: set[tuple[int, int]] = set()
    recvs_act: set[tuple[int, int]] = set()
    sends_grad: set[tuple[int, int]] = set()
    recvs_grad: set[tuple[int, int]] = set()
    peaks: list[int] = []

    for s, stream in enumerate(program.streams):
        in_flight = peak = 0
        step_at: int | None = None
        have_input: set[tuple[int, int]] = set()
        have_grad: set[tuple[int, int]] = set()
        done_fwd: set[tuple[int, int]] = set()
        done_bwd: set[tuple[int, int]] = set()
        for i, instr in enumerate(stream):
            if instr.op not in INSTRUCTION_OPS:
                err(s, i, instr, f"unknown op {instr.op!r}")
            if instr.stage != s:
                err(s, i, instr,
                    f"filed under stage {s} but addressed to stage "
                    f"{instr.stage}")
            if step_at is not None:
                err(s, i, instr,
                    f"instruction after OptimizerStep (at index {step_at})")
            if instr.op == "OptimizerStep":
                step_at = i
                continue
            mb, c = instr.microbatch, instr.chunk
            if not 0 <= mb < m:
                err(s, i, instr, f"microbatch {mb} outside [0, {m})")
            if not 0 <= c < c_total:
                err(s, i, instr, f"chunk {c} outside [0, {c_total})")
            if c % p != s:
                err(s, i, instr,
                    f"chunk {c} lives on stage {c % p}, not stage {s}")
            key = (c, mb)
            if instr.op == "LoadMicroBatch":
                if c != 0:
                    err(s, i, instr,
                        "only chunk 0 loads micro-batches from the task")
                if key in loads:
                    err(s, i, instr, "micro-batch loaded twice")
                loads.add(key)
                have_input.add(key)
            elif instr.op == "RecvActivation":
                if c == 0:
                    err(s, i, instr,
                        "chunk 0 loads micro-batches; it has no upstream")
                if key in recvs_act:
                    err(s, i, instr, "activation received twice")
                recvs_act.add(key)
                have_input.add(key)
            elif instr.op == "Forward":
                if key in done_fwd:
                    err(s, i, instr, "micro-batch forwarded twice")
                if key not in have_input:
                    err(s, i, instr,
                        "Forward before its input arrived (no prior "
                        "LoadMicroBatch/RecvActivation)")
                done_fwd.add(key)
                in_flight += 1
                peak = max(peak, in_flight)
            elif instr.op == "SendActivation":
                if c == last_chunk:
                    err(s, i, instr,
                        "the last chunk has no downstream consumer")
                if key in sends_act:
                    err(s, i, instr, "activation sent twice")
                if key not in done_fwd:
                    err(s, i, instr, "SendActivation before its Forward")
                sends_act.add(key)
            elif instr.op == "RecvGrad":
                if c == last_chunk:
                    err(s, i, instr,
                        "the last chunk computes its own loss gradient")
                if key in recvs_grad:
                    err(s, i, instr, "gradient received twice")
                recvs_grad.add(key)
                have_grad.add(key)
            elif instr.op == "Backward":
                if key in done_bwd:
                    err(s, i, instr, "micro-batch backwarded twice")
                if key not in done_fwd:
                    err(s, i, instr,
                        "Backward before Forward for this micro-batch")
                if c != last_chunk and key not in have_grad:
                    err(s, i, instr,
                        "Backward before its gradient arrived (no prior "
                        "RecvGrad)")
                done_bwd.add(key)
                in_flight -= 1
            elif instr.op == "SendGrad":
                if c == 0:
                    err(s, i, instr, "chunk 0 has no upstream to send to")
                if key in sends_grad:
                    err(s, i, instr, "gradient sent twice")
                if key not in done_bwd:
                    err(s, i, instr, "SendGrad before its Backward")
                sends_grad.add(key)
        if step_at is None:
            raise ScheduleVerificationError(
                f"stage {s}, instruction {len(stream)} (end of stream): "
                f"missing OptimizerStep (exactly one required)"
            )
        if max_in_flight is not None and peak > max_in_flight:
            raise ScheduleVerificationError(
                f"stage {s}, instruction 0 (stream): peak of {peak} "
                f"in-flight forwards exceeds the cache-residency bound "
                f"of {max_in_flight}"
            )
        peaks.append(peak)
        forwards |= done_fwd
        backwards |= done_bwd

    # completeness: every (chunk, microbatch) exactly once, everywhere
    for c in range(c_total):
        for mb in range(m):
            key = (c, mb)
            stage = c % p
            def missing(op: str, what: str):
                raise ScheduleVerificationError(
                    f"stage {stage}: {what} — no {op} instruction for "
                    f"chunk {c} mb {mb} in the stream"
                )

            if key not in forwards:
                missing("Forward", f"chunk {c} mb {mb} is never forwarded")
            if key not in backwards:
                missing("Backward",
                        f"chunk {c} mb {mb} is never backwarded")
            if c == 0 and key not in loads:
                missing("LoadMicroBatch",
                        f"micro-batch {mb} is never loaded")
            if c > 0 and key not in recvs_act:
                missing("RecvActivation",
                        f"activation for chunk {c} mb {mb} is never "
                        f"received")
            if c < last_chunk and key not in sends_act:
                missing("SendActivation",
                        f"activation of chunk {c} mb {mb} is never sent")
            if c < last_chunk and key not in recvs_grad:
                missing("RecvGrad",
                        f"gradient for chunk {c} mb {mb} is never "
                        f"received")
            if c > 0 and key not in sends_grad:
                missing("SendGrad",
                        f"gradient of chunk {c} mb {mb} is never sent")

    _check_channels(program)
    return ProgramCheck(
        num_instructions=program.num_instructions,
        peak_in_flight=tuple(peaks),
    )


def _check_channels(program: ScheduleProgram) -> None:
    """Abstract execution: send/recv pairing + deadlock-freedom.

    Channels are FIFO per (src stage, dst stage, message kind) — the
    executor's selective receive (``Transport.recv_matching``) matches
    by phase, so activations and gradients sharing a stage pair do not
    have to interleave identically, but *within* a kind the sender's
    order must equal the receiver's order.
    """
    p = program.num_stages
    channels: dict[tuple[int, int, str], deque] = {}
    ptr = [0] * p
    total = program.num_instructions
    executed = 0
    blocked: dict[int, str] = {}
    while executed < total:
        progressed = False
        for s in range(p):
            stream = program.streams[s]
            while ptr[s] < len(stream):
                instr = stream[ptr[s]]
                if instr.op in ("RecvActivation", "RecvGrad"):
                    act = instr.op == "RecvActivation"
                    src = (instr.chunk + (-1 if act else 1)) % p
                    kind = "act" if act else "grad"
                    want = (instr.chunk, instr.microbatch)
                    q = channels.get((src, s, kind))
                    if not q:
                        blocked[s] = (
                            f"stage {s}, instruction {ptr[s]} "
                            f"({_show(instr)}): waiting on empty "
                            f"{kind} channel {src}->{s}"
                        )
                        break
                    if q[0] != want:
                        raise ScheduleVerificationError(
                            f"stage {s}, instruction {ptr[s]} "
                            f"({_show(instr)}): send/recv mismatch on "
                            f"{kind} channel {src}->{s}: expected chunk "
                            f"{want[0]} mb {want[1]}, channel head is "
                            f"chunk {q[0][0]} mb {q[0][1]}"
                        )
                    q.popleft()
                elif instr.op == "SendActivation":
                    dst = (instr.chunk + 1) % p
                    channels.setdefault((s, dst, "act"), deque()).append(
                        (instr.chunk + 1, instr.microbatch)
                    )
                elif instr.op == "SendGrad":
                    dst = (instr.chunk - 1) % p
                    channels.setdefault((s, dst, "grad"), deque()).append(
                        (instr.chunk - 1, instr.microbatch)
                    )
                blocked.pop(s, None)
                ptr[s] += 1
                executed += 1
                progressed = True
        if not progressed:
            stuck = "; ".join(blocked[s] for s in sorted(blocked))
            raise ScheduleVerificationError(f"deadlock: {stuck}")
    for (src, dst, kind), q in sorted(channels.items()):
        if q:
            raise ScheduleVerificationError(
                f"{kind} channel {src}->{dst} ends with {len(q)} "
                f"unconsumed message(s); first is chunk {q[0][0]} "
                f"mb {q[0][1]}"
            )
