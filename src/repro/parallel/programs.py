"""Schedule generators and the ``register_schedule`` registry.

Built-in generators — ``gpipe``, ``1f1b``, ``interleaved_1f1b`` — emit
:class:`~repro.parallel.instructions.ScheduleProgram` instruction
streams.  The first two are *lowered* from the classic per-stage
compute-op makers in :mod:`repro.parallel.schedules`, which guarantees
the compute order (and therefore the engine's numerics) is identical to
the pre-instruction-stream engine.  ``interleaved_1f1b`` implements the
Megatron-LM interleaved schedule: each physical stage hosts
``virtual_stages`` model chunks, shrinking the pipeline bubble by the
same factor at the cost of more p2p traffic.

Third-party schedules plug in through :func:`register_schedule`; every
generated program is validated by
:func:`~repro.parallel.instructions.verify_program` before the engine
will execute it — schedules are data, not trusted code.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.errors import ConfigurationError
from repro.parallel.instructions import (
    Instruction,
    ScheduleProgram,
)
from repro.parallel.schedules import StageOp, schedule_1f1b, schedule_gpipe

__all__ = [
    "ScheduleGenerator",
    "register_schedule",
    "get_schedule",
    "schedule_names",
    "default_virtual_stages",
    "build_program",
    "program_from_stage_ops",
    "program_gpipe",
    "program_1f1b",
    "program_interleaved_1f1b",
]

#: a generator maps (num_stages, num_microbatches, virtual_stages) to a
#: :class:`ScheduleProgram`
ScheduleGenerator = Callable[[int, int, int], ScheduleProgram]

_REGISTRY: dict[str, tuple[ScheduleGenerator, int]] = {}


def register_schedule(
    name: str,
    generator: ScheduleGenerator,
    *,
    virtual_stages: int = 1,
    overwrite: bool = False,
) -> None:
    """Register a schedule generator under ``name``.

    ``virtual_stages`` is the default chunk multiplier a planner should
    use when the user does not pick one (1 for flat schedules, 2 for
    interleaved).  Registered schedules become valid values for
    ``ParallelismSpec.schedule`` and show up in ``repro schedule
    --list``; their programs are statically verified before execution.

    >>> from dataclasses import replace
    >>> from repro.parallel.programs import build_program
    >>> def tiny(p, m, v):
    ...     return replace(program_gpipe(p, m, v), name="tiny_gpipe")
    >>> register_schedule("tiny_gpipe", tiny)
    >>> build_program("tiny_gpipe", 2, 2).name
    'tiny_gpipe'
    >>> register_schedule("tiny_gpipe", tiny)
    Traceback (most recent call last):
        ...
    repro.errors.ConfigurationError: schedule 'tiny_gpipe' is already ...
    """
    if not name or not isinstance(name, str):
        raise ConfigurationError("schedule name must be a non-empty string")
    if name in _REGISTRY and not overwrite:
        raise ConfigurationError(
            f"schedule {name!r} is already registered "
            f"(pass overwrite=True to replace it)"
        )
    if virtual_stages < 1:
        raise ConfigurationError("virtual_stages must be >= 1")
    _REGISTRY[name] = (generator, virtual_stages)


def get_schedule(name: str) -> ScheduleGenerator:
    """Look up a registered generator, or raise naming the options.

    >>> get_schedule("1f1b") is program_1f1b
    True
    """
    try:
        return _REGISTRY[name][0]
    except KeyError:
        raise ConfigurationError(
            f"unknown schedule {name!r}; registered schedules: "
            f"{', '.join(schedule_names())}"
        ) from None


def schedule_names() -> tuple[str, ...]:
    """All registered schedule names, sorted.

    >>> [n for n in schedule_names() if not n.startswith("tiny")]
    ['1f1b', 'gpipe', 'interleaved_1f1b']
    """
    return tuple(sorted(_REGISTRY))


def default_virtual_stages(name: str) -> int:
    """The chunk multiplier a schedule uses when none is requested.

    >>> (default_virtual_stages("1f1b"),
    ...  default_virtual_stages("interleaved_1f1b"))
    (1, 2)
    """
    if name not in _REGISTRY:
        raise ConfigurationError(
            f"unknown schedule {name!r}; registered schedules: "
            f"{', '.join(schedule_names())}"
        )
    return _REGISTRY[name][1]


def build_program(
    name: str,
    num_stages: int,
    num_microbatches: int,
    virtual_stages: int = 1,
) -> ScheduleProgram:
    """Generate the named schedule's program for (p, m, v).

    >>> prog = build_program("gpipe", 2, 3)
    >>> [i.op for i in prog.streams[1][:2]]
    ['RecvActivation', 'Forward']
    """
    if num_stages < 1:
        raise ConfigurationError("need at least one stage")
    if num_microbatches < 1:
        raise ConfigurationError("need at least one micro-batch")
    if virtual_stages < 1:
        raise ConfigurationError("virtual_stages must be >= 1")
    return get_schedule(name)(num_stages, num_microbatches, virtual_stages)


def program_from_stage_ops(
    name: str,
    per_stage_ops: Iterable[Iterable[StageOp]],
    num_stages: int,
    num_microbatches: int,
) -> ScheduleProgram:
    """Lower classic per-stage F/B op lists into an instruction stream.

    Each ``F`` becomes load-or-recv + ``Forward`` + send (unless last
    stage); each ``B`` becomes recv (unless last stage) + ``Backward`` +
    send (unless first stage); a single ``OptimizerStep`` closes every
    stream.  Compute order is preserved exactly, which is what keeps the
    lowered ``1f1b``/``gpipe`` programs bitwise-faithful to the
    pre-instruction-stream engine.

    >>> ops = schedule_gpipe(1, 2)
    >>> prog = program_from_stage_ops("demo", ops, 1, 2)
    >>> [i.op for i in prog.streams[0]]
    ['LoadMicroBatch', 'Forward', 'LoadMicroBatch', 'Forward', \
'Backward', 'Backward', 'OptimizerStep']
    """
    last = num_stages - 1
    streams: list[tuple[Instruction, ...]] = []
    for s, ops in enumerate(per_stage_ops):
        instrs: list[Instruction] = []
        for op in ops:
            if op.kind == "F":
                if s == 0:
                    instrs.append(
                        Instruction("LoadMicroBatch", s, op.microbatch, s)
                    )
                else:
                    instrs.append(
                        Instruction("RecvActivation", s, op.microbatch, s)
                    )
                instrs.append(Instruction("Forward", s, op.microbatch, s))
                if s < last:
                    instrs.append(
                        Instruction("SendActivation", s, op.microbatch, s)
                    )
            else:
                if s < last:
                    instrs.append(
                        Instruction("RecvGrad", s, op.microbatch, s)
                    )
                instrs.append(Instruction("Backward", s, op.microbatch, s))
                if s > 0:
                    instrs.append(
                        Instruction("SendGrad", s, op.microbatch, s)
                    )
        instrs.append(Instruction("OptimizerStep", s))
        streams.append(tuple(instrs))
    return ScheduleProgram(
        name=name,
        num_stages=num_stages,
        num_microbatches=num_microbatches,
        num_chunks=num_stages,
        streams=tuple(streams),
    )


def _require_flat(name: str, virtual_stages: int) -> None:
    if virtual_stages != 1:
        raise ConfigurationError(
            f"schedule {name!r} does not support virtual stages "
            f"(got virtual_stages={virtual_stages}); use "
            f"'interleaved_1f1b' for v > 1"
        )


def program_gpipe(
    num_stages: int, num_microbatches: int, virtual_stages: int = 1
) -> ScheduleProgram:
    """GPipe: all forwards, then all backwards, per stage.

    >>> program_gpipe(2, 2).compute_instructions(0)[0].op
    'Forward'
    """
    _require_flat("gpipe", virtual_stages)
    ops = schedule_gpipe(num_stages, num_microbatches)
    return program_from_stage_ops(
        "gpipe", ops, num_stages, num_microbatches
    )


def program_1f1b(
    num_stages: int, num_microbatches: int, virtual_stages: int = 1
) -> ScheduleProgram:
    """1F1B: warm-up forwards, then strict one-forward-one-backward.

    >>> prog = program_1f1b(2, 4)
    >>> [
    ...     (i.op[0], i.microbatch)
    ...     for i in prog.compute_instructions(0)[:4]
    ... ]
    [('F', 0), ('F', 1), ('B', 0), ('F', 2)]
    """
    _require_flat("1f1b", virtual_stages)
    ops = schedule_1f1b(num_stages, num_microbatches)
    return program_from_stage_ops("1f1b", ops, num_stages, num_microbatches)


def program_interleaved_1f1b(
    num_stages: int, num_microbatches: int, virtual_stages: int = 2
) -> ScheduleProgram:
    """Megatron-LM interleaved 1F1B over ``virtual_stages`` chunks.

    Each physical stage hosts ``v`` model chunks (stage ``s`` holds
    chunks ``s, s+p, ..., s+(v-1)p``); micro-batches advance in groups
    of ``p``, and each stage's warm-up covers ``(p - s - 1) * 2 +
    (v - 1) * p`` compute units before entering 1F1B steady state.  The
    bubble shrinks to ``(p-1)/v`` compute slots per iteration — the
    reason this schedule beats GPipe and flat 1F1B at equal (p, m).

    Requires ``v >= 2`` and ``m % p == 0`` (micro-batch groups must
    fill the pipeline width, as in Megatron-LM).

    >>> prog = program_interleaved_1f1b(2, 4, 2)
    >>> (prog.num_chunks, prog.virtual_stages)
    (4, 2)
    >>> [
    ...     (i.op[0], i.chunk, i.microbatch)
    ...     for i in prog.compute_instructions(0)[:4]
    ... ]
    [('F', 0, 0), ('F', 0, 1), ('F', 2, 0), ('F', 2, 1)]
    """
    p, m, v = num_stages, num_microbatches, virtual_stages
    if v < 2:
        raise ConfigurationError(
            f"interleaved_1f1b needs virtual_stages >= 2 (got {v}); "
            f"use '1f1b' for a flat pipeline"
        )
    if m % p != 0:
        raise ConfigurationError(
            f"interleaved_1f1b needs num_microbatches divisible by "
            f"num_stages (got m={m}, p={p})"
        )
    num_chunks = p * v
    total = m * v  # compute units of each kind per stage
    streams: list[tuple[Instruction, ...]] = []
    for s in range(p):
        def f_unit(i: int) -> tuple[int, int]:
            group, k = divmod(i, p * v)
            return (s + (k // p) * p, group * p + k % p)

        def b_unit(i: int) -> tuple[int, int]:
            group, k = divmod(i, p * v)
            return (s + (v - 1 - k // p) * p, group * p + k % p)

        if m == p:
            warmup = total
        else:
            warmup = min(total, (p - s - 1) * 2 + (v - 1) * p)
        units: list[tuple[str, int, int]] = []
        for i in range(warmup):
            units.append(("F",) + f_unit(i))
        for i in range(total - warmup):
            units.append(("F",) + f_unit(warmup + i))
            units.append(("B",) + b_unit(i))
        for i in range(total - warmup, total):
            units.append(("B",) + b_unit(i))

        instrs: list[Instruction] = []
        for kind, chunk, mb in units:
            if kind == "F":
                if chunk == 0:
                    instrs.append(Instruction("LoadMicroBatch", s, mb, chunk))
                else:
                    instrs.append(Instruction("RecvActivation", s, mb, chunk))
                instrs.append(Instruction("Forward", s, mb, chunk))
                if chunk < num_chunks - 1:
                    instrs.append(
                        Instruction("SendActivation", s, mb, chunk)
                    )
            else:
                if chunk < num_chunks - 1:
                    instrs.append(Instruction("RecvGrad", s, mb, chunk))
                instrs.append(Instruction("Backward", s, mb, chunk))
                if chunk > 0:
                    instrs.append(Instruction("SendGrad", s, mb, chunk))
        instrs.append(Instruction("OptimizerStep", s))
        streams.append(tuple(instrs))
    return ScheduleProgram(
        name="interleaved_1f1b",
        num_stages=p,
        num_microbatches=m,
        num_chunks=num_chunks,
        streams=tuple(streams),
    )


register_schedule("gpipe", program_gpipe)
register_schedule("1f1b", program_1f1b)
register_schedule("interleaved_1f1b", program_interleaved_1f1b,
                  virtual_stages=2)
