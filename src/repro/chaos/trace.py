"""FailureTrace: a versioned, seed-stamped record/replay format.

Every stochastic chaos run records the exact failure events it injected
as a :class:`FailureTrace` — a small JSONL document (one header line,
one line per event) that can be checked into version control
(``tests/traces/``) and replayed later.  Replaying a trace feeds the
*identical* event sequence back into the engines, so a run driven by a
trace is bitwise-deterministic: same losses, same recovery reports, same
goodput.

The format is versioned (:data:`TRACE_VERSION`) and deliberately plain:
``json.dumps`` with sorted keys and no whitespace, floats serialized via
Python's ``repr``-based float formatting (which round-trips exactly), so
``to_jsonl`` -> ``from_jsonl`` -> ``to_jsonl`` is byte-stable.

Events carry both a continuous timestamp (``time_hours``, what the
failure process sampled) and a discrete ``iteration`` (what the engines
and the fleet simulator consume).  :meth:`FailureTrace.with_iterations`
maps the former onto the latter for a chosen horizon; the mapping is
stored in the trace so replay never has to recompute it.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.cluster.failures import FailureEvent, FailurePhase, FailureSchedule
from repro.errors import ConfigurationError
from repro.utils.jsonl import salvage_jsonl

__all__ = ["TRACE_VERSION", "ChaosEvent", "FailureTrace"]

#: bump when the JSONL schema changes; readers reject newer versions
TRACE_VERSION = 1

#: event kinds understood by this trace version
EVENT_KINDS = ("crash", "straggler", "storage_outage")


@dataclass(frozen=True)
class ChaosEvent:
    """One sampled chaos event.

    ``kind`` selects the consumer-side meaning:

    * ``"crash"`` — fail-stop machine failure (all consumers);
    * ``"straggler"`` — the machine slows down by factor ``magnitude``
      from ``time_hours`` onward (analytic goodput evaluation);
    * ``"storage_outage"`` — the global checkpoint store is unavailable
      for ``magnitude`` hours starting at ``time_hours`` (analytic
      goodput evaluation).

    >>> ChaosEvent(time_hours=2.5, machine_id=1).kind
    'crash'
    """

    #: continuous timestamp sampled by the failure process
    time_hours: float
    machine_id: int
    kind: str = "crash"
    #: discrete engine iteration / fleet round (assigned by
    #: :meth:`FailureTrace.with_iterations`); ``None`` = unmapped
    iteration: int | None = None
    #: where in the iteration the crash lands (FailurePhase value)
    phase: str = FailurePhase.ITERATION_START.value
    #: MID_UPDATE only: parameters already updated when the crash hit
    after_updates: int = 0
    #: straggler slowdown factor / storage outage duration in hours
    magnitude: float = 0.0
    #: INSTRUCTION phase only: the pipeline instruction op name at whose
    #: boundary the crash lands (e.g. "SendGrad"); ``None`` otherwise
    instruction: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ConfigurationError(
                f"unknown chaos event kind {self.kind!r}; "
                f"known: {EVENT_KINDS}"
            )
        try:
            FailurePhase(self.phase)
        except ValueError:
            raise ConfigurationError(
                f"unknown failure phase {self.phase!r}; expected "
                f"{[p.value for p in FailurePhase]}"
            ) from None
        if self.phase == FailurePhase.INSTRUCTION.value:
            from repro.parallel.instructions import INSTRUCTION_OPS

            if self.instruction not in INSTRUCTION_OPS:
                raise ConfigurationError(
                    f"instruction-phase events need an instruction from "
                    f"{INSTRUCTION_OPS}; got {self.instruction!r}"
                )
        elif self.instruction is not None:
            raise ConfigurationError(
                f"instruction={self.instruction!r} requires "
                f"phase={FailurePhase.INSTRUCTION.value!r} "
                f"(got {self.phase!r})"
            )
        if self.time_hours < 0:
            raise ConfigurationError("time_hours must be >= 0")
        if self.machine_id < 0:
            raise ConfigurationError("machine_id must be >= 0")

    def to_json(self) -> str:
        payload = {
            "t": self.time_hours,
            "machine": self.machine_id,
            "kind": self.kind,
            "iteration": self.iteration,
            "phase": self.phase,
            "after_updates": self.after_updates,
            "magnitude": self.magnitude,
        }
        # conditional so pre-existing traces stay byte-stable
        if self.instruction is not None:
            payload["instruction"] = self.instruction
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "ChaosEvent":
        d = json.loads(line)
        return cls(
            time_hours=float(d["t"]),
            machine_id=int(d["machine"]),
            kind=str(d["kind"]),
            iteration=(
                None if d.get("iteration") is None else int(d["iteration"])
            ),
            phase=str(d.get("phase", FailurePhase.ITERATION_START.value)),
            after_updates=int(d.get("after_updates", 0)),
            magnitude=float(d.get("magnitude", 0.0)),
            instruction=(
                None if d.get("instruction") is None
                else str(d["instruction"])
            ),
        )


@dataclass(frozen=True)
class FailureTrace:
    """A replayable record of every chaos event of one run.

    >>> from repro.chaos import get_scenario
    >>> trace = get_scenario("steady_mtbf").sample(seed=0, num_machines=4)
    >>> trace2 = get_scenario("steady_mtbf").sample(seed=0, num_machines=4)
    >>> trace == trace2                      # same seed -> identical trace
    True
    >>> restored = FailureTrace.from_jsonl(trace.to_jsonl())
    >>> restored == trace                    # byte-stable round trip
    True
    """

    scenario: str
    seed: int
    num_machines: int
    horizon_hours: float
    events: tuple[ChaosEvent, ...] = ()
    #: engine-iteration horizon the events were mapped onto (if any)
    horizon_iters: int | None = None
    version: int = TRACE_VERSION
    #: free-form run metadata (recorded goodput, run config, ...) as a
    #: sorted tuple of (key, value-string) pairs so the trace stays
    #: hashable and order-independent
    meta: tuple[tuple[str, str], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.version > TRACE_VERSION:
            raise ConfigurationError(
                f"trace version {self.version} is newer than supported "
                f"version {TRACE_VERSION}"
            )
        if self.num_machines < 1:
            raise ConfigurationError("num_machines must be >= 1")
        object.__setattr__(self, "events", tuple(self.events))
        object.__setattr__(
            self, "meta", tuple(sorted((str(k), str(v))
                                       for k, v in self.meta))
        )

    # -- views ------------------------------------------------------------
    @property
    def meta_dict(self) -> dict[str, str]:
        return dict(self.meta)

    @property
    def crashes(self) -> tuple[ChaosEvent, ...]:
        return tuple(e for e in self.events if e.kind == "crash")

    @property
    def stragglers(self) -> tuple[ChaosEvent, ...]:
        return tuple(e for e in self.events if e.kind == "straggler")

    @property
    def storage_outages(self) -> tuple[ChaosEvent, ...]:
        return tuple(e for e in self.events if e.kind == "storage_outage")

    def with_meta(self, **kv: object) -> "FailureTrace":
        """Return a copy with extra metadata entries recorded."""
        merged = dict(self.meta)
        merged.update({str(k): str(v) for k, v in kv.items()})
        return replace(self, meta=tuple(sorted(merged.items())))

    # -- iteration mapping ------------------------------------------------
    def with_iterations(self, horizon_iters: int) -> "FailureTrace":
        """Map continuous event times onto a discrete iteration horizon.

        The run's ``horizon_iters`` iterations are laid out uniformly
        over ``horizon_hours``; each event lands on the iteration its
        timestamp falls into.  Events that already carry an explicit
        iteration (scripted drills) keep it.  The mapping is recorded in
        the returned trace so replay consumes the stored iterations
        verbatim.
        """
        if horizon_iters < 1:
            raise ConfigurationError("horizon_iters must be >= 1")
        mapped = []
        for e in self.events:
            if e.iteration is not None:
                mapped.append(e)
                continue
            frac = min(e.time_hours / self.horizon_hours, 1.0)
            it = min(int(frac * horizon_iters), horizon_iters - 1)
            mapped.append(replace(e, iteration=it))
        return replace(self, events=tuple(mapped),
                       horizon_iters=horizon_iters)

    def after_iteration(self, start: int) -> "FailureTrace":
        """Copy containing only events mapped at or after ``start``.

        Continuation runs (``Session.run`` on an engine that has already
        trained to ``start``) use this so the recorded trace holds
        exactly the events the run could still experience.
        """
        return replace(self, events=tuple(
            e for e in self.events
            if e.iteration is None or e.iteration >= start
        ))

    # -- engine/fleet consumption -----------------------------------------
    def to_schedule(self, leave_alive: int = 1) -> FailureSchedule:
        """Lower crash events into an engine-level :class:`FailureSchedule`.

        Only ``"crash"`` events participate (the engines have no notion
        of stragglers or storage outages).  Per iteration, duplicate
        crashes of one machine collapse, and at most
        ``num_machines - leave_alive`` machines fail so at least
        ``leave_alive`` survivor(s) exist for recovery to restore from.
        """
        if any(e.iteration is None for e in self.crashes):
            raise ConfigurationError(
                "trace has unmapped events; call with_iterations() first "
                "(or load a trace that recorded its iteration mapping)"
            )
        per_iter: dict[int, list[ChaosEvent]] = {}
        for e in self.crashes:
            bucket = per_iter.setdefault(e.iteration, [])
            if all(b.machine_id != e.machine_id for b in bucket):
                bucket.append(e)
        events: list[FailureEvent] = []
        cap = max(1, self.num_machines - max(0, leave_alive))
        for it in sorted(per_iter):
            for e in per_iter[it][:cap]:
                events.append(FailureEvent(
                    machine_id=e.machine_id,
                    iteration=it,
                    phase=FailurePhase(e.phase),
                    after_updates=e.after_updates,
                    instruction=e.instruction,
                ))
        return FailureSchedule(events)

    def to_fleet_failures(self) -> list:
        """Lower crash events into fleet-round failures.

        Returns :class:`repro.sim.FleetFailure` rows (iteration ==
        fleet round: every round steps each running job one iteration).
        """
        from repro.sim.fleet import FleetFailure

        if any(e.iteration is None for e in self.crashes):
            raise ConfigurationError(
                "trace has unmapped events; call with_iterations() first"
            )
        seen: set[tuple[int, int]] = set()
        rows = []
        for e in self.crashes:
            key = (e.iteration, e.machine_id)
            if key in seen:
                continue
            seen.add(key)
            rows.append(FleetFailure(round=e.iteration,
                                     machine_id=e.machine_id))
        return sorted(rows, key=lambda f: (f.round, f.machine_id))

    # -- serialization ----------------------------------------------------
    def to_jsonl(self) -> str:
        header = {
            "version": self.version,
            "scenario": self.scenario,
            "seed": self.seed,
            "num_machines": self.num_machines,
            "horizon_hours": self.horizon_hours,
            "horizon_iters": self.horizon_iters,
            "meta": dict(self.meta),
        }
        lines = [json.dumps(header, sort_keys=True, separators=(",", ":"))]
        lines.extend(e.to_json() for e in self.events)
        return "\n".join(lines) + "\n"

    @classmethod
    def from_jsonl(cls, text: str) -> "FailureTrace":
        lines = [ln for ln in text.splitlines() if ln.strip()]
        if not lines:
            raise ConfigurationError("empty failure trace")
        try:
            header = json.loads(lines[0])
            events = tuple(ChaosEvent.from_json(ln) for ln in lines[1:])
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"failure trace is not valid JSONL: {exc}"
            ) from exc
        if not isinstance(header, dict) or "version" not in header:
            raise ConfigurationError("trace header missing 'version'")
        return cls(
            scenario=str(header["scenario"]),
            seed=int(header["seed"]),
            num_machines=int(header["num_machines"]),
            horizon_hours=float(header["horizon_hours"]),
            horizon_iters=(
                None if header.get("horizon_iters") is None
                else int(header["horizon_iters"])
            ),
            version=int(header["version"]),
            meta=tuple(sorted(
                (str(k), str(v))
                for k, v in dict(header.get("meta", {})).items()
            )),
            events=events,
        )

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_jsonl())
        return path

    @classmethod
    def load(cls, path: str | Path) -> "FailureTrace":
        """Load a trace file, tolerating a torn final line.

        A process killed mid-write (crash, ``kill -9``) can leave the
        last JSONL line truncated; the valid prefix is still a complete
        trace, so it is recovered with a :class:`UserWarning` instead of
        raising.  Corruption anywhere *before* the final line still
        raises :class:`~repro.errors.ConfigurationError`.
        """
        path = Path(path)
        good, torn = salvage_jsonl(path.read_text())
        if torn is not None:
            warnings.warn(
                f"{path}: dropped torn final line "
                f"({len(torn)} bytes, crash mid-write?)",
                UserWarning,
                stacklevel=2,
            )
        return cls.from_jsonl("\n".join(good) + "\n" if good else "")
