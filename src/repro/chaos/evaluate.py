"""Analytic goodput evaluation of a fault-tolerance method under a trace.

The paper's headline comparison — replication vs logging vs global
checkpointing — was only ever simulated under uniform singleton failures
(Section 7.3).  This module walks an arbitrary
:class:`~repro.chaos.trace.FailureTrace` (correlated bursts, flaky
nodes, storage outages, stragglers) through the calibrated
:class:`~repro.sim.CostModel`, re-using the exact per-iteration overhead
and recovery pricing of :mod:`repro.sim.endtoend`, and reports the
end-to-end hours and goodput fraction each method achieves.

Semantics:

* **crash** — the method pays its recovery cost; checkpoint-based
  methods additionally recompute everything since the last *durable*
  checkpoint, replication loses nothing (undo + broadcast), logging
  replays at the (possibly parallel) replay rate;
* **straggler** — synchronous training runs at the slowest worker's
  pace, so from the onset every iteration is scaled by the largest
  active slowdown factor (all methods suffer equally — stragglers
  compress the *relative* gap between methods);
* **storage_outage** — global-checkpoint persists pause during the
  window, so a crash after an outage loses work back to the last
  checkpoint that completed *before* it.  In-memory snapshots
  (CheckFreq/Elastic-Horovod) are unaffected.

The walk is segment-based (O(#events), not O(#iterations)); an
iteration in flight when an event lands is charged but not counted — the
same convention as :class:`~repro.sim.EndToEndSimulator`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chaos.scenarios import ScenarioSpec, get_scenario
from repro.chaos.trace import FailureTrace
from repro.core.strategy import FTStrategy
from repro.errors import ConfigurationError
from repro.sim.costmodel import CostModel
from repro.sim.endtoend import per_iteration_overhead, recovery_seconds
from repro.sim.workloads import Workload

__all__ = [
    "GoodputResult",
    "method_for_strategy",
    "evaluate_trace",
    "evaluate_traces",
    "evaluate_scenario",
    "sample_paired_traces",
]

#: analytic method names for the paper's three mechanisms
_STRATEGY_METHODS = {
    FTStrategy.REPLICATION: "swift_replication",
    FTStrategy.LOGGING: "swift_logging_pr",
    FTStrategy.CHECKPOINT_ONLY: "global_checkpoint",
}


def method_for_strategy(strategy: FTStrategy | str) -> str:
    """Map an :class:`FTStrategy` to its analytic cost-model method name.

    >>> from repro.core.strategy import FTStrategy
    >>> method_for_strategy(FTStrategy.REPLICATION)
    'swift_replication'
    """
    if isinstance(strategy, str):
        strategy = FTStrategy(strategy)
    return _STRATEGY_METHODS[strategy]


@dataclass(frozen=True)
class GoodputResult:
    """One method's outcome under one sampled trace."""

    scenario: str
    method: str
    seed: int
    #: end-to-end completion time, including every stall
    hours: float
    #: completion time had no event fired
    failure_free_hours: float
    num_crashes: int
    num_straggler_onsets: int
    num_storage_outages: int

    @property
    def goodput_fraction(self) -> float:
        """Useful fraction of the wall clock (failure-free / actual)."""
        return self.failure_free_hours / self.hours if self.hours else 0.0

    @property
    def overhead_hours(self) -> float:
        return self.hours - self.failure_free_hours


def evaluate_trace(
    trace: FailureTrace,
    workload: Workload,
    method: str,
    interval: int | None = None,
    cost: CostModel | None = None,
    parallel_degree: int = 16,
) -> GoodputResult:
    """End-to-end hours for ``method`` under the exact events of ``trace``.

    Deterministic: the same trace and workload always produce the same
    result (the trace carries all the randomness).  Degenerate inputs a
    config search may generate — non-positive intervals or recovery
    degrees, workloads pricing a zero iteration time — raise
    :class:`~repro.errors.ConfigurationError` rather than dividing by
    zero; single-machine traces and event-free horizons are fine.
    """
    cost = cost or CostModel(workload, use_experiment_time=False)
    snapshot_based = method in ("checkfreq", "elastic_horovod")
    if interval is None:
        if snapshot_based:  # the tuned snapshot cadence, as EndToEnd does
            from repro.core.checkpoint import checkfreq_interval

            interval = checkfreq_interval(
                cost.iteration_time, cost.snapshot_stall()
            )
        else:
            interval = workload.checkpoint_interval_iters or 100
    if interval < 1:
        raise ConfigurationError(
            f"checkpoint interval must be >= 1, got {interval}"
        )
    if parallel_degree < 1:
        raise ConfigurationError(
            f"parallel_degree must be >= 1, got {parallel_degree}"
        )
    if cost.iteration_time <= 0:
        raise ConfigurationError(
            f"workload {workload.name!r} prices a non-positive "
            "iteration time; set experiment_iteration_time or "
            "total_iterations + end_to_end_hours"
        )
    dt_base = cost.iteration_time + per_iteration_overhead(
        cost, workload, method, interval
    )
    total = workload.total_iterations or 10_000
    if total < 0:
        raise ConfigurationError(
            f"total_iterations must be >= 0, got {total}"
        )

    # event timeline in seconds, time-ordered (ties: outages first so a
    # simultaneous crash already sees the window)
    order = {"storage_outage": 0, "straggler": 1, "crash": 2}
    events = sorted(
        trace.events, key=lambda e: (e.time_hours, order[e.kind], e.machine_id)
    )
    outages: list[tuple[float, float]] = []  # [start, end) in seconds

    def in_outage(t: float) -> bool:
        return any(start <= t < end for start, end in outages)

    elapsed = 0.0
    completed = 0
    last_ckpt = 0  # iteration of the last durable global checkpoint
    slowdown = 1.0
    crashes = onsets = outage_count = 0

    def advance_to(t_target: float) -> None:
        """Run whole iterations until the next would cross ``t_target``.

        Closed-form (O(#outages), not O(#intervals)): a search horizon
        can map onto 10^8 iterations at cadence 10, so walking interval
        boundaries one by one is not an option.
        """
        nonlocal elapsed, completed, last_ckpt
        dt = dt_base * slowdown
        fit = max(0, min(int((t_target - elapsed) / dt), total - completed))
        # latest interval boundary reached whose completion instant falls
        # outside every outage window (its checkpoint persisted); walk
        # backwards one outage at a time
        b = (completed + fit) // interval * interval
        while b > completed:
            t_b = elapsed + (b - completed) * dt
            hit = next(
                ((s, e) for s, e in outages if s <= t_b < e), None
            )
            if hit is None:
                last_ckpt = max(last_ckpt, b)
                break
            # that checkpoint never persisted; try the last boundary
            # completed strictly before the outage began
            before = int((hit[0] - elapsed) / dt)
            if elapsed + before * dt >= hit[0]:
                before -= 1  # int() truncation landed on the edge
            b = (completed + max(0, min(before, fit))) // interval * interval
        completed += fit
        elapsed += fit * dt

    for e in events:
        if completed >= total:
            break
        t = e.time_hours * 3600.0
        advance_to(t)
        if completed >= total:
            break
        # the iteration in flight at the event is charged but not counted
        elapsed = max(elapsed, t)
        if e.kind == "storage_outage":
            outage_count += 1
            outages.append((t, t + e.magnitude * 3600.0))
        elif e.kind == "straggler":
            onsets += 1
            slowdown = max(slowdown, e.magnitude)
        else:  # crash
            crashes += 1
            if method == "swift_replication":
                lost = 0  # undo resolves the partial update; nothing lost
            elif snapshot_based:
                lost = completed % interval  # in-memory snapshots persist
            else:
                lost = completed - last_ckpt
            elapsed += recovery_seconds(cost, method, lost, parallel_degree)

    if completed < total:
        # no events remain: run the tail uninterrupted
        elapsed += (total - completed) * dt_base * slowdown
        completed = total

    return GoodputResult(
        scenario=trace.scenario,
        method=method,
        seed=trace.seed,
        hours=elapsed / 3600.0,
        failure_free_hours=total * dt_base / 3600.0,
        num_crashes=crashes,
        num_straggler_onsets=onsets,
        num_storage_outages=outage_count,
    )


def evaluate_scenario(
    scenario: str | ScenarioSpec,
    workload: Workload,
    method: str,
    seeds=range(5),
    interval: int | None = None,
    horizon_hours: float | None = None,
    num_machines: int | None = None,
) -> list[GoodputResult]:
    """Evaluate ``method`` over freshly sampled traces of a scenario.

    One trace per seed; the horizon defaults to 1.5x the workload's
    published end-to-end hours so events keep arriving for the slower
    methods too.  Traces are sampled identically for every method
    evaluated with the same arguments — the comparison is paired.
    """
    spec = get_scenario(scenario)
    machines = num_machines or workload.num_machines
    hours = horizon_hours or max(
        spec.horizon_hours, 1.5 * (workload.end_to_end_hours or 100.0)
    )
    return [
        evaluate_trace(
            spec.sample(seed, machines, horizon_hours=hours),
            workload, method, interval=interval,
        )
        for seed in seeds
    ]


def sample_paired_traces(
    scenario: str | ScenarioSpec,
    num_machines: int,
    seeds=range(5),
    horizon_hours: float | None = None,
) -> tuple[FailureTrace, ...]:
    """Pre-sample one trace per seed for paired method comparisons.

    Identical arguments always yield identical traces, so callers that
    evaluate many methods (or many plan candidates) against the same
    tuple get a genuinely paired comparison — the batch entry point the
    :mod:`repro.plan` objective is built on.

    >>> traces = sample_paired_traces("steady_mtbf", 4, seeds=range(2))
    >>> [t.seed for t in traces]
    [0, 1]
    >>> traces == sample_paired_traces("steady_mtbf", 4, seeds=range(2))
    True
    """
    if num_machines < 1:
        raise ConfigurationError(
            f"num_machines must be >= 1, got {num_machines}"
        )
    spec = get_scenario(scenario)
    hours = horizon_hours or spec.horizon_hours
    return tuple(
        spec.sample(seed, num_machines, horizon_hours=hours)
        for seed in seeds
    )


def evaluate_traces(
    traces,
    workload: Workload,
    method: str,
    interval: int | None = None,
    cost: CostModel | None = None,
    parallel_degree: int = 16,
) -> list[GoodputResult]:
    """Price ``method`` over many pre-sampled traces at once.

    The cost model is resolved once and shared across the batch, so a
    search loop pays per-candidate setup a single time per candidate
    rather than per ``(candidate, seed)`` pair.  Raises
    :class:`~repro.errors.ConfigurationError` on an empty batch — a
    searcher bug, not a zero-goodput configuration.

    >>> from repro.sim import BERT_128
    >>> traces = sample_paired_traces("steady_mtbf", 16, seeds=range(2))
    >>> results = evaluate_traces(traces, BERT_128, "swift_logging_pr")
    >>> [round(r.goodput_fraction, 3) == round(
    ...     evaluate_trace(t, BERT_128, "swift_logging_pr")
    ...     .goodput_fraction, 3) for t, r in zip(traces, results)]
    [True, True]
    """
    traces = tuple(traces)
    if not traces:
        raise ConfigurationError(
            "evaluate_traces needs at least one trace"
        )
    cost = cost or CostModel(workload, use_experiment_time=False)
    return [
        evaluate_trace(
            trace, workload, method, interval=interval, cost=cost,
            parallel_degree=parallel_degree,
        )
        for trace in traces
    ]
