"""Analytic goodput evaluation of a fault-tolerance method under a trace.

The paper's headline comparison — replication vs logging vs global
checkpointing — was only ever simulated under uniform singleton failures
(Section 7.3).  This module walks an arbitrary
:class:`~repro.chaos.trace.FailureTrace` (correlated bursts, flaky
nodes, storage outages, stragglers) through the calibrated
:class:`~repro.sim.CostModel`, re-using the exact per-iteration overhead
and recovery pricing of :mod:`repro.sim.endtoend`, and reports the
end-to-end hours and goodput fraction each method achieves.

Semantics:

* **crash** — the method pays its recovery cost; checkpoint-based
  methods additionally recompute everything since the last *durable*
  checkpoint, replication loses nothing (undo + broadcast), logging
  replays at the (possibly parallel) replay rate;
* **straggler** — synchronous training runs at the slowest worker's
  pace, so from the onset every iteration is scaled by the largest
  active slowdown factor (all methods suffer equally — stragglers
  compress the *relative* gap between methods);
* **storage_outage** — global-checkpoint persists pause during the
  window, so a crash after an outage loses work back to the last
  checkpoint that completed *before* it.  In-memory snapshots
  (CheckFreq/Elastic-Horovod) are unaffected.

The walk is segment-based (O(#events), not O(#iterations)); an
iteration in flight when an event lands is charged but not counted — the
same convention as :class:`~repro.sim.EndToEndSimulator`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chaos.scenarios import ScenarioSpec, get_scenario
from repro.chaos.trace import FailureTrace
from repro.core.strategy import FTStrategy
from repro.sim.costmodel import CostModel
from repro.sim.endtoend import per_iteration_overhead, recovery_seconds
from repro.sim.workloads import Workload

__all__ = [
    "GoodputResult",
    "method_for_strategy",
    "evaluate_trace",
    "evaluate_scenario",
]

#: analytic method names for the paper's three mechanisms
_STRATEGY_METHODS = {
    FTStrategy.REPLICATION: "swift_replication",
    FTStrategy.LOGGING: "swift_logging_pr",
    FTStrategy.CHECKPOINT_ONLY: "global_checkpoint",
}


def method_for_strategy(strategy: FTStrategy | str) -> str:
    """Map an :class:`FTStrategy` to its analytic cost-model method name.

    >>> from repro.core.strategy import FTStrategy
    >>> method_for_strategy(FTStrategy.REPLICATION)
    'swift_replication'
    """
    if isinstance(strategy, str):
        strategy = FTStrategy(strategy)
    return _STRATEGY_METHODS[strategy]


@dataclass(frozen=True)
class GoodputResult:
    """One method's outcome under one sampled trace."""

    scenario: str
    method: str
    seed: int
    #: end-to-end completion time, including every stall
    hours: float
    #: completion time had no event fired
    failure_free_hours: float
    num_crashes: int
    num_straggler_onsets: int
    num_storage_outages: int

    @property
    def goodput_fraction(self) -> float:
        """Useful fraction of the wall clock (failure-free / actual)."""
        return self.failure_free_hours / self.hours if self.hours else 0.0

    @property
    def overhead_hours(self) -> float:
        return self.hours - self.failure_free_hours


def evaluate_trace(
    trace: FailureTrace,
    workload: Workload,
    method: str,
    interval: int | None = None,
    cost: CostModel | None = None,
    parallel_degree: int = 16,
) -> GoodputResult:
    """End-to-end hours for ``method`` under the exact events of ``trace``.

    Deterministic: the same trace and workload always produce the same
    result (the trace carries all the randomness).
    """
    cost = cost or CostModel(workload, use_experiment_time=False)
    snapshot_based = method in ("checkfreq", "elastic_horovod")
    if interval is None:
        if snapshot_based:  # the tuned snapshot cadence, as EndToEnd does
            from repro.core.checkpoint import checkfreq_interval

            interval = checkfreq_interval(
                cost.iteration_time, cost.snapshot_stall()
            )
        else:
            interval = workload.checkpoint_interval_iters or 100
    dt_base = cost.iteration_time + per_iteration_overhead(
        cost, workload, method, interval
    )
    total = workload.total_iterations or 10_000

    # event timeline in seconds, time-ordered (ties: outages first so a
    # simultaneous crash already sees the window)
    order = {"storage_outage": 0, "straggler": 1, "crash": 2}
    events = sorted(
        trace.events, key=lambda e: (e.time_hours, order[e.kind], e.machine_id)
    )
    outages: list[tuple[float, float]] = []  # [start, end) in seconds

    def in_outage(t: float) -> bool:
        return any(start <= t < end for start, end in outages)

    elapsed = 0.0
    completed = 0
    last_ckpt = 0  # iteration of the last durable global checkpoint
    slowdown = 1.0
    crashes = onsets = outage_count = 0

    def advance_to(t_target: float) -> None:
        """Run whole iterations until the next would cross ``t_target``."""
        nonlocal elapsed, completed, last_ckpt
        dt = dt_base * slowdown
        while completed < total:
            boundary = (completed // interval + 1) * interval
            n = min(boundary, total) - completed
            fit = int((t_target - elapsed) / dt)
            if fit < n:
                completed += max(fit, 0)
                elapsed += max(fit, 0) * dt
                return
            completed += n
            elapsed += n * dt
            if completed % interval == 0 and not in_outage(elapsed):
                last_ckpt = completed

    for e in events:
        if completed >= total:
            break
        t = e.time_hours * 3600.0
        advance_to(t)
        if completed >= total:
            break
        # the iteration in flight at the event is charged but not counted
        elapsed = max(elapsed, t)
        if e.kind == "storage_outage":
            outage_count += 1
            outages.append((t, t + e.magnitude * 3600.0))
        elif e.kind == "straggler":
            onsets += 1
            slowdown = max(slowdown, e.magnitude)
        else:  # crash
            crashes += 1
            if method == "swift_replication":
                lost = 0  # undo resolves the partial update; nothing lost
            elif snapshot_based:
                lost = completed % interval  # in-memory snapshots persist
            else:
                lost = completed - last_ckpt
            elapsed += recovery_seconds(cost, method, lost, parallel_degree)

    if completed < total:
        # no events remain: run the tail uninterrupted
        elapsed += (total - completed) * dt_base * slowdown
        completed = total

    return GoodputResult(
        scenario=trace.scenario,
        method=method,
        seed=trace.seed,
        hours=elapsed / 3600.0,
        failure_free_hours=total * dt_base / 3600.0,
        num_crashes=crashes,
        num_straggler_onsets=onsets,
        num_storage_outages=outage_count,
    )


def evaluate_scenario(
    scenario: str | ScenarioSpec,
    workload: Workload,
    method: str,
    seeds=range(5),
    interval: int | None = None,
    horizon_hours: float | None = None,
    num_machines: int | None = None,
) -> list[GoodputResult]:
    """Evaluate ``method`` over freshly sampled traces of a scenario.

    One trace per seed; the horizon defaults to 1.5x the workload's
    published end-to-end hours so events keep arriving for the slower
    methods too.  Traces are sampled identically for every method
    evaluated with the same arguments — the comparison is paired.
    """
    spec = get_scenario(scenario)
    machines = num_machines or workload.num_machines
    hours = horizon_hours or max(
        spec.horizon_hours, 1.5 * (workload.end_to_end_hours or 100.0)
    )
    return [
        evaluate_trace(
            spec.sample(seed, machines, horizon_hours=hours),
            workload, method, interval=interval,
        )
        for seed in seeds
    ]
