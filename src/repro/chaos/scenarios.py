"""Named failure scenarios: the catalog the whole stack draws from.

A :class:`ScenarioSpec` composes one or more
:class:`~repro.chaos.distributions.FailureProcess` models with a time
horizon into a named, registered, seedable failure workload.  Sampling a
scenario yields a :class:`~repro.chaos.trace.FailureTrace`; the same
``(scenario, seed, num_machines)`` triple always yields the identical
trace (per-process RNG streams are derived with
:func:`repro.utils.seeding.derive_seed`, so adding a process to a
scenario never perturbs the streams of the ones before it).

The built-in catalog:

========================  ====================================================
``steady_mtbf``           the paper's uniform 17-hour-median exponential model
``rack_burst``            correlated rack/switch bursts over a light background
``flaky_node``            one pathological host dominating the failure log
``storage_outage``        checkpoint-store outages + moderate crash background
``cascading``             crashes triggering follow-up crashes (branching)
``infant_mortality``      bathtub hazard: young machines die more often
``stragglers``            slowdown onsets over the steady MTBF background
``drill_disjoint``        scripted: two disjoint machines at one iteration
``drill_adjacent``        scripted: two adjacent pipeline machines at once
``drill_cascading``       scripted: a crash, then a mid-update crash later
``drill_control_plane``   scripted: the serve drill's two mid-run crashes
``demo_fleet_crashes``    scripted: the fleet demo's two machine crashes
========================  ====================================================

Use :func:`register_scenario` to add custom scenarios; every consumer
(``FaultToleranceSpec(scenario=...)``, ``FleetSimulator(scenario=...)``,
``repro.cli chaos/fleet/fig8``) resolves names through this registry.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chaos.distributions import (
    BathtubMTBF,
    Cascade,
    FailureProcess,
    FlakyNode,
    PoissonMTBF,
    RackBurst,
    ScriptedEvents,
    StorageOutage,
    StragglerOnset,
)
from repro.chaos.trace import ChaosEvent, FailureTrace
from repro.cluster.failures import FailurePhase
from repro.errors import ConfigurationError
from repro.utils.seeding import derive_seed

__all__ = [
    "ScenarioSpec",
    "register_scenario",
    "get_scenario",
    "scenario_names",
]


@dataclass(frozen=True)
class ScenarioSpec:
    """A named, composable failure scenario.

    >>> from repro.chaos import ScenarioSpec, PoissonMTBF
    >>> spec = ScenarioSpec(name="my_mtbf", description="steady failures",
    ...                     processes=(PoissonMTBF(median_hours=10.0),))
    >>> trace = spec.sample(seed=1, num_machines=4, horizon_iters=50)
    >>> trace == spec.sample(seed=1, num_machines=4, horizon_iters=50)
    True
    >>> round(spec.rate_per_hour(4), 4)   # analytic ln(2)/10
    0.0693
    """

    name: str
    description: str
    processes: tuple[FailureProcess, ...]
    #: simulated wall-clock span one sampled trace covers
    horizon_hours: float = 100.0
    #: default engine-iteration horizon for CLI / benchmark runs
    default_iters: int = 60

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario name must be non-empty")
        if not self.processes:
            raise ConfigurationError(
                f"scenario {self.name!r} needs at least one process"
            )
        object.__setattr__(self, "processes", tuple(self.processes))
        if self.horizon_hours <= 0:
            raise ConfigurationError("horizon_hours must be positive")
        if self.default_iters < 1:
            raise ConfigurationError("default_iters must be >= 1")

    # -- sampling ---------------------------------------------------------
    def sample(
        self,
        seed: int,
        num_machines: int,
        horizon_iters: int | None = None,
        horizon_hours: float | None = None,
    ) -> FailureTrace:
        """Draw one :class:`FailureTrace` for this scenario.

        Each process samples from its own derived stream
        (``derive_seed(seed, "chaos", name, index)``), so traces are
        reproducible and process-order independent in their randomness.
        ``horizon_iters`` additionally maps events onto engine
        iterations (see :meth:`FailureTrace.with_iterations`).
        """
        if num_machines < 1:
            raise ConfigurationError("num_machines must be >= 1")
        hours = self.horizon_hours if horizon_hours is None else horizon_hours
        events: list[ChaosEvent] = []
        for index, process in enumerate(self.processes):
            rng = np.random.default_rng(
                derive_seed(seed, "chaos", self.name, index)
            )
            events.extend(process.events(rng, num_machines, hours))
        events.sort(key=lambda e: (e.time_hours, e.machine_id, e.kind))
        trace = FailureTrace(
            scenario=self.name,
            seed=seed,
            num_machines=num_machines,
            horizon_hours=hours,
            events=tuple(events),
        )
        if horizon_iters is not None:
            trace = trace.with_iterations(horizon_iters)
        return trace

    # -- analytics --------------------------------------------------------
    def rate_per_hour(self, num_machines: int) -> float:
        """Expected machine-crash rate (events/hour), summed over processes."""
        return sum(p.rate_per_hour(num_machines) for p in self.processes)

    def expected_failures(
        self, num_machines: int, horizon_hours: float | None = None
    ) -> float:
        hours = self.horizon_hours if horizon_hours is None else horizon_hours
        return self.rate_per_hour(num_machines) * hours


_REGISTRY: dict[str, ScenarioSpec] = {}


def register_scenario(
    spec: ScenarioSpec, *, replace: bool = False
) -> ScenarioSpec:
    """Register a scenario under ``spec.name``; returns it for chaining.

    >>> from repro.chaos import (ScenarioSpec, PoissonMTBF,
    ...                          register_scenario, scenario_names)
    >>> _ = register_scenario(ScenarioSpec(
    ...     name="docs_example", description="for the docs",
    ...     processes=(PoissonMTBF(median_hours=5.0),)), replace=True)
    >>> "docs_example" in scenario_names()
    True
    """
    if not replace and spec.name in _REGISTRY:
        raise ConfigurationError(
            f"scenario {spec.name!r} already registered"
        )
    _REGISTRY[spec.name] = spec
    return spec


def get_scenario(name: str | ScenarioSpec) -> ScenarioSpec:
    """Resolve a scenario by name (specs pass through unchanged).

    >>> from repro.chaos import get_scenario
    >>> get_scenario("steady_mtbf").rate_per_hour(8) > 0
    True
    """
    if isinstance(name, ScenarioSpec):
        return name
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def scenario_names() -> list[str]:
    """Sorted names of every registered scenario.

    >>> {"steady_mtbf", "rack_burst", "cascading"} <= set(scenario_names())
    True
    """
    return sorted(_REGISTRY)


# -- the built-in catalog ---------------------------------------------------

register_scenario(ScenarioSpec(
    name="steady_mtbf",
    description=(
        "The paper's Section 7.3 model: cluster-wide exponential "
        "inter-failure times with a 17-hour median, the failing machine "
        "drawn uniformly."
    ),
    processes=(PoissonMTBF(median_hours=17.0),),
))

register_scenario(ScenarioSpec(
    name="rack_burst",
    description=(
        "Correlated rack/switch faults: bursts take down 2+ co-located "
        "machines within seconds, over a light independent background."
    ),
    processes=(
        RackBurst(burst_rate_per_khour=30.0, rack_size=2),
        PoissonMTBF(median_hours=70.0),
    ),
))

register_scenario(ScenarioSpec(
    name="flaky_node",
    description=(
        "One pathological host (7x the background failure rate) dominating "
        "the failure log, over the steady background."
    ),
    processes=(
        FlakyNode(median_hours=10.0),
        PoissonMTBF(median_hours=70.0),
    ),
))

register_scenario(ScenarioSpec(
    name="storage_outage",
    description=(
        "Checkpoint-store outages (persists pause; crashes during the "
        "window lose extra work) plus a moderate crash background."
    ),
    processes=(
        StorageOutage(outage_rate_per_khour=20.0,
                      duration_hours_min=1.0, duration_hours_max=4.0),
        PoissonMTBF(median_hours=20.0),
    ),
))

register_scenario(ScenarioSpec(
    name="cascading",
    description=(
        "Branching failures: each crash triggers a crash of another "
        "machine with probability 0.6 after a short delay."
    ),
    processes=(
        Cascade(trigger_median_hours=30.0, cascade_probability=0.6,
                mid_update_fraction=0.25),
    ),
))

register_scenario(ScenarioSpec(
    name="infant_mortality",
    description=(
        "Bathtub hazard: a freshly provisioned cluster fails often in "
        "its first day, then settles to the steady rate."
    ),
    processes=(
        BathtubMTBF(steady_rate_per_khour=8.0,
                    infant_rate_per_khour=30.0,
                    infant_decay_hours=24.0),
    ),
))

register_scenario(ScenarioSpec(
    name="stragglers",
    description=(
        "Straggler onsets (synchronous training runs at the slowest "
        "worker's pace) over the paper's steady MTBF background."
    ),
    processes=(
        StragglerOnset(onset_rate_per_khour=20.0),
        PoissonMTBF(median_hours=17.0),
    ),
))


def _drill(iteration: int, machine: int, phase: FailurePhase,
           after_updates: int = 0) -> ChaosEvent:
    """Scripted drill event: one hour per iteration for readability."""
    return ChaosEvent(
        time_hours=float(iteration), machine_id=machine,
        iteration=iteration, phase=phase.value,
        after_updates=after_updates,
    )


register_scenario(ScenarioSpec(
    name="drill_disjoint",
    description=(
        "Appendix-B drill: machines hosting disjoint pipeline portions "
        "fail at the same iteration; each span recovers independently."
    ),
    processes=(ScriptedEvents(script=(
        _drill(20, 1, FailurePhase.FORWARD),
        _drill(20, 4, FailurePhase.ITERATION_START),
    )),),
    horizon_hours=48.0,
    default_iters=48,
))

register_scenario(ScenarioSpec(
    name="drill_adjacent",
    description=(
        "Appendix-B drill: two adjacent pipeline machines fail at once "
        "and recover jointly as one span."
    ),
    processes=(ScriptedEvents(script=(
        _drill(25, 2, FailurePhase.FORWARD),
        _drill(25, 3, FailurePhase.ITERATION_START),
    )),),
    horizon_hours=48.0,
    default_iters=48,
))

register_scenario(ScenarioSpec(
    name="drill_cascading",
    description=(
        "Appendix-B drill: a backward-pass crash, then a second machine "
        "dies mid-update after the first recovery completed."
    ),
    processes=(ScriptedEvents(script=(
        _drill(15, 0, FailurePhase.BACKWARD),
        _drill(30, 5, FailurePhase.MID_UPDATE, after_updates=2),
    )),),
    horizon_hours=48.0,
    default_iters=48,
))

register_scenario(ScenarioSpec(
    name="drill_control_plane",
    description=(
        "The control-plane chaos drill's machine-failure component: two "
        "crashes landing while repro.serve's control_plane_drill kills "
        "and restarts the scheduler itself at successive WAL offsets "
        "(run `repro serve --drill`)."
    ),
    processes=(ScriptedEvents(script=(
        _drill(4, 1, FailurePhase.ITERATION_START),
        _drill(9, 2, FailurePhase.ITERATION_START),
    )),),
    horizon_hours=40.0,
    default_iters=40,
))

register_scenario(ScenarioSpec(
    name="demo_fleet_crashes",
    description=(
        "The canonical fleet demo's two machine crashes (rounds 4 and "
        "10), as a named scenario instead of an inline list."
    ),
    processes=(ScriptedEvents(script=(
        _drill(4, 0, FailurePhase.ITERATION_START),
        _drill(10, 2, FailurePhase.ITERATION_START),
    )),),
    horizon_hours=30.0,
    default_iters=30,
))
