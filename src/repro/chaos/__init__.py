"""repro.chaos — trace- and distribution-driven failure scenarios.

The paper's claim is that logging-based recovery with parallel replay
beats global-restart checkpointing *under realistic failure patterns* —
yet reproductions (this one included, until now) typically inject
failures from a single hand-picked ``(iteration, worker)`` list.  This
package makes failure workloads first-class:

* :mod:`~repro.chaos.distributions` — seeded failure processes:
  Poisson/Weibull per-machine MTBF, bathtub infant mortality, bursty
  correlated rack failures, cascades, flaky nodes, straggler onset,
  storage outages;
* :mod:`~repro.chaos.trace` — :class:`FailureTrace`, a versioned,
  seed-stamped JSONL record/replay format: any stochastic run can be
  re-executed bitwise-deterministically from its trace;
* :mod:`~repro.chaos.scenarios` — a registry of named scenarios
  ("steady_mtbf", "rack_burst", "flaky_node", "storage_outage",
  "cascading", ...) composable into a :class:`ScenarioSpec`;
* :mod:`~repro.chaos.evaluate` — analytic goodput of each recovery
  method under a trace, on the calibrated paper-scale cost model.

Typical use::

    from repro.chaos import get_scenario

    trace = get_scenario("rack_burst").sample(
        seed=0, num_machines=4, horizon_iters=60)
    schedule = trace.to_schedule()       # feed any engine / Session.run
    trace.save("traces/rack_burst_0.jsonl")   # replay it later, bitwise
"""

from repro.chaos.distributions import (
    BathtubMTBF,
    Cascade,
    FailureProcess,
    FlakyNode,
    PoissonMTBF,
    RackBurst,
    ScriptedEvents,
    StorageOutage,
    StragglerOnset,
    WeibullMTBF,
)
from repro.chaos.evaluate import (
    GoodputResult,
    evaluate_scenario,
    evaluate_trace,
    evaluate_traces,
    method_for_strategy,
    sample_paired_traces,
)
from repro.chaos.scenarios import (
    ScenarioSpec,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.chaos.trace import TRACE_VERSION, ChaosEvent, FailureTrace

__all__ = [
    "ChaosEvent",
    "FailureTrace",
    "TRACE_VERSION",
    "ScenarioSpec",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "FailureProcess",
    "PoissonMTBF",
    "WeibullMTBF",
    "BathtubMTBF",
    "RackBurst",
    "Cascade",
    "FlakyNode",
    "StragglerOnset",
    "StorageOutage",
    "ScriptedEvents",
    "GoodputResult",
    "evaluate_trace",
    "evaluate_traces",
    "evaluate_scenario",
    "sample_paired_traces",
    "method_for_strategy",
]
