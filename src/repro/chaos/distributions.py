"""Seeded failure processes: the statistical machinery behind scenarios.

The seed reproduction injected failures from hand-picked ``(iteration,
machine)`` lists or a single uniform-exponential sampler.  Real clusters
fail differently: per-machine MTBF follows heavy-tailed distributions,
young machines die more often (infant mortality), rack/switch faults
take down *groups* of machines at once, one flaky host can dominate the
failure log, and stragglers degrade throughput without crashing anything.

Each process here turns a seeded :class:`numpy.random.Generator` plus a
cluster shape and time horizon into a list of
:class:`~repro.chaos.trace.ChaosEvent` rows.  Processes are small frozen
dataclasses, so a :class:`~repro.chaos.scenarios.ScenarioSpec` composing
them is hashable and printable, and the same ``(process, seed)`` pair
always yields the same events — the contract the
:class:`~repro.chaos.trace.FailureTrace` replay format relies on.

All sampling uses ``numpy.random.default_rng`` streams derived via
:func:`repro.utils.seeding.derive_seed`, never global RNG state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.chaos.trace import ChaosEvent
from repro.cluster.failures import FailurePhase
from repro.errors import ConfigurationError

__all__ = [
    "FailureProcess",
    "PoissonMTBF",
    "WeibullMTBF",
    "BathtubMTBF",
    "RackBurst",
    "Cascade",
    "FlakyNode",
    "StragglerOnset",
    "StorageOutage",
    "ScriptedEvents",
]

LN2 = float(np.log(2.0))


@runtime_checkable
class FailureProcess(Protocol):
    """One stochastic (or scripted) source of chaos events.

    Implementations are pure samplers: ``events(rng, num_machines,
    horizon_hours)`` must depend only on its arguments, so scenario
    sampling stays deterministic under a fixed seed.
    ``rate_per_hour(num_machines)`` is the analytic expected event rate
    used by :meth:`ExecutionPlan.describe` predictions.
    """

    def events(
        self,
        rng: np.random.Generator,
        num_machines: int,
        horizon_hours: float,
    ) -> list[ChaosEvent]: ...

    def rate_per_hour(self, num_machines: int) -> float: ...


def _phase_for(rng: np.random.Generator, mid_update_fraction: float) -> tuple[str, int]:
    """Sample the within-iteration crash point.

    Most crashes land between iterations; a configurable fraction lands
    mid-update (the Figure 4 crash-consistency window), with 1-3 layer
    updates already applied.
    """
    if mid_update_fraction > 0 and rng.uniform() < mid_update_fraction:
        return FailurePhase.MID_UPDATE.value, int(rng.integers(1, 4))
    return FailurePhase.ITERATION_START.value, 0


@dataclass(frozen=True)
class PoissonMTBF:
    """Cluster-wide Poisson failures from a per-machine median TBF.

    The paper's simulation-study model (Section 7.3, following Maeng et
    al.): exponential inter-failure times with a given *median*, scaled
    by machine count, the failing machine drawn uniformly.
    """

    median_hours: float = 17.0
    #: scale the rate with cluster size (False = whole-cluster median,
    #: the paper's single-job assumption)
    per_machine: bool = False
    mid_update_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.median_hours <= 0:
            raise ConfigurationError("median_hours must be positive")

    def rate_per_hour(self, num_machines: int) -> float:
        rate = LN2 / self.median_hours
        return rate * num_machines if self.per_machine else rate

    def events(self, rng, num_machines, horizon_hours):
        rate = self.rate_per_hour(num_machines)
        out: list[ChaosEvent] = []
        t = float(rng.exponential(1.0 / rate))
        while t < horizon_hours:
            phase, after = _phase_for(rng, self.mid_update_fraction)
            out.append(ChaosEvent(
                time_hours=t,
                machine_id=int(rng.integers(num_machines)),
                phase=phase, after_updates=after,
            ))
            t += float(rng.exponential(1.0 / rate))
        return out


@dataclass(frozen=True)
class WeibullMTBF:
    """Per-machine Weibull inter-failure times.

    ``shape < 1`` models decreasing hazard (most failures early after
    each repair — the empirically observed cluster regime), ``shape = 1``
    degenerates to exponential, ``shape > 1`` models wear-out.
    ``scale_hours`` is the Weibull scale (characteristic life) of each
    machine.
    """

    scale_hours: float = 120.0
    shape: float = 0.7

    def __post_init__(self) -> None:
        if self.scale_hours <= 0 or self.shape <= 0:
            raise ConfigurationError("scale_hours and shape must be positive")

    def rate_per_hour(self, num_machines: int) -> float:
        # mean TBF of a Weibull is scale * Gamma(1 + 1/shape)
        from math import gamma

        mean_tbf = self.scale_hours * gamma(1.0 + 1.0 / self.shape)
        return num_machines / mean_tbf

    def events(self, rng, num_machines, horizon_hours):
        out: list[ChaosEvent] = []
        for m in range(num_machines):
            t = float(self.scale_hours * rng.weibull(self.shape))
            while t < horizon_hours:
                out.append(ChaosEvent(time_hours=t, machine_id=m))
                t += float(self.scale_hours * rng.weibull(self.shape))
        return out


@dataclass(frozen=True)
class BathtubMTBF:
    """Bathtub hazard: infant mortality + steady state (+ wear-out).

    The instantaneous per-machine failure rate is::

        rate(t) = steady + infant * exp(-t / infant_decay_hours)
                         + wearout * max(0, t - wearout_onset) / horizon

    sampled by thinning a dominating Poisson process, so young machines
    (or a freshly provisioned cluster) fail markedly more often.
    """

    steady_rate_per_khour: float = 8.0
    infant_rate_per_khour: float = 60.0
    infant_decay_hours: float = 24.0
    wearout_rate_per_khour: float = 0.0
    wearout_onset_hours: float = 0.0

    def __post_init__(self) -> None:
        if self.steady_rate_per_khour < 0 or self.infant_rate_per_khour < 0:
            raise ConfigurationError("rates must be >= 0")
        if self.infant_decay_hours <= 0:
            raise ConfigurationError("infant_decay_hours must be positive")

    def _rate(self, t: float, horizon: float) -> float:
        rate = self.steady_rate_per_khour + self.infant_rate_per_khour * float(
            np.exp(-t / self.infant_decay_hours)
        )
        if self.wearout_rate_per_khour > 0 and horizon > 0:
            rate += self.wearout_rate_per_khour * max(
                0.0, t - self.wearout_onset_hours
            ) / horizon
        return rate / 1000.0

    def rate_per_hour(self, num_machines: int) -> float:
        # long-run average approximated by the steady-state arm plus the
        # amortized infant burst
        steady = self.steady_rate_per_khour / 1000.0
        return steady * num_machines

    def events(self, rng, num_machines, horizon_hours):
        # dominating rate for thinning: rate(0) is the maximum of the
        # infant+steady arms; the wear-out arm peaks at the horizon
        max_rate = max(
            self._rate(0.0, horizon_hours),
            self._rate(horizon_hours, horizon_hours),
        ) * num_machines
        if max_rate <= 0:
            return []
        out: list[ChaosEvent] = []
        t = float(rng.exponential(1.0 / max_rate))
        while t < horizon_hours:
            accept = (
                self._rate(t, horizon_hours) * num_machines / max_rate
            )
            if rng.uniform() < accept:
                out.append(ChaosEvent(
                    time_hours=t,
                    machine_id=int(rng.integers(num_machines)),
                ))
            t += float(rng.exponential(1.0 / max_rate))
        return out


@dataclass(frozen=True)
class RackBurst:
    """Correlated rack/switch failures: bursts of co-located crashes.

    Bursts arrive as a Poisson process; each burst picks a rack
    (machines are laid out contiguously, ``rack_size`` per rack) and
    fails 2..rack_size of its machines within a ``burst_window_hours``
    window — the failure pattern single-machine MTBF models miss, and
    the one that distinguishes recovery mechanisms that tolerate
    multi-machine failures from those that do not.
    """

    burst_rate_per_khour: float = 4.0
    rack_size: int = 2
    burst_window_hours: float = 0.05
    mid_update_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.rack_size < 2:
            raise ConfigurationError("rack_size must be >= 2")
        if self.burst_rate_per_khour <= 0:
            raise ConfigurationError("burst_rate_per_khour must be positive")

    def rate_per_hour(self, num_machines: int) -> float:
        # expected crashes/hour: bursts/hour x mean burst size, using
        # the same size cap as events() (a 2-machine cluster can only
        # lose one machine per burst)
        max_size = min(self.rack_size, max(1, num_machines - 1))
        mean_size = (2 + max_size) / 2.0 if max_size >= 2 else 1.0
        return self.burst_rate_per_khour / 1000.0 * mean_size

    def events(self, rng, num_machines, horizon_hours):
        rate = self.burst_rate_per_khour / 1000.0
        num_racks = max(1, num_machines // self.rack_size)
        out: list[ChaosEvent] = []
        t = float(rng.exponential(1.0 / rate))
        while t < horizon_hours:
            rack = int(rng.integers(num_racks))
            first = rack * self.rack_size
            members = list(range(
                first, min(first + self.rack_size, num_machines)
            ))
            # never take the whole cluster down in one burst
            max_size = min(len(members), max(1, num_machines - 1))
            size = (
                int(rng.integers(2, max_size + 1)) if max_size >= 2 else 1
            )
            victims = rng.permutation(len(members))[:size]
            for k, vi in enumerate(sorted(int(v) for v in victims)):
                phase, after = _phase_for(rng, self.mid_update_fraction)
                out.append(ChaosEvent(
                    time_hours=t + k * self.burst_window_hours / max(size, 1),
                    machine_id=members[vi],
                    phase=phase, after_updates=after,
                ))
            t += float(rng.exponential(1.0 / rate))
        return out


@dataclass(frozen=True)
class FlakyNode:
    """One pathological machine failing far more often than the rest.

    ``machine_id=None`` samples the flaky machine once per trace (the
    usual case: you do not know in advance which host is bad).
    """

    median_hours: float = 4.0
    machine_id: int | None = None

    def __post_init__(self) -> None:
        if self.median_hours <= 0:
            raise ConfigurationError("median_hours must be positive")

    def rate_per_hour(self, num_machines: int) -> float:
        return LN2 / self.median_hours

    def events(self, rng, num_machines, horizon_hours):
        machine = (
            int(rng.integers(num_machines))
            if self.machine_id is None
            else self.machine_id % num_machines
        )
        rate = self.rate_per_hour(num_machines)
        out: list[ChaosEvent] = []
        t = float(rng.exponential(1.0 / rate))
        while t < horizon_hours:
            out.append(ChaosEvent(time_hours=t, machine_id=machine))
            t += float(rng.exponential(1.0 / rate))
        return out


@dataclass(frozen=True)
class StragglerOnset:
    """Machines degrading to a slowdown factor at a random onset time.

    Synchronous data/pipeline parallelism runs at the slowest worker's
    pace, so one straggler costs the whole job its slowdown factor.
    Events carry ``kind="straggler"`` with the factor in ``magnitude``;
    the analytic goodput evaluation consumes them (the bitwise engine
    paths ignore non-crash events).
    """

    onset_rate_per_khour: float = 5.0
    slowdown_min: float = 1.15
    slowdown_max: float = 1.6

    def __post_init__(self) -> None:
        if not 1.0 <= self.slowdown_min <= self.slowdown_max:
            raise ConfigurationError(
                "need 1.0 <= slowdown_min <= slowdown_max"
            )

    def rate_per_hour(self, num_machines: int) -> float:
        # stragglers do not crash machines; they shave goodput instead
        return 0.0

    def events(self, rng, num_machines, horizon_hours):
        rate = self.onset_rate_per_khour / 1000.0
        out: list[ChaosEvent] = []
        t = float(rng.exponential(1.0 / rate))
        while t < horizon_hours:
            out.append(ChaosEvent(
                time_hours=t,
                machine_id=int(rng.integers(num_machines)),
                kind="straggler",
                magnitude=float(rng.uniform(self.slowdown_min,
                                            self.slowdown_max)),
            ))
            t += float(rng.exponential(1.0 / rate))
        return out


@dataclass(frozen=True)
class StorageOutage:
    """Global-checkpoint-store outages of sampled duration.

    During an outage checkpoints cannot persist, so a crash landing in
    (or shortly after) the window loses work back to the last checkpoint
    *before* the outage — the failure mode that punishes
    checkpoint-only recovery hardest.  Events carry
    ``kind="storage_outage"`` with the duration in ``magnitude``.
    """

    outage_rate_per_khour: float = 2.0
    duration_hours_min: float = 0.5
    duration_hours_max: float = 3.0

    def __post_init__(self) -> None:
        if not 0 < self.duration_hours_min <= self.duration_hours_max:
            raise ConfigurationError(
                "need 0 < duration_hours_min <= duration_hours_max"
            )

    def rate_per_hour(self, num_machines: int) -> float:
        return 0.0  # outages alone crash nothing

    def events(self, rng, num_machines, horizon_hours):
        rate = self.outage_rate_per_khour / 1000.0
        out: list[ChaosEvent] = []
        t = float(rng.exponential(1.0 / rate))
        while t < horizon_hours:
            out.append(ChaosEvent(
                time_hours=t, machine_id=0, kind="storage_outage",
                magnitude=float(rng.uniform(self.duration_hours_min,
                                            self.duration_hours_max)),
            ))
            t += float(rng.exponential(1.0 / rate))
        return out


@dataclass(frozen=True)
class Cascade:
    """Cascading failures: each crash may trigger follow-up crashes.

    Primary crashes arrive as a Poisson process; every crash then
    triggers a crash of a *different* machine with probability
    ``cascade_probability`` after a short exponential delay, and the
    follow-up can cascade again (a sub-critical branching process —
    keep ``cascade_probability < 1``).  Models correlated software
    faults: a bad rollout, a poisoned checkpoint, load redistributed
    onto the survivors.
    """

    trigger_median_hours: float = 30.0
    cascade_probability: float = 0.6
    cascade_delay_hours: float = 0.2
    mid_update_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.trigger_median_hours <= 0:
            raise ConfigurationError("trigger_median_hours must be positive")
        if not 0 <= self.cascade_probability < 1:
            raise ConfigurationError(
                "cascade_probability must be in [0, 1)"
            )

    def rate_per_hour(self, num_machines: int) -> float:
        # branching process: E[chain length] = 1 / (1 - p)
        trigger_rate = LN2 / self.trigger_median_hours
        return trigger_rate / (1.0 - self.cascade_probability)

    def events(self, rng, num_machines, horizon_hours):
        trigger_rate = LN2 / self.trigger_median_hours
        out: list[ChaosEvent] = []
        t = float(rng.exponential(1.0 / trigger_rate))
        while t < horizon_hours:
            chain_t = t
            machine = int(rng.integers(num_machines))
            chain_machines = {machine}
            phase, after = _phase_for(rng, self.mid_update_fraction)
            out.append(ChaosEvent(time_hours=chain_t, machine_id=machine,
                                  phase=phase, after_updates=after))
            # follow-ups: geometric chain over fresh machines
            while (
                len(chain_machines) < num_machines
                and rng.uniform() < self.cascade_probability
            ):
                chain_t += float(rng.exponential(self.cascade_delay_hours))
                if chain_t >= horizon_hours:
                    break
                victim = int(rng.integers(num_machines))
                if victim in chain_machines:
                    # pick the next free machine deterministically
                    victim = next(
                        m for m in range(num_machines)
                        if m not in chain_machines
                    )
                chain_machines.add(victim)
                phase, after = _phase_for(rng, self.mid_update_fraction)
                out.append(ChaosEvent(time_hours=chain_t, machine_id=victim,
                                      phase=phase, after_updates=after))
            t += float(rng.exponential(1.0 / trigger_rate))
        return out


@dataclass(frozen=True)
class ScriptedEvents:
    """A deterministic event list, wrapped as a process.

    Lets hand-authored drills (the Appendix-B multi-failure scenarios,
    the fleet demo's two crashes) live in the same scenario registry as
    the stochastic models — named, replayable, and composable.  Events
    are given directly as :class:`ChaosEvent` rows; the rng is unused.
    """

    script: tuple[ChaosEvent, ...] = ()

    def rate_per_hour(self, num_machines: int) -> float:
        crashes = [e for e in self.script if e.kind == "crash"]
        if not crashes:
            return 0.0
        span = max(e.time_hours for e in crashes) or 1.0
        return len(crashes) / span

    def events(self, rng, num_machines, horizon_hours):
        return [
            e for e in self.script
            if e.time_hours < horizon_hours and e.machine_id < num_machines
        ]
