"""Pluggable searchers over a :class:`~repro.plan.SearchSpace`.

Two built-ins cover the grid sizes the planner meets in practice:

* :class:`ExhaustiveSearcher` — score every feasible point; with eager
  pruning and the memoized objective a full Table-2 grid costs seconds;
* :class:`AnnealSearcher` — seeded beam-style annealing for spaces too
  large to enumerate: keep the best ``beam`` candidates, mutate each a
  few times per generation, repeat.  Deterministic given ``seed`` (the
  RNG stream is derived with :func:`repro.utils.seeding.derive_seed`).

Third parties register their own via :func:`register_searcher`; the
registry is the same extension-point shape as
``repro.core.policies.register_recovery_policy``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.plan.objective import CandidateScore, GoodputObjective
from repro.plan.space import SearchSpace
from repro.utils.seeding import derive_seed

__all__ = [
    "Searcher",
    "ExhaustiveSearcher",
    "AnnealSearcher",
    "register_searcher",
    "get_searcher",
    "searcher_names",
]


def ranked_scores(scores) -> list[CandidateScore]:
    """Sort by descending goodput, candidate key as the deterministic
    tie-break (insertion order never leaks into the result)."""
    return sorted(
        scores,
        key=lambda s: (-s.goodput_samples_per_sec, s.candidate.key()),
    )


class Searcher:
    """The searcher protocol: rank a space's candidates by objective.

    Subclasses implement :meth:`search`, returning every scored
    candidate best-first.  They must be deterministic given ``seed``.

    >>> issubclass(ExhaustiveSearcher, Searcher)
    True
    >>> get_searcher("exhaustive").name
    'exhaustive'
    """

    name = "base"

    def search(
        self,
        space: SearchSpace,
        objective: GoodputObjective,
        seed: int = 0,
    ) -> list[CandidateScore]:
        raise NotImplementedError


class ExhaustiveSearcher(Searcher):
    """Score every feasible candidate in the grid.

    >>> from repro.api import (ClusterSpec, Experiment, ModelSpec,
    ...                        ParallelismSpec)
    >>> from repro.plan.objective import GoodputObjective
    >>> from repro.plan.space import ExperimentSearchSpace
    >>> space = ExperimentSearchSpace(Experiment(
    ...     model=ModelSpec(family="mlp", dim=4, hidden_dim=8),
    ...     cluster=ClusterSpec(num_machines=2, devices_per_machine=1),
    ...     parallelism=ParallelismSpec(kind="dp", num_workers=2)),
    ...     kinds=("dp",), intervals=(10, 50))
    >>> objective = GoodputObjective(space, "steady_mtbf", eval_seeds=1)
    >>> ranked = ExhaustiveSearcher().search(space, objective)
    >>> len(ranked) == space.stats.feasible
    True
    """

    name = "exhaustive"

    def search(self, space, objective, seed: int = 0):
        return ranked_scores(
            objective.score(c) for c in space.iter_feasible()
        )


class AnnealSearcher(Searcher):
    """Seeded beam/anneal search for grids too large to enumerate.

    The pool seeds with the space's default candidate plus ``explore``
    uniform draws; each generation mutates every beam member
    ``mutations`` times, keeping everything ever scored (the memoized
    objective makes re-visits free).

    >>> from repro.api import (ClusterSpec, Experiment, ModelSpec,
    ...                        ParallelismSpec)
    >>> from repro.plan.objective import GoodputObjective
    >>> from repro.plan.space import ExperimentSearchSpace
    >>> space = ExperimentSearchSpace(Experiment(
    ...     model=ModelSpec(family="mlp", dim=4, hidden_dim=8),
    ...     cluster=ClusterSpec(num_machines=2, devices_per_machine=1),
    ...     parallelism=ParallelismSpec(kind="dp", num_workers=2)),
    ...     kinds=("dp",), intervals=(10, 50))
    >>> objective = GoodputObjective(space, "steady_mtbf", eval_seeds=1)
    >>> searcher = AnnealSearcher(beam=2, generations=2)
    >>> one = searcher.search(space, objective, seed=7)
    >>> two = searcher.search(space, objective, seed=7)
    >>> [s.candidate.label() for s in one] == [
    ...     s.candidate.label() for s in two]
    True
    """

    name = "anneal"

    def __init__(
        self,
        beam: int = 6,
        generations: int = 10,
        mutations: int = 4,
        explore: int = 8,
    ) -> None:
        self.beam = beam
        self.generations = generations
        self.mutations = mutations
        self.explore = explore

    def search(self, space, objective, seed: int = 0):
        rng = np.random.default_rng(derive_seed(seed, "plan", self.name))
        pool: dict[tuple, CandidateScore] = {}

        def consider(candidate) -> None:
            key = candidate.key()
            if key in pool:
                return
            if space.feasible(candidate) is not None:
                return
            pool[key] = objective.score(candidate)

        consider(space.default())
        for _ in range(self.explore):
            consider(space.random_candidate(rng))
        for _ in range(self.generations):
            beam = ranked_scores(pool.values())[: self.beam]
            for score in beam:
                for _ in range(self.mutations):
                    consider(space.mutate(score.candidate, rng))
        return ranked_scores(pool.values())


_SEARCHERS: dict[str, type[Searcher]] = {
    ExhaustiveSearcher.name: ExhaustiveSearcher,
    AnnealSearcher.name: AnnealSearcher,
}


def register_searcher(cls: type[Searcher]) -> type[Searcher]:
    """Register a custom :class:`Searcher` under its ``name``.

    Returns the class, so it stacks as a decorator.

    >>> @register_searcher
    ... class FirstOnly(Searcher):
    ...     name = "first-only-doc"
    ...     def search(self, space, objective, seed=0):
    ...         for c in space.iter_feasible():
    ...             return [objective.score(c)]
    ...         return []
    >>> "first-only-doc" in searcher_names()
    True
    """
    name = getattr(cls, "name", None)
    if not name or name == Searcher.name:
        raise ConfigurationError(
            "searcher classes must define a unique 'name' attribute"
        )
    _SEARCHERS[name] = cls
    return cls


def get_searcher(name: str) -> Searcher:
    """Instantiate a registered searcher by name.

    >>> get_searcher("anneal").name
    'anneal'
    >>> get_searcher("gradient-descent")
    Traceback (most recent call last):
        ...
    repro.errors.ConfigurationError: unknown searcher 'gradient-descent'; ...
    """
    try:
        cls = _SEARCHERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown searcher {name!r}; known: {searcher_names()}"
        ) from None
    return cls()


def searcher_names() -> list[str]:
    """Sorted names of every registered searcher.

    >>> {'anneal', 'exhaustive'} <= set(searcher_names())
    True
    """
    return sorted(_SEARCHERS)
