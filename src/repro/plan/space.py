"""Candidate enumeration over the joint configuration space.

The paper's Section 3 decision chain and Section 5.4 calculus make
strategy choice a *quantitative* decision; this module turns the whole
configuration question — parallelism kind and degree, micro-batch count,
recovery strategy, parallel-recovery degree, selective-logging budget,
and checkpoint cadence — into an enumerable, mutable space of
:class:`Candidate` points.

Infeasible points must cost nothing: :meth:`SearchSpace.feasible` runs
the cheap structural checks first (placement fit, strategy/parallelism
compatibility, Table-1 optimizer invertibility, replica coverage, the
Section 5.4 logging calculus) and only then the full spec cross-field
validators, recording *why* each point died in :class:`PruneStats` so
the final :class:`~repro.plan.PlanSearchReport` can show where the grid
collapsed.

Two concrete spaces ship: :class:`ExperimentSearchSpace` re-plans a
live :class:`~repro.api.Experiment` (and can lower any candidate back
into one for engine-measured validation), while
:class:`WorkloadSearchSpace` searches a published Table-2
:class:`~repro.sim.Workload` analytically.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.strategy import logging_worth_it
from repro.errors import ConfigurationError
from repro.optim import optimizer_invertible
from repro.parallel.programs import default_virtual_stages
from repro.sim.costmodel import HardwareConfig
from repro.sim.workloads import Workload

__all__ = [
    "Candidate",
    "PruneStats",
    "SearchSpace",
    "ExperimentSearchSpace",
    "WorkloadSearchSpace",
    "PlanSearchError",
]

GB = 1e9

#: recovery strategies compatible with each parallelism kind (Section 3:
#: replication needs machine-level replicas, logging needs a pipeline)
_KIND_STRATEGIES = {
    "dp": ("replication", "checkpoint_only"),
    "pp": ("logging", "checkpoint_only"),
    "fsdp": ("replication",),
}


class PlanSearchError(ConfigurationError):
    """A plan search could not produce any feasible candidate.

    >>> raise PlanSearchError("no feasible candidates")
    Traceback (most recent call last):
        ...
    repro.plan.space.PlanSearchError: no feasible candidates
    """


@dataclass(frozen=True)
class Candidate:
    """One point of the (parallelism x recovery x cadence) space.

    Frozen and hashable so spaces can memoize derived experiments and
    the objective can memoize cost evaluations.  ``log_budget_gb`` is
    the Section 5.3 selective-logging storage budget (``None`` =
    unbudgeted logging).

    >>> c = Candidate(kind="pp", num_workers=4, num_microbatches=4,
    ...               strategy="logging", checkpoint_interval=20,
    ...               parallel_recovery_degree=4)
    >>> c.label()
    'pp4xm4/logging/ckpt20/pr4'
    >>> c.to_dict()["strategy"]
    'logging'
    """

    kind: str
    num_workers: int
    num_microbatches: int
    strategy: str
    checkpoint_interval: int
    parallel_recovery_degree: int = 1
    log_budget_gb: float | None = None
    #: registered pipeline schedule program (pp candidates only)
    schedule: str = "1f1b"

    def key(self) -> tuple:
        """Total-order identity (used for deterministic tie-breaking)."""
        return (
            self.kind, self.num_workers, self.num_microbatches,
            self.strategy, self.checkpoint_interval,
            self.parallel_recovery_degree,
            self.schedule,
            -1.0 if self.log_budget_gb is None else float(self.log_budget_gb),
        )

    def cost_key(self) -> tuple:
        """Analytic-cost identity: the budget does not change the
        cost-model pricing (group count affects storage, not timing), so
        budget variants share one objective evaluation."""
        return self.key()[:7]

    def label(self) -> str:
        """Compact human-readable name, e.g. ``dp4/replication/ckpt50``."""
        layout = f"{self.kind}{self.num_workers}"
        if self.kind == "pp":
            layout += f"xm{self.num_microbatches}"
            if self.schedule != "1f1b":
                layout += f"-{self.schedule}"
        parts = [layout, self.strategy, f"ckpt{self.checkpoint_interval}"]
        if self.strategy == "logging":
            parts.append(f"pr{self.parallel_recovery_degree}")
            if self.log_budget_gb is not None:
                parts.append(f"budget{self.log_budget_gb:g}G")
        return "/".join(parts)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "num_workers": self.num_workers,
            "num_microbatches": self.num_microbatches,
            "strategy": self.strategy,
            "checkpoint_interval": self.checkpoint_interval,
            "parallel_recovery_degree": self.parallel_recovery_degree,
            "log_budget_gb": self.log_budget_gb,
            "schedule": self.schedule,
        }

    def apply(self, base: "Experiment") -> "Experiment":
        """Lower this candidate onto ``base``'s model/data/cluster.

        Placement and partition sizes reset to their block-fill /
        balanced defaults (the search explores degrees, not custom
        placements), and ``checkpoint_after_recovery`` is forced on so
        multi-failure scenario runs never need a crashed machine's
        dropped log records.

        >>> from repro.api import Experiment, ModelSpec, ParallelismSpec
        >>> base = Experiment(model=ModelSpec(family="mlp", dim=4,
        ...                                   hidden_dim=8),
        ...                   parallelism=ParallelismSpec(kind="dp",
        ...                                               num_workers=2))
        >>> c = Candidate(kind="dp", num_workers=2, num_microbatches=1,
        ...               strategy="replication", checkpoint_interval=10)
        >>> c.apply(base).fault_tolerance.strategy
        'replication'
        """
        par = replace(
            base.parallelism,
            kind=self.kind,
            num_workers=self.num_workers,
            num_microbatches=max(1, self.num_microbatches),
            placement=None,
            partition_sizes=None,
            schedule=self.schedule if self.kind == "pp" else "1f1b",
            virtual_stages=0,  # resolve from the schedule's default
        )
        ft = replace(
            base.fault_tolerance,
            strategy=self.strategy,
            checkpoint_interval=self.checkpoint_interval,
            parallel_recovery_degree=self.parallel_recovery_degree,
            log_budget_bytes=(
                None if self.log_budget_gb is None
                else self.log_budget_gb * GB
            ),
            checkpoint_after_recovery=True,
        )
        return base.with_(parallelism=par, fault_tolerance=ft)


@dataclass
class PruneStats:
    """Where the grid collapsed: enumerated vs feasible vs pruned-by.

    >>> stats = PruneStats()
    >>> stats.record("placement")
    >>> stats.record(None)
    >>> (stats.enumerated, stats.feasible, stats.pruned)
    (2, 1, {'placement': 1})
    """

    enumerated: int = 0
    feasible: int = 0
    pruned: dict[str, int] = field(default_factory=dict)

    def record(self, reason: str | None) -> None:
        self.enumerated += 1
        if reason is None:
            self.feasible += 1
        else:
            self.pruned[reason] = self.pruned.get(reason, 0) + 1

    def as_dict(self) -> dict:
        return {
            "enumerated": self.enumerated,
            "feasible": self.feasible,
            "pruned": dict(sorted(self.pruned.items())),
        }


class SearchSpace:
    """Shared enumeration/mutation machinery of the concrete spaces.

    Subclasses provide the per-dimension grids (``kinds``,
    ``worker_counts``, ``microbatch_counts``, ``intervals``,
    ``recovery_degrees``, ``log_budgets_gb``, ``schedules``) plus
    ``_feasibility_reason``, ``default``, ``to_workload`` and
    ``describe``; everything else — candidate enumeration, prune
    accounting, seeded mutation — lives here.

    >>> from repro.api import (ClusterSpec, Experiment, ModelSpec,
    ...                        ParallelismSpec)
    >>> space = ExperimentSearchSpace(Experiment(
    ...     model=ModelSpec(family="mlp", dim=4, hidden_dim=8),
    ...     cluster=ClusterSpec(num_machines=2, devices_per_machine=1),
    ...     parallelism=ParallelismSpec(kind="dp", num_workers=2)))
    >>> space.feasible(space.default()) is None   # default always runs
    True
    >>> space.grid_size() > 0
    True
    """

    #: machines the scenario sampler should crash (set by subclasses)
    num_machines: int = 1

    def __init__(self) -> None:
        self.stats = PruneStats()

    # -- subclass interface ------------------------------------------------
    def _feasibility_reason(self, candidate: Candidate) -> str | None:
        raise NotImplementedError

    def default(self) -> Candidate:
        raise NotImplementedError

    def to_workload(self, candidate: Candidate) -> Workload:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def to_experiment(self, candidate: Candidate) -> "Experiment":
        raise PlanSearchError(
            f"{type(self).__name__} is analytic-only; engine validation "
            "needs an ExperimentSearchSpace"
        )

    def scenario_horizon(self, spec) -> float:
        """Hours of scenario the objective should sample."""
        return spec.horizon_hours

    def _strategies_for(self, kind: str) -> tuple[str, ...]:
        strategies = _KIND_STRATEGIES[kind]
        if self.strategies is not None:
            strategies = tuple(
                s for s in strategies if s in self.strategies
            )
        return strategies

    # -- enumeration -------------------------------------------------------
    def candidates(self):
        """Yield the raw grid (feasible and infeasible alike)."""
        for kind in self.kinds:
            micros = self.microbatch_counts if kind == "pp" else (1,)
            scheds = self.schedules if kind == "pp" else ("1f1b",)
            for workers in self.worker_counts:
                for m in micros:
                    for strategy in self._strategies_for(kind):
                        logging = strategy == "logging"
                        degrees = (
                            self.recovery_degrees if logging else (1,)
                        )
                        budgets = (
                            self.log_budgets_gb if logging else (None,)
                        )
                        for interval in self.intervals:
                            for degree in degrees:
                                for budget in budgets:
                                    for sched in scheds:
                                        yield Candidate(
                                            kind=kind,
                                            num_workers=workers,
                                            num_microbatches=m,
                                            strategy=strategy,
                                            checkpoint_interval=interval,
                                            parallel_recovery_degree=degree,
                                            log_budget_gb=budget,
                                            schedule=sched,
                                        )

    def feasible(self, candidate: Candidate) -> str | None:
        """``None`` if the candidate survives, else the prune reason
        (recorded in :attr:`stats`)."""
        reason = self._feasibility_reason(candidate)
        self.stats.record(reason)
        return reason

    def iter_feasible(self):
        for candidate in self.candidates():
            if self.feasible(candidate) is None:
                yield candidate

    def grid_size(self) -> int:
        """Raw grid cardinality (no feasibility checks, no stats)."""
        return sum(1 for _ in self.candidates())

    def reset_stats(self) -> None:
        self.stats = PruneStats()

    # -- mutation (seeded searchers) ---------------------------------------
    def _normalized(self, candidate: Candidate) -> Candidate:
        """Canonical form: recovery knobs only exist where they act."""
        if candidate.strategy != "logging":
            candidate = replace(
                candidate, parallel_recovery_degree=1, log_budget_gb=None
            )
        if candidate.kind != "pp":
            candidate = replace(
                candidate, num_microbatches=1, schedule="1f1b"
            )
        return candidate

    def _mutation_dims(self, candidate: Candidate) -> dict:
        dims = {
            "checkpoint_interval": self.intervals,
            "strategy": self._strategies_for(candidate.kind),
        }
        if len(self.worker_counts) > 1:
            dims["num_workers"] = self.worker_counts
        if candidate.kind == "pp":
            dims["num_microbatches"] = self.microbatch_counts
            if len(self.schedules) > 1:
                dims["schedule"] = self.schedules
        if candidate.strategy == "logging":
            dims["parallel_recovery_degree"] = self.recovery_degrees
            if len(self.log_budgets_gb) > 1:
                dims["log_budget_gb"] = self.log_budgets_gb
        return dims

    def mutate(self, candidate: Candidate, rng) -> Candidate:
        """Re-draw one dimension of ``candidate`` (deterministic given
        the caller's seeded ``rng``)."""
        dims = self._mutation_dims(candidate)
        names = sorted(dims)
        name = names[int(rng.integers(len(names)))]
        values = [
            v for v in dims[name] if v != getattr(candidate, name)
        ]
        if not values:
            return candidate
        value = values[int(rng.integers(len(values)))]
        return self._normalized(replace(candidate, **{name: value}))

    def random_candidate(self, rng) -> Candidate:
        """Uniform draw from the raw grid (anneal exploration)."""
        def pick(seq):
            return seq[int(rng.integers(len(seq)))]

        kind = pick(self.kinds)
        strategy = pick(self._strategies_for(kind))
        return self._normalized(Candidate(
            kind=kind,
            num_workers=pick(self.worker_counts),
            num_microbatches=(
                pick(self.microbatch_counts) if kind == "pp" else 1
            ),
            strategy=strategy,
            checkpoint_interval=pick(self.intervals),
            parallel_recovery_degree=(
                pick(self.recovery_degrees)
                if strategy == "logging" else 1
            ),
            log_budget_gb=(
                pick(self.log_budgets_gb)
                if strategy == "logging" else None
            ),
            schedule=pick(self.schedules) if kind == "pp" else "1f1b",
        ))


def _powers_of_two_upto(limit: int) -> tuple[int, ...]:
    counts = []
    w = 2
    while w < limit:
        counts.append(w)
        w *= 2
    counts.append(limit)
    return tuple(dict.fromkeys(c for c in counts if c >= 1))


class ExperimentSearchSpace(SearchSpace):
    """Search over re-plans of a live :class:`~repro.api.Experiment`.

    The base experiment pins model, data, and cluster; the space varies
    parallelism kind/degree, micro-batching, recovery strategy and
    degree, selective-logging budget, and checkpoint cadence.  Every
    surviving candidate lowers back into a real ``Experiment`` (memoized
    per candidate), so the final verdict can be engine-measured.

    >>> from repro.api import (ClusterSpec, Experiment, ModelSpec,
    ...                        ParallelismSpec)
    >>> space = ExperimentSearchSpace(Experiment(
    ...     model=ModelSpec(family="mlp", dim=4, hidden_dim=8),
    ...     cluster=ClusterSpec(num_machines=2, devices_per_machine=1),
    ...     parallelism=ParallelismSpec(kind="dp", num_workers=2)))
    >>> space.feasible(Candidate(kind="pp", num_workers=2,
    ...     num_microbatches=64, strategy="logging",
    ...     checkpoint_interval=10))          # batch 32 < 64 microbatches
    'microbatch'
    >>> space.stats.pruned["microbatch"]
    1
    """

    def __init__(
        self,
        base: "Experiment",
        *,
        kinds: tuple[str, ...] | None = None,
        worker_counts: tuple[int, ...] | None = None,
        microbatch_counts: tuple[int, ...] = (1, 2, 4, 8),
        intervals: tuple[int, ...] = (5, 10, 20, 50, 100),
        recovery_degrees: tuple[int, ...] = (1, 2, 4),
        log_budgets_gb: tuple[float | None, ...] = (None,),
        strategies: tuple[str, ...] | None = None,
        schedules: tuple[str, ...] = ("1f1b",),
    ) -> None:
        super().__init__()
        self.base = base
        cluster = base.cluster
        self.num_machines = cluster.num_machines
        self.kinds = tuple(kinds) if kinds else ("dp", "pp", "fsdp")
        if worker_counts is None:
            worker_counts = _powers_of_two_upto(cluster.num_slots)
        self.worker_counts = tuple(worker_counts)
        self.microbatch_counts = tuple(
            m for m in microbatch_counts if m <= base.data.batch_size
        ) or (1,)
        self.intervals = tuple(intervals)
        self.recovery_degrees = tuple(recovery_degrees)
        self.log_budgets_gb = tuple(log_budgets_gb)
        self.strategies = tuple(strategies) if strategies else None
        self.schedules = tuple(schedules)
        self._experiments: dict[Candidate, "Experiment"] = {}

    def _spanned_machines(self, num_workers: int) -> int:
        d = self.base.cluster.devices_per_machine
        return -(-num_workers // d)  # block-fill placement, ceil

    def _feasibility_reason(self, c: Candidate) -> str | None:
        base, cluster = self.base, self.base.cluster
        if c.checkpoint_interval < 1 or c.parallel_recovery_degree < 1:
            return "bounds"
        if c.kind not in _KIND_STRATEGIES:
            return "unknown_kind"
        if c.strategy not in _KIND_STRATEGIES[c.kind]:
            return "strategy_kind"
        if c.num_workers > cluster.num_slots:
            return "placement"
        spanned = self._spanned_machines(c.num_workers)
        if c.kind == "fsdp" and (c.num_workers < 2 or spanned < 2):
            return "fsdp_spread"
        if c.strategy == "replication":
            if spanned < 2:
                return "replica_coverage"
            if not optimizer_invertible(base.model.table1_optimizer):
                return "optimizer_not_invertible"
        if c.kind == "pp":
            try:
                v = default_virtual_stages(c.schedule)
            except ConfigurationError:
                return "unknown_schedule"
            if base.data.batch_size < c.num_microbatches:
                return "microbatch"
            if base.model.num_partitionable_layers() < c.num_workers * v:
                return "partition"
            if v > 1 and c.num_microbatches % c.num_workers != 0:
                return "schedule_shape"
            if c.strategy == "logging":
                if spanned < 2:
                    return "single_machine"
                if v > 1:
                    # logging replay needs contiguous stage spans;
                    # interleaving scatters each stage's chunks
                    return "logging_interleaved"
        # final authority: the full cross-field spec validators
        try:
            exp = self._experiment(c)
        except ConfigurationError:
            return "spec_invalid"
        # Section 5.4: never pay to cost logging that is not worth doing
        if c.strategy == "logging":
            feas = logging_worth_it(
                exp._predicted_log_bytes(),
                exp._iteration_time_estimate(),
                c.num_workers,
                c.num_microbatches,
                cluster.bandwidth_model().pcie,
                model_state_bytes=exp._model_state_bytes(),
            )
            if not feas.worth_it:
                return "not_worth_it"
        return None

    def _experiment(self, c: Candidate) -> "Experiment":
        exp = self._experiments.get(c)
        if exp is None:
            exp = c.apply(self.base)
            self._experiments[c] = exp
        return exp

    def to_experiment(self, c: Candidate) -> "Experiment":
        """The candidate lowered onto the base specs (validated)."""
        return self._experiment(c)

    def default(self) -> Candidate:
        """The naive plan: keep the base layout, checkpoint-only at the
        spec's cadence (replication for fsdp, which cannot run bare)."""
        par, ft = self.base.parallelism, self.base.fault_tolerance
        strategies = _KIND_STRATEGIES[par.kind]
        strategy = (
            "checkpoint_only" if "checkpoint_only" in strategies
            else strategies[0]
        )
        return Candidate(
            kind=par.kind,
            num_workers=par.num_workers,
            num_microbatches=(
                par.num_microbatches if par.kind == "pp" else 1
            ),
            strategy=strategy,
            checkpoint_interval=ft.checkpoint_interval,
            parallel_recovery_degree=1,
            schedule=par.schedule if par.kind == "pp" else "1f1b",
        )

    def to_workload(self, c: Candidate) -> Workload:
        """Bridge a candidate into a synthetic :class:`Workload` whose
        calibrated-cost-model view (state bytes, boundary bytes,
        iteration time) matches the experiment's float64 engines."""
        exp = self._experiment(c)
        model, data, cluster = exp.model, exp.data, exp.cluster
        if c.kind == "pp":
            iter_time = exp._iteration_time_estimate()
        else:
            from repro.api.experiment import (
                DEFAULT_BWD_TIME,
                DEFAULT_FWD_TIME,
            )

            iter_time = DEFAULT_FWD_TIME + DEFAULT_BWD_TIME
        state_mult = _state_multiplier(model.optimizer)
        return Workload(
            name=f"search:{c.label()}",
            dataset="synthetic",
            batch_size=data.batch_size,
            # float64 tensors expressed in the Workload's 4-byte units
            num_params=float(model.param_elements()) * 2.0,
            parallelism="PP" if c.kind == "pp" else "DP",
            num_machines=max(1, self._spanned_machines(c.num_workers)),
            gpus_per_machine=cluster.devices_per_machine,
            optimizer=model.optimizer,
            state_multiplier=state_mult,
            num_stages=c.num_workers if c.kind == "pp" else 1,
            num_microbatches=(
                c.num_microbatches if c.kind == "pp" else 1
            ),
            # boundary_bytes = micro * seq_len * hidden * 4; encode the
            # per-element float64 width as seq_len=2 so it matches
            # boundary_elements(micro) * 8 exactly
            seq_len=2,
            hidden_size=(
                model.boundary_elements(1) if c.kind == "pp" else 0
            ),
            experiment_iteration_time=iter_time,
            total_iterations=0,  # the objective maps the horizon on
            checkpoint_interval_iters=c.checkpoint_interval,
            end_to_end_hours=0.0,
        )

    def winning_plan(self, report) -> "ExecutionPlan":
        """The winner's :class:`~repro.api.ExecutionPlan`, stamped with
        search provenance instead of ``"user"``."""
        exp = self.to_experiment(report.winner)
        return replace(
            exp.plan(),
            provenance=f"autoplan:{report.searcher}:{report.scenario}",
        )

    def describe(self) -> str:
        return (
            f"ExperimentSearchSpace(base={self.base.name!r}, "
            f"kinds={self.kinds}, workers={self.worker_counts}, "
            f"microbatches={self.microbatch_counts}, "
            f"intervals={self.intervals}, "
            f"degrees={self.recovery_degrees}, "
            f"budgets_gb={self.log_budgets_gb}, "
            f"schedules={self.schedules})"
        )


def _state_multiplier(optimizer: str) -> int:
    from repro.api.experiment import _STATE_MULTIPLIER

    return _STATE_MULTIPLIER[optimizer]


class WorkloadSearchSpace(SearchSpace):
    """Search over a published Table-2 workload's recovery configuration.

    The layout is pinned by the published row (stage count, machines);
    the space varies micro-batch count (re-timing the pipeline span
    ``m + p - 1`` accordingly), strategy, parallel-recovery degree, and
    checkpoint cadence around the Table-4 setting.  Analytic-only:
    :meth:`to_experiment` raises, engine validation needs an
    :class:`ExperimentSearchSpace`.

    >>> from repro.sim import BERT_128
    >>> space = WorkloadSearchSpace(BERT_128)
    >>> space.default().label()
    'pp128xm4/checkpoint_only/ckpt5000'
    >>> space.feasible(space.default()) is None
    True
    """

    def __init__(
        self,
        workload: Workload,
        *,
        intervals: tuple[int, ...] | None = None,
        microbatch_counts: tuple[int, ...] | None = None,
        recovery_degrees: tuple[int, ...] = (1, 4, 16),
        log_budgets_gb: tuple[float | None, ...] = (None,),
        strategies: tuple[str, ...] | None = None,
    ) -> None:
        super().__init__()
        self.workload = workload
        self.kind = "pp" if workload.parallelism == "PP" else "dp"
        self.kinds = (self.kind,)
        self.num_machines = workload.num_machines
        fixed_workers = (
            workload.num_stages if self.kind == "pp"
            else workload.num_workers
        )
        self.worker_counts = (fixed_workers,)
        base_interval = workload.checkpoint_interval_iters or 100
        if intervals is None:
            intervals = tuple(sorted({
                max(1, int(base_interval * f))
                for f in (0.25, 0.5, 1.0, 2.0, 4.0)
            }))
        self.intervals = tuple(intervals)
        if microbatch_counts is None:
            if self.kind == "pp":
                m = workload.num_microbatches
                microbatch_counts = tuple(sorted({
                    x for x in (m // 2, m, 2 * m)
                    if 1 <= x <= workload.batch_size
                }))
            else:
                microbatch_counts = (1,)
        self.microbatch_counts = tuple(microbatch_counts)
        self.recovery_degrees = tuple(recovery_degrees)
        self.log_budgets_gb = tuple(log_budgets_gb)
        self.strategies = tuple(strategies) if strategies else None
        #: analytic timing is pinned to the published flat-1F1B rows
        self.schedules = ("1f1b",)

    def _feasibility_reason(self, c: Candidate) -> str | None:
        w = self.workload
        if c.checkpoint_interval < 1 or c.parallel_recovery_degree < 1:
            return "bounds"
        if c.strategy not in _KIND_STRATEGIES[c.kind]:
            return "strategy_kind"
        if c.strategy == "replication":
            if w.num_machines < 2:
                return "replica_coverage"
            from repro.api.workloads import _TABLE1_NAMES

            table1 = _TABLE1_NAMES.get(w.optimizer)
            if table1 is None or not optimizer_invertible(table1):
                return "optimizer_not_invertible"
        if c.kind == "pp":
            if w.batch_size < c.num_microbatches:
                return "microbatch"
            if c.strategy == "logging":
                if w.num_machines < 2:
                    return "single_machine"
                cw = self.to_workload(c)
                feas = logging_worth_it(
                    2.0 * cw.num_microbatches * cw.boundary_bytes,
                    cw.iteration_time or cw.experiment_iteration_time,
                    cw.num_stages,
                    cw.num_microbatches,
                    HardwareConfig().pcie_bw,
                    model_state_bytes=cw.state_bytes,
                )
                if not feas.worth_it:
                    return "not_worth_it"
        return None

    def default(self) -> Candidate:
        """The published Table-4 configuration under checkpoint-only."""
        w = self.workload
        return Candidate(
            kind=self.kind,
            num_workers=self.worker_counts[0],
            num_microbatches=(
                w.num_microbatches if self.kind == "pp" else 1
            ),
            strategy="checkpoint_only",
            checkpoint_interval=w.checkpoint_interval_iters or 100,
            parallel_recovery_degree=1,
        )

    def to_workload(self, c: Candidate) -> Workload:
        """The published row re-timed for the candidate's micro-batch
        count and cadence.  A fixed batch split into ``m`` micro-batches
        makes one iteration span ``(m + p - 1)`` micro-batch slots of
        ``1/m`` the work each, so time scales with ``(m + p - 1) / m``
        relative to the published setting."""
        w = self.workload
        if self.kind == "pp" and c.num_microbatches != w.num_microbatches:
            p = w.num_stages
            scale = (
                w.num_microbatches * (c.num_microbatches + p - 1)
            ) / (
                c.num_microbatches * (w.num_microbatches + p - 1)
            )
            return replace(
                w,
                num_microbatches=c.num_microbatches,
                checkpoint_interval_iters=c.checkpoint_interval,
                experiment_iteration_time=(
                    w.experiment_iteration_time * scale
                ),
                end_to_end_hours=w.end_to_end_hours * scale,
            )
        return replace(w, checkpoint_interval_iters=c.checkpoint_interval)

    def scenario_horizon(self, spec) -> float:
        """1.5x the published end-to-end hours, as
        :func:`repro.chaos.evaluate_scenario` does, so events keep
        arriving for the slower candidates too."""
        return max(
            spec.horizon_hours,
            1.5 * (self.workload.end_to_end_hours or 100.0),
        )

    def describe(self) -> str:
        return (
            f"WorkloadSearchSpace(workload={self.workload.name!r}, "
            f"kind={self.kind!r}, microbatches={self.microbatch_counts}, "
            f"intervals={self.intervals}, "
            f"degrees={self.recovery_degrees}, "
            f"budgets_gb={self.log_budgets_gb})"
        )
