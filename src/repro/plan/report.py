"""The ranked, explained, deterministic output of a plan search.

:class:`PlanSearchReport` is pure data: candidates, scores, pruning
statistics, memo hit rate, the why-the-winner-won narrative, and any
engine-measured :class:`ValidationRow` results.  ``to_json()`` is
byte-stable (:func:`repro.utils.jsonl.canonical_json`, no wall-clock
fields), which is what makes ``autoplan()`` bitwise-reproducible for a
fixed seed — the property tests diff the JSON directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.plan.objective import CandidateScore
from repro.plan.space import Candidate
from repro.utils.jsonl import canonical_json

__all__ = ["PlanSearchReport", "ValidationRow"]

#: bump when the report JSON schema changes shape
REPORT_VERSION = 1


@dataclass(frozen=True)
class ValidationRow:
    """One engine-measured paired run confirming (or refuting) a score.

    ``measured_goodput`` comes from real engines replaying the same
    sampled traces for every row (paired comparison), recorded through
    :class:`repro.obs.TraceRecorder` — ``telemetry_events`` counts what
    the recorder captured.

    >>> row = ValidationRow(label="dp2/replication/ckpt10", role="winner",
    ...     strategy="replication", predicted_goodput=120.0,
    ...     measured_goodput=118.5, measured_by_seed=(118.5,),
    ...     recoveries=2, lost_iterations=0, telemetry_events=64)
    >>> row.to_dict()["role"]
    'winner'
    """

    label: str
    role: str  # "winner" | "baseline" | "candidate"
    strategy: str
    #: analytic samples/s the objective predicted
    predicted_goodput: float
    #: engine-measured samples/s, averaged over the validation seeds
    measured_goodput: float
    measured_by_seed: tuple[float, ...]
    recoveries: int
    lost_iterations: int
    telemetry_events: int

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "role": self.role,
            "strategy": self.strategy,
            "predicted_goodput": self.predicted_goodput,
            "measured_goodput": self.measured_goodput,
            "measured_by_seed": list(self.measured_by_seed),
            "recoveries": self.recoveries,
            "lost_iterations": self.lost_iterations,
            "telemetry_events": self.telemetry_events,
        }


@dataclass(frozen=True)
class PlanSearchReport:
    """Everything a plan search decided, and why.

    >>> c = Candidate(kind="dp", num_workers=2, num_microbatches=1,
    ...               strategy="replication", checkpoint_interval=10)
    >>> s = CandidateScore(candidate=c, method="swift_replication",
    ...     goodput_samples_per_sec=100.0, goodput_fraction=0.99,
    ...     mean_hours=1.0, failure_free_hours=0.99, mean_crashes=1.0,
    ...     goodput_by_seed=(0.99,))
    >>> report = PlanSearchReport(scenario="steady_mtbf",
    ...     searcher="exhaustive", seed=0, space="doc", num_machines=2,
    ...     horizon_hours=100.0, eval_seeds=1, enumerated=4, feasible=2,
    ...     pruned=(("placement", 2),), cache_hits=1, cache_misses=2,
    ...     baseline=s, ranked=(s,), why="doc")
    >>> report.winner.strategy
    'replication'
    >>> round(report.cache_hit_rate, 3)
    0.333
    >>> report.to_json() == report.to_json()   # byte-stable
    True
    >>> "winner" in report.describe()
    True
    """

    scenario: str
    searcher: str
    seed: int
    #: the space's ``describe()`` string (grids searched)
    space: str
    num_machines: int
    horizon_hours: float
    eval_seeds: int
    #: feasibility checks run / survivors / per-reason prune counts
    enumerated: int
    feasible: int
    pruned: tuple[tuple[str, int], ...]
    #: objective memoization counters (satellite: hit rate is reported)
    cache_hits: int
    cache_misses: int
    #: the naive default plan's score (what the winner must beat)
    baseline: CandidateScore
    #: top-K scored candidates, best first
    ranked: tuple[CandidateScore, ...]
    why: str
    validation: tuple[ValidationRow, ...] = ()

    @property
    def winner(self) -> Candidate:
        return self.ranked[0].candidate

    @property
    def winner_score(self) -> CandidateScore:
        return self.ranked[0]

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def to_dict(self) -> dict:
        return {
            "version": REPORT_VERSION,
            "scenario": self.scenario,
            "searcher": self.searcher,
            "seed": self.seed,
            "space": self.space,
            "num_machines": self.num_machines,
            "horizon_hours": self.horizon_hours,
            "eval_seeds": self.eval_seeds,
            "pruning": {
                "enumerated": self.enumerated,
                "feasible": self.feasible,
                "pruned": {reason: n for reason, n in self.pruned},
            },
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "hit_rate": self.cache_hit_rate,
            },
            "baseline": self.baseline.to_dict(),
            "ranked": [s.to_dict() for s in self.ranked],
            "why": self.why,
            "validation": [row.to_dict() for row in self.validation],
        }

    def to_json(self) -> str:
        """Canonical (sorted-key, whitespace-free) JSON; byte-stable."""
        return canonical_json(self.to_dict())

    def describe(self) -> str:
        """Human-readable report (the ``repro plan --optimize`` output)."""
        pruned = ", ".join(
            f"{reason} {n}" for reason, n in self.pruned
        ) or "none"
        lines = [
            f"plan search: scenario {self.scenario!r}, "
            f"searcher {self.searcher!r}, seed {self.seed}",
            f"  space:     {self.space}",
            f"  horizon:   {self.horizon_hours:g} h on "
            f"{self.num_machines} machines, {self.eval_seeds} paired "
            "trace(s)",
            f"  pruning:   {self.enumerated} checked -> "
            f"{self.feasible} feasible ({pruned})",
            f"  objective: {self.cache_misses} evaluations, "
            f"{self.cache_hits} memo hits "
            f"({self.cache_hit_rate * 100.0:.1f}%)",
            f"  baseline:  {self.baseline.candidate.label()}  "
            f"{self.baseline.goodput_samples_per_sec:.4g} samples/s "
            f"({self.baseline.goodput_fraction * 100.0:.1f}% of "
            "failure-free)",
            f"  winner:    {self.winner.label()}",
            f"  why:       {self.why}",
            "",
            f"  {'#':>2} {'candidate':<40} {'samples/s':>12} "
            f"{'goodput':>8} {'E[crash]':>8}",
        ]
        for i, s in enumerate(self.ranked):
            lines.append(
                f"  {i + 1:>2} {s.candidate.label():<40} "
                f"{s.goodput_samples_per_sec:>12.4g} "
                f"{s.goodput_fraction * 100.0:>7.1f}% "
                f"{s.mean_crashes:>8.1f}"
            )
        if self.validation:
            lines.append("")
            lines.append(
                f"  engine validation ({len(self.validation)} paired "
                "run sets):"
            )
            lines.append(
                f"  {'role':<9} {'candidate':<40} {'predicted':>10} "
                f"{'measured':>10} {'recov':>5} {'lost':>5}"
            )
            for row in self.validation:
                lines.append(
                    f"  {row.role:<9} {row.label:<40} "
                    f"{row.predicted_goodput:>10.4g} "
                    f"{row.measured_goodput:>10.4g} "
                    f"{row.recoveries:>5} {row.lost_iterations:>5}"
                )
        return "\n".join(lines)
