"""Analytic expected-goodput objective with memoized evaluations.

Scoring a candidate means pricing its recovery configuration under the
*same* pre-sampled failure traces every other candidate sees (the
comparison is paired: the trace carries all the randomness), via
:func:`repro.chaos.evaluate_traces` over the calibrated
:class:`~repro.sim.CostModel`.  Seconds per thousand candidates, so a
full grid is searchable interactively.

Candidates that differ only in selective-logging budget share one
evaluation (:meth:`Candidate.cost_key`): the budget shapes storage
grouping, not the analytic timing.  The memo hit rate is surfaced in
:class:`~repro.plan.PlanSearchReport`.

The ranking metric is **goodput in samples per second** —
``batch_size * total_iterations / wall_clock`` — not the availability
fraction alone: a layout that computes faster *and* recovers worse must
be able to beat a slow-but-safe one, and samples/s prices both sides.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.chaos.evaluate import evaluate_traces, method_for_strategy
from repro.chaos.scenarios import get_scenario
from repro.errors import ConfigurationError
from repro.plan.space import Candidate, SearchSpace
from repro.sim.costmodel import CostModel

__all__ = ["CandidateScore", "GoodputObjective"]

#: floor iteration time when a bridge workload reports none; keeps the
#: horizon -> iteration mapping finite for degenerate inputs
_MIN_ITER_TIME = 1e-6


@dataclass(frozen=True)
class CandidateScore:
    """One candidate's predicted outcome under the scenario.

    >>> c = Candidate(kind="dp", num_workers=2, num_microbatches=1,
    ...               strategy="replication", checkpoint_interval=10)
    >>> s = CandidateScore(candidate=c, method="swift_replication",
    ...     goodput_samples_per_sec=100.0, goodput_fraction=0.99,
    ...     mean_hours=1.0, failure_free_hours=0.99, mean_crashes=2.0,
    ...     goodput_by_seed=(0.99,))
    >>> s.to_dict()["method"]
    'swift_replication'
    """

    candidate: Candidate
    #: analytic cost-model method (``swift_replication``, ...)
    method: str
    #: the ranking metric: useful samples per wall-clock second
    goodput_samples_per_sec: float
    #: failure-free time / actual time, averaged over seeds
    goodput_fraction: float
    mean_hours: float
    failure_free_hours: float
    mean_crashes: float
    goodput_by_seed: tuple[float, ...]

    def to_dict(self) -> dict:
        return {
            "candidate": self.candidate.to_dict(),
            "label": self.candidate.label(),
            "method": self.method,
            "goodput_samples_per_sec": self.goodput_samples_per_sec,
            "goodput_fraction": self.goodput_fraction,
            "mean_hours": self.mean_hours,
            "failure_free_hours": self.failure_free_hours,
            "mean_crashes": self.mean_crashes,
            "goodput_by_seed": list(self.goodput_by_seed),
        }


class GoodputObjective:
    """Paired analytic scoring of candidates under one chaos scenario.

    Traces are sampled once at construction (one per ``eval_seeds``
    seed, over the space's scenario horizon) and shared by every
    :meth:`score` call, so two candidates always face identical failure
    timelines.

    >>> from repro.api import (ClusterSpec, Experiment, ModelSpec,
    ...                        ParallelismSpec)
    >>> from repro.plan.space import ExperimentSearchSpace
    >>> space = ExperimentSearchSpace(Experiment(
    ...     model=ModelSpec(family="mlp", dim=4, hidden_dim=8),
    ...     cluster=ClusterSpec(num_machines=2, devices_per_machine=1),
    ...     parallelism=ParallelismSpec(kind="dp", num_workers=2)))
    >>> objective = GoodputObjective(space, "steady_mtbf", eval_seeds=1)
    >>> score = objective.score(space.default())
    >>> 0.0 < score.goodput_fraction <= 1.0
    True
    >>> _ = objective.score(space.default())   # memoized second hit
    >>> (objective.hits, objective.misses)
    (1, 1)
    """

    def __init__(
        self,
        space: SearchSpace,
        scenario,
        eval_seeds: int = 3,
        horizon_hours: float | None = None,
    ) -> None:
        if eval_seeds < 1:
            raise ConfigurationError(
                f"eval_seeds must be >= 1, got {eval_seeds}"
            )
        self.space = space
        self.spec = get_scenario(scenario)
        self.scenario = self.spec.name
        self.eval_seeds = eval_seeds
        self.horizon_hours = (
            horizon_hours if horizon_hours is not None
            else space.scenario_horizon(self.spec)
        )
        self.traces = tuple(
            self.spec.sample(
                seed, space.num_machines, horizon_hours=self.horizon_hours
            )
            for seed in range(eval_seeds)
        )
        # bridge workloads carry no published iteration budget: map the
        # scenario horizon onto iterations of the *default* candidate so
        # every candidate races the same total work
        ref = space.to_workload(space.default())
        self._total_override = None
        if not ref.total_iterations:
            it = max(ref.iteration_time or ref.experiment_iteration_time,
                     _MIN_ITER_TIME)
            self._total_override = max(
                1, int(self.horizon_hours * 3600.0 / it)
            )
        self.hits = 0
        self.misses = 0
        self._cache: dict[tuple, CandidateScore] = {}

    def candidate_workload(self, candidate: Candidate):
        """The candidate's workload with the shared iteration budget."""
        w = self.space.to_workload(candidate)
        if self._total_override is not None:
            it = max(w.experiment_iteration_time, _MIN_ITER_TIME)
            w = replace(
                w,
                total_iterations=self._total_override,
                end_to_end_hours=self._total_override * it / 3600.0,
            )
        return w

    def score(self, candidate: Candidate) -> CandidateScore:
        """Predicted goodput of ``candidate`` (memoized on cost_key)."""
        key = candidate.cost_key()
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            return replace(cached, candidate=candidate)
        self.misses += 1
        w = self.candidate_workload(candidate)
        method = method_for_strategy(candidate.strategy)
        cost = CostModel(w, use_experiment_time=False)
        results = evaluate_traces(
            self.traces, w, method,
            interval=candidate.checkpoint_interval,
            cost=cost,
            parallel_degree=candidate.parallel_recovery_degree,
        )
        mean_hours = sum(r.hours for r in results) / len(results)
        fractions = tuple(r.goodput_fraction for r in results)
        samples_per_sec = (
            w.batch_size * w.total_iterations / (mean_hours * 3600.0)
            if mean_hours > 0 else 0.0
        )
        score = CandidateScore(
            candidate=candidate,
            method=method,
            goodput_samples_per_sec=samples_per_sec,
            goodput_fraction=sum(fractions) / len(fractions),
            mean_hours=mean_hours,
            failure_free_hours=results[0].failure_free_hours,
            mean_crashes=(
                sum(r.num_crashes for r in results) / len(results)
            ),
            goodput_by_seed=fractions,
        )
        self._cache[key] = score
        return score

    @property
    def evaluations(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.evaluations if self.evaluations else 0.0
