"""Goodput-driven auto-planning over the joint configuration space.

The paper frames fault-tolerance strategy choice as a quantitative
decision (Section 3 decision chain, Section 5.4 calculus, Section 7.3
cost model); :mod:`repro.plan` closes the loop and makes it an
*optimization*: search the joint (parallelism x recovery x
checkpoint-cadence) space for the configuration with the best expected
goodput under a named :mod:`repro.chaos` failure scenario.

Layering:

* :class:`SearchSpace` / :class:`Candidate` enumerate and mutate
  configurations; infeasible points are pruned eagerly by the Section
  5.4 calculus and the spec validators before any costing
  (:class:`PruneStats` records why);
* :class:`Searcher` is the pluggable exploration protocol —
  :class:`ExhaustiveSearcher` and the seeded :class:`AnnealSearcher`
  ship built-in, :func:`register_searcher` adds more;
* :class:`GoodputObjective` scores candidates analytically over paired
  scenario traces (memoized; thousands of candidates per second);
* :func:`autoplan` drives the whole thing and returns a deterministic
  :class:`PlanSearchReport`; experiment-backed spaces can additionally
  engine-validate the top-K with bitwise-reproducible paired runs.

Entry points: :meth:`repro.api.Experiment.autoplan`, the
``repro plan --optimize`` CLI, or :func:`autoplan_workload` for the
published Table-2 rows.
"""

from repro.plan.autoplan import autoplan, autoplan_workload
from repro.plan.objective import CandidateScore, GoodputObjective
from repro.plan.report import PlanSearchReport, ValidationRow
from repro.plan.search import (
    AnnealSearcher,
    ExhaustiveSearcher,
    Searcher,
    get_searcher,
    register_searcher,
    searcher_names,
)
from repro.plan.space import (
    Candidate,
    ExperimentSearchSpace,
    PlanSearchError,
    PruneStats,
    SearchSpace,
    WorkloadSearchSpace,
)

__all__ = [
    "Candidate",
    "PruneStats",
    "SearchSpace",
    "ExperimentSearchSpace",
    "WorkloadSearchSpace",
    "PlanSearchError",
    "CandidateScore",
    "GoodputObjective",
    "Searcher",
    "ExhaustiveSearcher",
    "AnnealSearcher",
    "register_searcher",
    "get_searcher",
    "searcher_names",
    "PlanSearchReport",
    "ValidationRow",
    "autoplan",
    "autoplan_workload",
]
