"""The autoplan driver: search, rank, explain, engine-validate.

:func:`autoplan` wires the pieces together: a :class:`SearchSpace`
enumerates and prunes, a registered :class:`~repro.plan.Searcher`
explores, the :class:`~repro.plan.GoodputObjective` scores analytically
(memoized, paired traces), and — for experiment-backed spaces — the
top-K candidates are *validated* with engine-measured paired runs whose
telemetry is captured via :mod:`repro.obs`.  The result is a
deterministic :class:`~repro.plan.PlanSearchReport`.
"""

from __future__ import annotations

from repro.chaos.scenarios import get_scenario
from repro.errors import ConfigurationError
from repro.obs import TraceRecorder
from repro.plan.objective import CandidateScore, GoodputObjective
from repro.plan.report import PlanSearchReport, ValidationRow
from repro.plan.search import get_searcher, ranked_scores
from repro.plan.space import (
    PlanSearchError,
    SearchSpace,
    WorkloadSearchSpace,
)
from repro.sim.workloads import Workload

__all__ = ["autoplan", "autoplan_workload"]

#: grids at most this large get the exhaustive searcher under "auto"
AUTO_EXHAUSTIVE_LIMIT = 4096


def autoplan(
    space: SearchSpace,
    scenario,
    *,
    searcher: str = "auto",
    seed: int = 0,
    eval_seeds: int = 3,
    top_k: int = 5,
    validate_top_k: int = 0,
    validate_seeds: int = 2,
    validate_iterations: int = 60,
) -> PlanSearchReport:
    """Search ``space`` for the best expected goodput under ``scenario``.

    Deterministic for fixed arguments: the same seed yields the same
    winner and byte-identical ``report.to_json()``.  ``searcher="auto"``
    picks exhaustive for grids up to ``AUTO_EXHAUSTIVE_LIMIT`` points
    and the seeded anneal beyond.  ``validate_top_k > 0`` re-runs the
    winner(s) and the naive baseline on real engines over paired traces
    (experiment-backed spaces only).

    Raises :class:`~repro.plan.PlanSearchError` when nothing in the
    space survives pruning.

    >>> from repro.api import (ClusterSpec, Experiment, ModelSpec,
    ...                        ParallelismSpec)
    >>> from repro.plan.space import ExperimentSearchSpace
    >>> space = ExperimentSearchSpace(Experiment(
    ...     model=ModelSpec(family="mlp", dim=4, hidden_dim=8),
    ...     cluster=ClusterSpec(num_machines=2, devices_per_machine=1),
    ...     parallelism=ParallelismSpec(kind="dp", num_workers=2)),
    ...     intervals=(10, 50))
    >>> report = autoplan(space, "steady_mtbf", eval_seeds=1, top_k=3)
    >>> report.searcher
    'exhaustive'
    >>> (report.winner_score.goodput_samples_per_sec
    ...  >= report.baseline.goodput_samples_per_sec)
    True
    >>> report.feasible > 0 and report.enumerated >= report.feasible
    True
    """
    spec = get_scenario(scenario)
    name = searcher
    if name == "auto":
        name = (
            "exhaustive" if space.grid_size() <= AUTO_EXHAUSTIVE_LIMIT
            else "anneal"
        )
    engine = get_searcher(name)
    space.reset_stats()
    objective = GoodputObjective(space, spec, eval_seeds=eval_seeds)
    baseline = objective.score(space.default())
    ranked = engine.search(space, objective, seed=seed)
    if not ranked:
        raise PlanSearchError(
            f"no feasible candidate in {space.describe()} under "
            f"scenario {spec.name!r}"
        )
    # the naive default is always a contender, even when its cadence is
    # outside the searched grid: autoplan never recommends a regression
    if baseline.candidate.key() not in {
        s.candidate.key() for s in ranked
    }:
        ranked = ranked_scores([*ranked, baseline])
    top = tuple(ranked[: max(1, top_k)])
    validation: tuple[ValidationRow, ...] = ()
    if validate_top_k > 0:
        validation = _engine_validate(
            space, list(top[:validate_top_k]), baseline, spec,
            validate_seeds, validate_iterations,
        )
    stats = space.stats
    return PlanSearchReport(
        scenario=spec.name,
        searcher=engine.name,
        seed=seed,
        space=space.describe(),
        num_machines=space.num_machines,
        horizon_hours=objective.horizon_hours,
        eval_seeds=eval_seeds,
        enumerated=stats.enumerated,
        feasible=stats.feasible,
        pruned=tuple(sorted(stats.pruned.items())),
        cache_hits=objective.hits,
        cache_misses=objective.misses,
        baseline=baseline,
        ranked=top,
        why=_why(top[0], baseline),
        validation=validation,
    )


def autoplan_workload(
    workload: Workload,
    scenario="steady_mtbf",
    *,
    searcher: str = "auto",
    seed: int = 0,
    eval_seeds: int = 3,
    top_k: int = 5,
    validate_top_k: int = 0,
    validate_seeds: int = 2,
    validate_iterations: int = 60,
    **space_options,
) -> PlanSearchReport:
    """Analytic plan search over a published Table-2 workload.

    >>> from repro.sim import BERT_128
    >>> report = autoplan_workload(BERT_128, "steady_mtbf",
    ...                            eval_seeds=1, top_k=3)
    >>> report.winner.strategy in ("logging", "checkpoint_only")
    True
    >>> (report.winner_score.goodput_samples_per_sec
    ...  >= report.baseline.goodput_samples_per_sec)
    True
    """
    space = WorkloadSearchSpace(workload, **space_options)
    return autoplan(
        space, scenario, searcher=searcher, seed=seed,
        eval_seeds=eval_seeds, top_k=top_k,
        validate_top_k=validate_top_k, validate_seeds=validate_seeds,
        validate_iterations=validate_iterations,
    )


def _why(winner: CandidateScore, baseline: CandidateScore) -> str:
    """One-paragraph arithmetic narrative of why the winner won."""
    w, b = winner, baseline
    if w.candidate.key() == b.candidate.key():
        return (
            f"the naive default {b.candidate.label()} is already "
            "optimal over this space and scenario"
        )
    gain = (
        (w.goodput_samples_per_sec / b.goodput_samples_per_sec - 1.0)
        * 100.0
        if b.goodput_samples_per_sec > 0 else float("inf")
    )
    return (
        f"{w.candidate.label()} predicts "
        f"{w.goodput_samples_per_sec:.4g} samples/s "
        f"({w.goodput_fraction * 100.0:.1f}% of failure-free), "
        f"{gain:+.1f}% over the naive default "
        f"{b.candidate.label()} "
        f"({b.goodput_fraction * 100.0:.1f}%): "
        f"~{_per_crash(w):.3g} s of overhead per crash vs "
        f"~{_per_crash(b):.3g} s, with {w.mean_crashes:.1f} crash(es) "
        "expected over the horizon"
    )


def _per_crash(score: CandidateScore) -> float:
    overhead = (score.mean_hours - score.failure_free_hours) * 3600.0
    return overhead / score.mean_crashes if score.mean_crashes else 0.0


def _engine_validate(
    space: SearchSpace,
    scores: list[CandidateScore],
    baseline: CandidateScore,
    spec,
    seeds: int,
    iterations: int,
) -> tuple[ValidationRow, ...]:
    """Bitwise-reproducible paired engine runs for baseline + top-K.

    Every row replays the *same* sampled traces (the comparison is
    paired), records telemetry through a :class:`TraceRecorder`, and
    reports the engine's goodput next to the analytic prediction.
    """
    if seeds < 1:
        raise ConfigurationError(
            f"validate_seeds must be >= 1, got {seeds}"
        )
    if iterations < 1:
        raise ConfigurationError(
            f"validate_iterations must be >= 1, got {iterations}"
        )
    targets: list[tuple[str, CandidateScore]] = [("baseline", baseline)]
    seen = {baseline.candidate.key()}
    for i, score in enumerate(scores):
        key = score.candidate.key()
        if key in seen:
            continue
        seen.add(key)
        targets.append(("winner" if i == 0 else "candidate", score))
    traces = [
        spec.sample(seed, space.num_machines, horizon_iters=iterations)
        for seed in range(seeds)
    ]
    rows = []
    for role, score in targets:
        exp = space.to_experiment(score.candidate)
        per_seed: list[float] = []
        recoveries = lost = events = 0
        for trace in traces:
            schedule = trace.to_schedule()
            recorder = TraceRecorder()
            session = exp.build()
            run = session.run(
                iterations,
                failures=schedule,
                max_recoveries=len(schedule) + 16,
                recorder=recorder,
            )
            per_seed.append(run.goodput(exp.data.batch_size))
            recoveries += len(run.recoveries)
            lost += sum(r.lost_iterations for r in run.recoveries)
            events += len(session.telemetry.events)
        rows.append(ValidationRow(
            label=score.candidate.label(),
            role=role,
            strategy=score.candidate.strategy,
            predicted_goodput=score.goodput_samples_per_sec,
            measured_goodput=sum(per_seed) / len(per_seed),
            measured_by_seed=tuple(per_seed),
            recoveries=recoveries,
            lost_iterations=lost,
            telemetry_events=events,
        ))
    return tuple(rows)
