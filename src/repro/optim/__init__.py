"""Optimizers with invertible updates (update-undo, paper Section 4).

Every optimizer implements ``step`` / ``step_param`` and — where Table 1
permits — ``undo`` / ``undo_param`` that exactly inverts the latest update
using the cached gradient.
"""

from repro.optim.adam import Adam, AdamW
from repro.optim.amsgrad import AMSGrad
from repro.optim.base import Optimizer
from repro.optim.factory import (
    OPTIMIZER_FAMILIES,
    OPTIMIZER_TABLE1_NAMES,
    make_optimizer,
)
from repro.optim.lamb import LAMB
from repro.optim.ops import (
    OPERATORS,
    OPTIMIZER_OPERATORS,
    OperatorInfo,
    optimizer_invertible,
    table1_rows,
)
from repro.optim.schedulers import (
    ConstantLR,
    CosineLR,
    LRScheduler,
    StepDecayLR,
    WarmupLR,
)
from repro.optim.sgd import SGD, SGDMomentum

__all__ = [
    "Optimizer",
    "SGD",
    "SGDMomentum",
    "Adam",
    "AdamW",
    "LAMB",
    "AMSGrad",
    "LRScheduler",
    "ConstantLR",
    "StepDecayLR",
    "CosineLR",
    "WarmupLR",
    "OperatorInfo",
    "OPERATORS",
    "OPTIMIZER_OPERATORS",
    "OPTIMIZER_FAMILIES",
    "OPTIMIZER_TABLE1_NAMES",
    "make_optimizer",
    "optimizer_invertible",
    "table1_rows",
]
