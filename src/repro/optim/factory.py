"""Optimizer construction by family name.

The declarative experiment surface (:mod:`repro.api`) and the fleet job
specs (:mod:`repro.jobs`) both name optimizers with strings; this module
is the single mapping from those names to classes, plus the bridge to the
Table-1 operator universe that decides update-undo invertibility (and
therefore strategy selection, paper Sections 3 and 4).
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.optim.adam import Adam, AdamW
from repro.optim.amsgrad import AMSGrad
from repro.optim.base import Optimizer
from repro.optim.lamb import LAMB
from repro.optim.sgd import SGD, SGDMomentum

__all__ = [
    "OPTIMIZER_FAMILIES",
    "OPTIMIZER_TABLE1_NAMES",
    "make_optimizer",
]

#: family name -> optimizer class
OPTIMIZER_FAMILIES: dict[str, type[Optimizer]] = {
    "sgd": SGD,
    "sgd_momentum": SGDMomentum,
    "adam": Adam,
    "adamw": AdamW,
    "lamb": LAMB,
    "amsgrad": AMSGrad,
}

#: family name -> Table 1 operator-universe row (both SGD variants use
#: the same ew_add/scalar_mul operator set)
OPTIMIZER_TABLE1_NAMES: dict[str, str] = {
    "sgd": "SGD",
    "sgd_momentum": "SGD",
    "adam": "Adam",
    "adamw": "AdamW",
    "lamb": "LAMB",
    "amsgrad": "AMSGrad",
}


def make_optimizer(
    family: str,
    params,
    lr: float | None = None,
    momentum: float = 0.9,
) -> Optimizer:
    """Build an optimizer by family name.

    ``params`` is whatever the optimizer class accepts (a module or a
    named-parameter iterable).  ``lr=None`` keeps the class default;
    ``momentum`` only applies to ``sgd_momentum``.
    """
    try:
        cls = OPTIMIZER_FAMILIES[family]
    except KeyError:
        raise ConfigurationError(
            f"unknown optimizer family {family!r}; known: "
            f"{sorted(OPTIMIZER_FAMILIES)}"
        ) from None
    kwargs: dict = {}
    if lr is not None:
        kwargs["lr"] = lr
    if family == "sgd_momentum":
        kwargs["momentum"] = momentum
    return cls(params, **kwargs)
