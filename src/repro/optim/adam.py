"""Adam and AdamW with exact undo (paper Algorithms 5-8)."""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.module import Module, Parameter
from repro.optim.base import Optimizer

__all__ = ["Adam", "AdamW"]


def advance_moments(opt, m, v, g, w) -> None:
    """Fused EMA advance of the Adam-family moments (shared kernel).

    ``m ← b1*m + (1-b1)*g``, ``v ← b2*v + (1-b2)*g²`` over flat spans,
    chained through the scratch vector ``w`` — the single statement of the
    arithmetic Adam, AdamW, AMSGrad, and LAMB kernels all share, so the
    bitwise eager-vs-fused contract has one implementation to audit.
    """
    m *= opt.beta1
    np.multiply(g, 1.0 - opt.beta1, out=w)
    m += w
    np.multiply(g, g, out=w)
    w *= 1.0 - opt.beta2
    v *= opt.beta2
    v += w


def corrected_denominator(opt, v_like, w, t: int) -> None:
    """``w ← sqrt(v_like / (1 - b2^t)) + eps`` — the shared denominator."""
    np.divide(v_like, 1.0 - opt.beta2**t, out=w)
    np.sqrt(w, out=w)
    w += opt.eps


class Adam(Optimizer):
    """Adam with L2 regularization folded into the gradient (Algorithm 5).

    Undo (Algorithm 6) first recovers ``x_t`` from the bias-corrected
    moments, then re-derives ``g'_t = g_t + wd * x_t`` to rewind the moment
    estimates.  ``beta1 == 0`` or ``beta2 == 0`` would make the respective
    moment rewind a division by zero, so they are rejected at construction.
    """

    flat_slots = ("m", "v")

    def __init__(
        self,
        params: Module | Iterable[tuple[str, Parameter]],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not (0.0 < beta1 < 1.0 and 0.0 < beta2 < 1.0):
            raise ConfigurationError(
                f"betas must lie in (0, 1) for an invertible Adam, got {betas}"
            )
        self.beta1, self.beta2 = float(beta1), float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)

    def _direction(self, name: str, t: int) -> np.ndarray:
        """Bias-corrected update direction ``m_hat / (sqrt(v_hat) + eps)``."""
        m = self.state[name]["m"]
        v = self.state[name]["v"]
        m_hat = m / (1.0 - self.beta1**t)
        v_hat = v / (1.0 - self.beta2**t)
        return m_hat / (np.sqrt(v_hat) + self.eps)

    def _update(self, name: str, param: Parameter, grad: np.ndarray) -> None:
        m = self._slot(name, "m", param.data)
        v = self._slot(name, "v", param.data)
        g = grad + self.weight_decay * param.data
        m *= self.beta1
        m += (1.0 - self.beta1) * g
        v *= self.beta2
        v += (1.0 - self.beta2) * g**2
        t = self.step_counts[name]
        param.data -= self.lr * self._direction(name, t)

    def _step_flat(self, arena, gflat, span, names, t) -> None:
        # allocation-free restatement of _update: every pass is the same
        # IEEE add/multiply/divide (commuted operands where convenient —
        # both ops are commutative bit-for-bit), chained through two
        # scratch vectors instead of fresh temporaries
        p = arena.params.data[span]
        m = arena.slots["m"].data[span]
        v = arena.slots["v"].data[span]
        g = arena.scratch("a")[span]
        w = arena.scratch("b")[span]
        np.multiply(p, self.weight_decay, out=g)
        g += gflat[span]  # g = grad + wd * x
        advance_moments(self, m, v, g, w)
        np.divide(m, 1.0 - self.beta1**t, out=g)  # m_hat
        corrected_denominator(self, v, w, t)
        np.divide(g, w, out=g)
        g *= self.lr
        p -= g

    def _undo(self, name: str, param: Parameter, grad: np.ndarray) -> None:
        lr = self.undo_journal[name]["lr"]
        t = self.step_counts[name]
        # x_t = x_{t+1} + lr * m_hat / (sqrt(v_hat) + eps)
        param.data += lr * self._direction(name, t)
        g = grad + self.weight_decay * param.data
        m = self.state[name]["m"]
        v = self.state[name]["v"]
        m -= (1.0 - self.beta1) * g
        m /= self.beta1
        v -= (1.0 - self.beta2) * g**2
        v /= self.beta2


class AdamW(Optimizer):
    """AdamW: decoupled weight decay (Algorithm 7) with undo (Algorithm 8).

    Update::

        m_t = b1*m + (1-b1)*g;  v_t = b2*v + (1-b2)*g^2
        x_{t+1} = x_t - lr * (m_hat/(sqrt(v_hat)+eps) + wd * x_t)

    Undo::

        x_t = (x_{t+1} + lr * m_hat/(sqrt(v_hat)+eps)) / (1 - lr*wd)
        m_{t-1} = (m_t - (1-b1)*g)/b1;  v_{t-1} = (v_t - (1-b2)*g^2)/b2
    """

    flat_slots = ("m", "v")

    def __init__(
        self,
        params: Module | Iterable[tuple[str, Parameter]],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.01,
    ):
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not (0.0 < beta1 < 1.0 and 0.0 < beta2 < 1.0):
            raise ConfigurationError(
                f"betas must lie in (0, 1) for an invertible AdamW, got {betas}"
            )
        if lr * weight_decay >= 1.0:
            raise ConfigurationError(
                "lr * weight_decay >= 1 makes the AdamW update non-invertible"
            )
        self.beta1, self.beta2 = float(beta1), float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)

    def _direction(self, name: str, t: int) -> np.ndarray:
        m = self.state[name]["m"]
        v = self.state[name]["v"]
        m_hat = m / (1.0 - self.beta1**t)
        v_hat = v / (1.0 - self.beta2**t)
        return m_hat / (np.sqrt(v_hat) + self.eps)

    def _update(self, name: str, param: Parameter, grad: np.ndarray) -> None:
        m = self._slot(name, "m", param.data)
        v = self._slot(name, "v", param.data)
        m *= self.beta1
        m += (1.0 - self.beta1) * grad
        v *= self.beta2
        v += (1.0 - self.beta2) * grad**2
        t = self.step_counts[name]
        param.data -= self.lr * (
            self._direction(name, t) + self.weight_decay * param.data
        )

    def _step_flat(self, arena, gflat, span, names, t) -> None:
        # allocation-free restatement of _update (see Adam._step_flat)
        p = arena.params.data[span]
        m = arena.slots["m"].data[span]
        v = arena.slots["v"].data[span]
        a = arena.scratch("a")[span]
        w = arena.scratch("b")[span]
        advance_moments(self, m, v, gflat[span], w)
        np.divide(m, 1.0 - self.beta1**t, out=a)  # m_hat
        corrected_denominator(self, v, w, t)
        np.divide(a, w, out=a)  # direction
        np.multiply(p, self.weight_decay, out=w)
        a += w  # direction + wd * x
        a *= self.lr
        p -= a

    def _undo(self, name: str, param: Parameter, grad: np.ndarray) -> None:
        lr = self.undo_journal[name]["lr"]
        t = self.step_counts[name]
        param.data = (param.data + lr * self._direction(name, t)) / (
            1.0 - lr * self.weight_decay
        )
        m = self.state[name]["m"]
        v = self.state[name]["v"]
        m -= (1.0 - self.beta1) * grad
        m /= self.beta1
        v -= (1.0 - self.beta2) * grad**2
        v /= self.beta2
