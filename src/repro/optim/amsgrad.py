"""AMSGrad — the deliberately non-invertible optimizer (paper Table 1).

AMSGrad keeps ``v_hat_t = max(v_hat_{t-1}, v_t)``.  The element-wise maximum
destroys information (when the max is the old value, ``v_t``'s contribution
is unrecoverable... and when it's the new one, the old is), so update-undo
is *not applicable* and :meth:`undo_param` raises
:class:`~repro.errors.NotInvertibleError`.  Swift falls back to snapshot or
checkpoint-based consistency for such optimizers.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.module import Module, Parameter
from repro.optim.adam import advance_moments, corrected_denominator
from repro.optim.base import Optimizer

__all__ = ["AMSGrad"]


class AMSGrad(Optimizer):
    """Adam variant with a running maximum of the second moment."""

    invertible = False
    flat_slots = ("m", "v", "v_max")

    def __init__(
        self,
        params: Module | Iterable[tuple[str, Parameter]],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ConfigurationError(f"betas must lie in [0, 1), got {betas}")
        self.beta1, self.beta2 = float(beta1), float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)

    def _update(self, name: str, param: Parameter, grad: np.ndarray) -> None:
        m = self._slot(name, "m", param.data)
        v = self._slot(name, "v", param.data)
        v_max = self._slot(name, "v_max", param.data)
        g = grad + self.weight_decay * param.data
        m *= self.beta1
        m += (1.0 - self.beta1) * g
        v *= self.beta2
        v += (1.0 - self.beta2) * g**2
        np.maximum(v_max, v, out=v_max)  # the non-invertible EW-max
        t = self.step_counts[name]
        m_hat = m / (1.0 - self.beta1**t)
        v_hat = v_max / (1.0 - self.beta2**t)
        param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def _step_flat(self, arena, gflat, span, names, t) -> None:
        # allocation-free restatement of _update (same IEEE ops)
        p = arena.params.data[span]
        m = arena.slots["m"].data[span]
        v = arena.slots["v"].data[span]
        v_max = arena.slots["v_max"].data[span]
        g = arena.scratch("a")[span]
        w = arena.scratch("b")[span]
        np.multiply(p, self.weight_decay, out=g)
        g += gflat[span]  # g = grad + wd * x
        advance_moments(self, m, v, g, w)
        np.maximum(v_max, v, out=v_max)  # the non-invertible EW-max
        np.divide(m, 1.0 - self.beta1**t, out=g)  # m_hat
        g *= self.lr
        corrected_denominator(self, v_max, w, t)
        np.divide(g, w, out=g)
        p -= g

    def _undo(self, name: str, param: Parameter, grad: np.ndarray) -> None:
        raise AssertionError("unreachable: guarded by invertible=False")
