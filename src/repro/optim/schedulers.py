"""Learning-rate schedulers compatible with update-undo.

Undo must apply the learning rate *of the step being undone*, not the
current one — the optimizer journals the lr per step (see
:class:`~repro.optim.base.Optimizer`), so schedulers compose freely with
Swift's recovery.  Recovery replays also re-drive the scheduler from the
checkpointed step count, keeping lr sequences deterministic.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.optim.base import Optimizer

__all__ = ["LRScheduler", "ConstantLR", "StepDecayLR", "CosineLR", "WarmupLR"]


class LRScheduler:
    """Base scheduler: computes lr(t) and pushes it into the optimizer.

    Call :meth:`step` once per iteration *before* ``optimizer.step()``.
    ``t`` starts at 0 and may be rewound (recovery calls :meth:`rewind_to`)
    — the schedule is a pure function of ``t``, so rewinding is exact.
    """

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.t = 0
        self.base_lr = optimizer.lr

    def lr_at(self, t: int) -> float:
        raise NotImplementedError

    def step(self) -> float:
        lr = self.lr_at(self.t)
        self.optimizer.lr = lr
        self.t += 1
        return lr

    def rewind_to(self, t: int) -> None:
        """Reset the schedule position (used by recovery replay)."""
        if t < 0:
            raise ConfigurationError("cannot rewind before step 0")
        self.t = t
        self.optimizer.lr = self.lr_at(t) if t > 0 else self.base_lr

    def state_dict(self) -> dict:
        return {"t": self.t, "base_lr": self.base_lr}

    def load_state_dict(self, state: dict) -> None:
        self.t = int(state["t"])
        self.base_lr = float(state["base_lr"])


class ConstantLR(LRScheduler):
    """lr(t) = base_lr."""

    def lr_at(self, t: int) -> float:
        return self.base_lr


class StepDecayLR(LRScheduler):
    """Multiply lr by ``gamma`` every ``step_size`` iterations."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        if step_size < 1:
            raise ConfigurationError("step_size must be >= 1")
        if not 0.0 < gamma <= 1.0:
            raise ConfigurationError("gamma must lie in (0, 1]")
        self.step_size = step_size
        self.gamma = gamma

    def lr_at(self, t: int) -> float:
        return self.base_lr * self.gamma ** (t // self.step_size)


class CosineLR(LRScheduler):
    """Cosine annealing from base_lr to ``min_lr`` over ``total_steps``."""

    def __init__(self, optimizer: Optimizer, total_steps: int,
                 min_lr: float = 0.0):
        super().__init__(optimizer)
        if total_steps < 1:
            raise ConfigurationError("total_steps must be >= 1")
        self.total_steps = total_steps
        self.min_lr = min_lr

    def lr_at(self, t: int) -> float:
        progress = min(t / self.total_steps, 1.0)
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1.0 + math.cos(math.pi * progress)
        )


class WarmupLR(LRScheduler):
    """Linear warm-up to base_lr, then delegate to an inner schedule."""

    def __init__(self, optimizer: Optimizer, warmup_steps: int,
                 after: LRScheduler | None = None):
        super().__init__(optimizer)
        if warmup_steps < 1:
            raise ConfigurationError("warmup_steps must be >= 1")
        self.warmup_steps = warmup_steps
        self.after = after or ConstantLR(optimizer)

    def lr_at(self, t: int) -> float:
        if t < self.warmup_steps:
            return self.base_lr * (t + 1) / self.warmup_steps
        return self.after.lr_at(t - self.warmup_steps)
