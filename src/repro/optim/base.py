"""Optimizer base class with an invertible-update contract.

Swift's update-undo (paper Section 4) relies on optimizers being
*mathematically invertible*: for the update ``f`` there exists ``f⁻¹`` that
recovers ``(x_t, state_{t-1})`` from ``(x_{t+1}, state_t, g_t)``.  Every
optimizer here therefore implements both :meth:`step_param` and
:meth:`undo_param`.  The undo path uses the gradient still cached in
``Parameter.grad`` — exactly the "cache the latest gradients" observation
the paper makes about mainstream DL frameworks.

Updates are *per parameter* so that engines can model wait-free layer-wise
updates (Section 2.3): a crash between two ``step_param`` calls leaves the
model in the inconsistent state that update-undo then repairs.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import numpy as np

from repro.errors import NotInvertibleError, ShapeError
from repro.nn.module import Module, Parameter
from repro.utils.flat import FlatArena

__all__ = ["Optimizer"]


class Optimizer:
    """Base optimizer over named parameters.

    Parameters
    ----------
    params:
        A :class:`~repro.nn.Module` or an iterable of ``(name, Parameter)``
        pairs.  Parameters with ``requires_grad=False`` (e.g. batch-norm
        running statistics) are excluded from updates.
    lr:
        Learning rate.  May be changed between iterations; the value used at
        each step is journaled per-parameter so undo applies the right one.
    """

    #: Whether :meth:`undo_param` is implemented (Table 1).
    invertible: bool = True

    #: slot tensor names the fused kernel advances (momentum, moments, ...);
    #: subclasses overriding :meth:`_step_flat` must list every slot their
    #: ``_update`` touches so the flat arena can host them
    flat_slots: tuple[str, ...] = ()

    def __init__(self, params: Module | Iterable[tuple[str, Parameter]], lr: float):
        if isinstance(params, Module):
            named = list(params.named_parameters())
        else:
            named = list(params)
        self.params: dict[str, Parameter] = {
            name: p for name, p in named if p.requires_grad
        }
        if not self.params:
            raise ShapeError("optimizer constructed with no trainable parameters")
        self.lr = float(lr)
        #: per-parameter update count (the ``t`` in the algorithms)
        self.step_counts: dict[str, int] = {name: 0 for name in self.params}
        #: per-parameter slot tensors (momentum, moments, ...)
        self.state: dict[str, dict[str, np.ndarray]] = {
            name: {} for name in self.params
        }
        #: per-parameter journal of scalars needed by undo (lr used, trust
        #: ratios, ...) — only the *latest* step is kept, matching the
        #: single-gradient-version memory budget of Section 4.
        self.undo_journal: dict[str, dict[str, float]] = {
            name: {} for name in self.params
        }
        #: parameters whose state changed since the last checkpoint — the
        #: dirty-key report incremental checkpointing persists deltas from.
        #: Everything is dirty before the first full checkpoint.
        self.dirty_params: set[str] = set(self.params)
        #: flat arena backing the fused step path (built on first use)
        self._arena: FlatArena | None = None

    # -- single-parameter update/undo (implemented by subclasses) ----------
    def _update(self, name: str, param: Parameter, grad: np.ndarray) -> None:
        raise NotImplementedError

    def _undo(self, name: str, param: Parameter, grad: np.ndarray) -> None:
        raise NotImplementedError

    # -- public API ----------------------------------------------------------
    def step_param(self, name: str) -> None:
        """Apply the update to one parameter using its cached gradient."""
        param = self.params[name]
        if param.grad is None:
            raise ShapeError(f"parameter {name!r} has no gradient")
        self.step_counts[name] += 1
        self.undo_journal[name]["lr"] = self.lr
        self.dirty_params.add(name)
        self._update(name, param, param.grad)

    def step(self, order: Iterable[str] | None = None) -> list[str]:
        """Update every parameter (optionally in a given order).

        Returns the list of parameter names in update order — engines use
        this to mark parameters updated for crash-consistency bookkeeping.
        """
        names = list(order) if order is not None else list(self.params)
        for name in names:
            self.step_param(name)
        return names

    def undo_param(self, name: str) -> None:
        """Invert the most recent update of one parameter.

        Requires ``Parameter.grad`` to still hold the gradient ``g_t`` used
        by that update.
        """
        if not self.invertible:
            raise NotInvertibleError(
                f"{type(self).__name__} uses non-invertible operators and "
                "cannot undo updates (paper Table 1)"
            )
        param = self.params[name]
        if param.grad is None:
            raise ShapeError(f"parameter {name!r} has no cached gradient to undo with")
        if self.step_counts[name] <= 0:
            raise NotInvertibleError(f"parameter {name!r} has no update to undo")
        self._undo(name, param, param.grad)
        self.step_counts[name] -= 1
        self.dirty_params.add(name)

    def undo(self, names: Iterable[str] | None = None) -> list[str]:
        """Undo the latest update of the given parameters (default: all)."""
        names = list(names) if names is not None else list(self.params)
        for name in names:
            self.undo_param(name)
        return names

    # -- fused flat-buffer update path ----------------------------------------
    @classmethod
    def supports_flat(cls) -> bool:
        """Whether this optimizer ships a vectorized flat kernel."""
        return cls._step_flat is not Optimizer._step_flat

    def flat_arena(self, order: Iterable[str] | None = None) -> FlatArena:
        """The optimizer's flat arena, (re)built when the layout changes."""
        order = list(order) if order is not None else list(self.params)
        unknown = [n for n in order if n not in self.params]
        if unknown:
            raise ShapeError(f"unknown parameters in flat order: {unknown}")
        if self._arena is None or self._arena.order != order:
            shapes = {n: self.params[n].data.shape for n in order}
            self._arena = FlatArena(shapes, order, self.flat_slots)
        return self._arena

    def bind_flat(self, order: Iterable[str] | None = None) -> FlatArena:
        """Adopt parameters (and existing slots) into the flat arena.

        Leaves already backed by the arena are left alone (an ``is`` check
        per leaf); detached leaves — fresh construction, ``load_state_dict``
        rebinds, out-of-place undo rebinds, or copy-on-write shares of
        another replica's arena — are copied in and rebound as writable
        arena views.  Idempotent and cheap once bound.
        """
        arena = self.flat_arena(order)
        pviews = arena.params.views()
        for name in arena.order:
            param = self.params[name]
            if param.data is not pviews[name]:
                pviews[name][...] = param.data
                param.data = pviews[name]
        for slot, buf in arena.slots.items():
            sviews = buf.views()
            for name in arena.order:
                cur = self.state[name].get(slot)
                if cur is not None and cur is not sviews[name]:
                    sviews[name][...] = cur
                    self.state[name][slot] = sviews[name]
        return arena

    def flat_bound(self, order: Iterable[str] | None = None) -> bool:
        """True iff every leaf is currently a writable view of the arena."""
        arena = self._arena
        if arena is None:
            return False
        if order is not None and arena.order != list(order):
            return False
        pviews = arena.params.views()
        if any(self.params[n].data is not pviews[n] for n in arena.order):
            return False
        for slot, buf in arena.slots.items():
            sviews = buf.views()
            for name in arena.order:
                cur = self.state[name].get(slot)
                if cur is not None and cur is not sviews[name]:
                    return False
        return True

    def step_flat(
        self,
        count: int | None = None,
        order: Iterable[str] | None = None,
        grads: np.ndarray | None = None,
    ) -> list[str]:
        """Fused update of the first ``count`` arena parameters.

        Bitwise-identical to calling :meth:`step_param` on the same names
        in the same order: the kernels perform the same elementwise
        arithmetic with the same scalars, just over contiguous spans.
        ``count`` is the wait-free update budget — a MID_UPDATE crash after
        ``k`` parameters is exactly ``step_flat(count=k)``.

        ``grads`` optionally supplies an external flat gradient vector in
        arena layout (e.g. the fused all-reduce output), skipping the
        per-parameter gather entirely.
        """
        if not self.supports_flat():
            # no vectorized kernel: plain eager loop, no arena involved
            full = list(order) if order is not None else list(self.params)
            names = full if count is None else full[: max(count, 0)]
            if grads is not None:
                # honor the external flat gradient source: scatter it into
                # the per-parameter grads the eager loop reads
                offset = 0
                slices = {}
                for name in full:
                    size = int(self.params[name].data.size)
                    slices[name] = slice(offset, offset + size)
                    offset += size
                if grads.size != offset:
                    raise ShapeError(
                        f"flat gradient size {grads.size} != layout size "
                        f"{offset}"
                    )
                for name in names:
                    param = self.params[name]
                    param.grad = np.array(
                        grads[slices[name]].reshape(param.data.shape),
                        copy=True,
                    )
            for name in names:
                self.step_param(name)
            return list(names)
        arena = self.bind_flat(order)
        names = arena.order if count is None else arena.order[: max(count, 0)]
        if not names:
            return []
        if grads is None:
            gflat = arena.grads.data
            gviews = arena.grads.views()
            for name in names:
                grad = self.params[name].grad
                if grad is None:
                    raise ShapeError(f"parameter {name!r} has no gradient")
                if grad is not gviews[name] and grad.base is not gflat:
                    gviews[name][...] = grad
        else:
            if grads.size != arena.params.size:
                raise ShapeError(
                    f"flat gradient size {grads.size} != arena size "
                    f"{arena.params.size}"
                )
            gflat = grads
        # fuse over maximal runs of uniform step count (bias-correction
        # scalars depend on t; runs collapse to one span in steady state);
        # bookkeeping lands per run, so a kernel raising mid-call never
        # leaves an earlier successful run without its counts/journal
        start = 0
        while start < len(names):
            t = self.step_counts[names[start]] + 1
            stop = start + 1
            while stop < len(names) and self.step_counts[names[stop]] + 1 == t:
                stop += 1
            run = names[start:stop]
            span = slice(
                arena.params.slices[run[0]].start,
                arena.params.slices[run[-1]].stop,
            )
            self._step_flat(arena, gflat, span, run, t)
            for name in run:
                self.step_counts[name] += 1
                self.undo_journal[name]["lr"] = self.lr
            self.dirty_params.update(run)
            # bind slots lazily, only for parameters actually stepped, so
            # the state dict keeps exactly the keys the eager path would
            # produce (crash states with partially created slots included)
            for slot, buf in arena.slots.items():
                sviews = buf.views()
                for name in run:
                    if self.state[name].get(slot) is not sviews[name]:
                        self.state[name][slot] = sviews[name]
            start = stop
        return list(names)

    def _step_flat(
        self,
        arena: FlatArena,
        gflat: np.ndarray,
        span: slice,
        names: list[str],
        t: int,
    ) -> None:
        """Vectorized update of ``arena.params.data[span]`` (subclasses).

        ``gflat`` is the flat gradient source (arena layout), ``names`` the
        parameters the span covers, ``t`` their common post-increment step
        count.  Must perform the same elementwise arithmetic as
        :meth:`_update` so fused and eager paths stay bitwise identical.
        """
        raise NotImplementedError

    # -- checkpointable state --------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Flatten optimizer state (slots + step counts) into arrays.

        Together with the model state dict this forms the *model state* the
        paper protects: "parameters and optimizer states".
        """
        out: dict[str, np.ndarray] = {}
        for name, slots in self.state.items():
            for slot, arr in slots.items():
                out[f"{name}::{slot}"] = np.array(arr, copy=True)
            out[f"{name}::step"] = np.array(self.step_counts[name], dtype=np.int64)
        return out

    def load_state_dict(self, state: Mapping[str, np.ndarray]) -> None:
        for key, arr in state.items():
            name, slot = key.rsplit("::", 1)
            if name not in self.params:
                raise ShapeError(f"unknown parameter {name!r} in optimizer state")
            self.dirty_params.add(name)
            if slot == "step":
                self.step_counts[name] = int(arr)
            else:
                self.state[name][slot] = np.array(arr, dtype=np.float64, copy=True)

    # -- dirty-key reporting (incremental checkpoints) -----------------------
    def dirty_state_keys(self) -> set[str]:
        """State-dict keys changed since :meth:`clear_dirty` was last called.

        Covers both the slot tensors and the step counters of every dirty
        parameter — together with the parameter itself (reported by the
        worker layer) this is the full set of leaves a delta checkpoint
        must persist.
        """
        keys: set[str] = set()
        for name in self.dirty_params:
            keys.update(f"{name}::{slot}" for slot in self.state[name])
            keys.add(f"{name}::step")
        return keys

    def clear_dirty(self) -> None:
        """Reset the dirty report (called after a successful checkpoint)."""
        self.dirty_params = set()

    # -- helpers for subclasses ---------------------------------------------
    def _slot(self, name: str, slot: str, like: np.ndarray) -> np.ndarray:
        """Fetch (or zero-initialize) a per-parameter state tensor."""
        slots = self.state[name]
        if slot not in slots:
            slots[slot] = np.zeros_like(like)
        return slots[slot]
