"""Optimizer base class with an invertible-update contract.

Swift's update-undo (paper Section 4) relies on optimizers being
*mathematically invertible*: for the update ``f`` there exists ``f⁻¹`` that
recovers ``(x_t, state_{t-1})`` from ``(x_{t+1}, state_t, g_t)``.  Every
optimizer here therefore implements both :meth:`step_param` and
:meth:`undo_param`.  The undo path uses the gradient still cached in
``Parameter.grad`` — exactly the "cache the latest gradients" observation
the paper makes about mainstream DL frameworks.

Updates are *per parameter* so that engines can model wait-free layer-wise
updates (Section 2.3): a crash between two ``step_param`` calls leaves the
model in the inconsistent state that update-undo then repairs.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import numpy as np

from repro.errors import NotInvertibleError, ShapeError
from repro.nn.module import Module, Parameter

__all__ = ["Optimizer"]


class Optimizer:
    """Base optimizer over named parameters.

    Parameters
    ----------
    params:
        A :class:`~repro.nn.Module` or an iterable of ``(name, Parameter)``
        pairs.  Parameters with ``requires_grad=False`` (e.g. batch-norm
        running statistics) are excluded from updates.
    lr:
        Learning rate.  May be changed between iterations; the value used at
        each step is journaled per-parameter so undo applies the right one.
    """

    #: Whether :meth:`undo_param` is implemented (Table 1).
    invertible: bool = True

    def __init__(self, params: Module | Iterable[tuple[str, Parameter]], lr: float):
        if isinstance(params, Module):
            named = list(params.named_parameters())
        else:
            named = list(params)
        self.params: dict[str, Parameter] = {
            name: p for name, p in named if p.requires_grad
        }
        if not self.params:
            raise ShapeError("optimizer constructed with no trainable parameters")
        self.lr = float(lr)
        #: per-parameter update count (the ``t`` in the algorithms)
        self.step_counts: dict[str, int] = {name: 0 for name in self.params}
        #: per-parameter slot tensors (momentum, moments, ...)
        self.state: dict[str, dict[str, np.ndarray]] = {
            name: {} for name in self.params
        }
        #: per-parameter journal of scalars needed by undo (lr used, trust
        #: ratios, ...) — only the *latest* step is kept, matching the
        #: single-gradient-version memory budget of Section 4.
        self.undo_journal: dict[str, dict[str, float]] = {
            name: {} for name in self.params
        }
        #: parameters whose state changed since the last checkpoint — the
        #: dirty-key report incremental checkpointing persists deltas from.
        #: Everything is dirty before the first full checkpoint.
        self.dirty_params: set[str] = set(self.params)

    # -- single-parameter update/undo (implemented by subclasses) ----------
    def _update(self, name: str, param: Parameter, grad: np.ndarray) -> None:
        raise NotImplementedError

    def _undo(self, name: str, param: Parameter, grad: np.ndarray) -> None:
        raise NotImplementedError

    # -- public API ----------------------------------------------------------
    def step_param(self, name: str) -> None:
        """Apply the update to one parameter using its cached gradient."""
        param = self.params[name]
        if param.grad is None:
            raise ShapeError(f"parameter {name!r} has no gradient")
        self.step_counts[name] += 1
        self.undo_journal[name]["lr"] = self.lr
        self.dirty_params.add(name)
        self._update(name, param, param.grad)

    def step(self, order: Iterable[str] | None = None) -> list[str]:
        """Update every parameter (optionally in a given order).

        Returns the list of parameter names in update order — engines use
        this to mark parameters updated for crash-consistency bookkeeping.
        """
        names = list(order) if order is not None else list(self.params)
        for name in names:
            self.step_param(name)
        return names

    def undo_param(self, name: str) -> None:
        """Invert the most recent update of one parameter.

        Requires ``Parameter.grad`` to still hold the gradient ``g_t`` used
        by that update.
        """
        if not self.invertible:
            raise NotInvertibleError(
                f"{type(self).__name__} uses non-invertible operators and "
                "cannot undo updates (paper Table 1)"
            )
        param = self.params[name]
        if param.grad is None:
            raise ShapeError(f"parameter {name!r} has no cached gradient to undo with")
        if self.step_counts[name] <= 0:
            raise NotInvertibleError(f"parameter {name!r} has no update to undo")
        self._undo(name, param, param.grad)
        self.step_counts[name] -= 1
        self.dirty_params.add(name)

    def undo(self, names: Iterable[str] | None = None) -> list[str]:
        """Undo the latest update of the given parameters (default: all)."""
        names = list(names) if names is not None else list(self.params)
        for name in names:
            self.undo_param(name)
        return names

    # -- checkpointable state --------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Flatten optimizer state (slots + step counts) into arrays.

        Together with the model state dict this forms the *model state* the
        paper protects: "parameters and optimizer states".
        """
        out: dict[str, np.ndarray] = {}
        for name, slots in self.state.items():
            for slot, arr in slots.items():
                out[f"{name}::{slot}"] = np.array(arr, copy=True)
            out[f"{name}::step"] = np.array(self.step_counts[name], dtype=np.int64)
        return out

    def load_state_dict(self, state: Mapping[str, np.ndarray]) -> None:
        for key, arr in state.items():
            name, slot = key.rsplit("::", 1)
            if name not in self.params:
                raise ShapeError(f"unknown parameter {name!r} in optimizer state")
            self.dirty_params.add(name)
            if slot == "step":
                self.step_counts[name] = int(arr)
            else:
                self.state[name][slot] = np.array(arr, dtype=np.float64, copy=True)

    # -- dirty-key reporting (incremental checkpoints) -----------------------
    def dirty_state_keys(self) -> set[str]:
        """State-dict keys changed since :meth:`clear_dirty` was last called.

        Covers both the slot tensors and the step counters of every dirty
        parameter — together with the parameter itself (reported by the
        worker layer) this is the full set of leaves a delta checkpoint
        must persist.
        """
        keys: set[str] = set()
        for name in self.dirty_params:
            keys.update(f"{name}::{slot}" for slot in self.state[name])
            keys.add(f"{name}::step")
        return keys

    def clear_dirty(self) -> None:
        """Reset the dirty report (called after a successful checkpoint)."""
        self.dirty_params = set()

    # -- helpers for subclasses ---------------------------------------------
    def _slot(self, name: str, slot: str, like: np.ndarray) -> np.ndarray:
        """Fetch (or zero-initialize) a per-parameter state tensor."""
        slots = self.state[name]
        if slot not in slots:
            slots[slot] = np.zeros_like(like)
        return slots[slot]
