"""LAMB optimizer with scalar-journal undo.

LAMB scales the Adam direction by a layer-wise trust ratio
``phi(||x_t||) / ||r_t||`` — a *non-linear* operator.  As the paper notes
(Section 4): "For the LAMB optimizer, we can additionally save the L2 norm
(a scalar), and recover the previous model state accordingly."  We journal
the trust ratio actually applied at each step (one float per parameter),
which makes the update affine in ``x_t`` and therefore invertible.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.module import Module, Parameter
from repro.optim.adam import advance_moments, corrected_denominator
from repro.optim.base import Optimizer

__all__ = ["LAMB"]


class LAMB(Optimizer):
    """Layer-wise Adaptive Moments for Batch training (You et al., 2020).

    Update::

        m_t = b1*m + (1-b1)*g;  v_t = b2*v + (1-b2)*g^2
        r_t = m_hat/(sqrt(v_hat)+eps) + wd * x_t
        trust = ||x_t|| / ||r_t||       (1 when either norm is 0)
        x_{t+1} = x_t - lr * trust * r_t

    Undo (with journaled ``trust``)::

        a   = m_hat/(sqrt(v_hat)+eps)
        x_t = (x_{t+1} + lr*trust*a) / (1 - lr*trust*wd)
        m/v rewound as in Adam (decay folded into r, not g)
    """

    flat_slots = ("m", "v")

    def __init__(
        self,
        params: Module | Iterable[tuple[str, Parameter]],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-6,
        weight_decay: float = 0.01,
    ):
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not (0.0 < beta1 < 1.0 and 0.0 < beta2 < 1.0):
            raise ConfigurationError(
                f"betas must lie in (0, 1) for an invertible LAMB, got {betas}"
            )
        self.beta1, self.beta2 = float(beta1), float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)

    def _adam_direction(self, name: str, t: int) -> np.ndarray:
        m = self.state[name]["m"]
        v = self.state[name]["v"]
        m_hat = m / (1.0 - self.beta1**t)
        v_hat = v / (1.0 - self.beta2**t)
        return m_hat / (np.sqrt(v_hat) + self.eps)

    def _update(self, name: str, param: Parameter, grad: np.ndarray) -> None:
        m = self._slot(name, "m", param.data)
        v = self._slot(name, "v", param.data)
        m *= self.beta1
        m += (1.0 - self.beta1) * grad
        v *= self.beta2
        v += (1.0 - self.beta2) * grad**2
        t = self.step_counts[name]
        r = self._adam_direction(name, t) + self.weight_decay * param.data
        x_norm = float(np.linalg.norm(param.data))
        r_norm = float(np.linalg.norm(r))
        trust = x_norm / r_norm if x_norm > 0.0 and r_norm > 0.0 else 1.0
        if self.lr * trust * self.weight_decay >= 1.0:
            raise ConfigurationError(
                "lr * trust * weight_decay >= 1 makes this LAMB step non-invertible"
            )
        # The scalar journal entry is the paper's "save the L2 norm" trick.
        self.undo_journal[name]["trust"] = trust
        param.data -= self.lr * trust * r

    def _step_flat(self, arena, gflat, span, names, t) -> None:
        # moments advance fused over the whole span (allocation-free, same
        # IEEE ops as _update); the trust ratio is a per-layer scalar by
        # construction, so only the final scaled subtraction runs per
        # parameter (over that parameter's slice)
        p = arena.params.data[span]
        m = arena.slots["m"].data[span]
        v = arena.slots["v"].data[span]
        r = arena.scratch("a")[span]
        w = arena.scratch("b")[span]
        advance_moments(self, m, v, gflat[span], w)
        np.divide(m, 1.0 - self.beta1**t, out=r)  # m_hat
        corrected_denominator(self, v, w, t)
        np.divide(r, w, out=r)  # adam direction
        np.multiply(p, self.weight_decay, out=w)
        r += w  # r = direction + wd * x
        base = span.start
        locals_ = [
            slice(arena.local_slice(n).start - base,
                  arena.local_slice(n).stop - base)
            for n in names
        ]
        trusts = []
        for name, local in zip(names, locals_):
            x_norm = float(np.linalg.norm(p[local]))
            r_norm = float(np.linalg.norm(r[local]))
            trusts.append(
                x_norm / r_norm if x_norm > 0.0 and r_norm > 0.0 else 1.0
            )
        # guard the whole span before touching any parameter or journal, so
        # a rejected step never leaves half the span updated with stale
        # undo bookkeeping (the eager path cannot offer this atomicity)
        if any(self.lr * t_ * self.weight_decay >= 1.0 for t_ in trusts):
            raise ConfigurationError(
                "lr * trust * weight_decay >= 1 makes this LAMB step "
                "non-invertible"
            )
        for name, local, trust in zip(names, locals_, trusts):
            self.undo_journal[name]["trust"] = trust
            r_i = r[local]
            r_i *= self.lr * trust
            p[local] -= r_i

    def _undo(self, name: str, param: Parameter, grad: np.ndarray) -> None:
        journal = self.undo_journal[name]
        lr = journal["lr"]
        trust = journal["trust"]
        t = self.step_counts[name]
        a = self._adam_direction(name, t)
        param.data = (param.data + lr * trust * a) / (
            1.0 - lr * trust * self.weight_decay
        )
        m = self.state[name]["m"]
        v = self.state[name]["v"]
        m -= (1.0 - self.beta1) * grad
        m /= self.beta1
        v -= (1.0 - self.beta2) * grad**2
        v /= self.beta2
