"""SGD and SGD-with-momentum with exact undo (paper Algorithms 1-4)."""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.module import Module, Parameter
from repro.optim.base import Optimizer

__all__ = ["SGD", "SGDMomentum"]


class SGD(Optimizer):
    """Plain SGD with decoupled-into-gradient weight decay.

    Update (Algorithm 3):  ``x_{t+1} = x_t - lr * (g_t + wd * x_t)``
    Undo   (Algorithm 4):  ``x_t = (x_{t+1} + lr * g_t) / (1 - lr * wd)``
    """

    def __init__(
        self,
        params: Module | Iterable[tuple[str, Parameter]],
        lr: float = 0.01,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        if lr * weight_decay >= 1.0:
            raise ConfigurationError(
                "lr * weight_decay >= 1 makes the SGD update non-invertible"
            )
        self.weight_decay = float(weight_decay)

    def _update(self, name: str, param: Parameter, grad: np.ndarray) -> None:
        param.data -= self.lr * (grad + self.weight_decay * param.data)

    def _step_flat(self, arena, gflat, span, names, t) -> None:
        # same IEEE ops as _update, chained through a scratch vector
        p = arena.params.data[span]
        w = arena.scratch("a")[span]
        np.multiply(p, self.weight_decay, out=w)
        w += gflat[span]  # g + wd * x
        w *= self.lr
        p -= w

    def _undo(self, name: str, param: Parameter, grad: np.ndarray) -> None:
        lr = self.undo_journal[name]["lr"]
        param.data = (param.data + lr * grad) / (1.0 - lr * self.weight_decay)


class SGDMomentum(Optimizer):
    """SGD with momentum (Algorithm 1) and its inverse (Algorithm 2).

    Update::

        m_t     = mu * m_{t-1} + (1 - tau) * (g_t + wd * x_t)
        x_{t+1} = x_t - lr * m_t

    Undo::

        x_t     = x_{t+1} + lr * m_t
        m_{t-1} = (m_t - (1 - tau) * (g_t + wd * x_t)) / mu

    With ``mu == 0`` the previous momentum is unrecoverable but also unused
    (it is multiplied by ``mu`` in the next step), so undo resets it to zero.
    """

    flat_slots = ("momentum",)

    def __init__(
        self,
        params: Module | Iterable[tuple[str, Parameter]],
        lr: float = 0.01,
        momentum: float = 0.9,
        dampening: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        if not 0.0 <= momentum <= 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1], got {momentum}")
        if not 0.0 <= dampening <= 1.0:
            raise ConfigurationError(f"dampening must be in [0, 1], got {dampening}")
        self.momentum = float(momentum)
        self.dampening = float(dampening)
        self.weight_decay = float(weight_decay)

    def _update(self, name: str, param: Parameter, grad: np.ndarray) -> None:
        m = self._slot(name, "momentum", param.data)
        g = grad + self.weight_decay * param.data
        m *= self.momentum
        m += (1.0 - self.dampening) * g
        param.data -= self.lr * m

    def _step_flat(self, arena, gflat, span, names, t) -> None:
        # same IEEE ops as _update, chained through a scratch vector
        p = arena.params.data[span]
        m = arena.slots["momentum"].data[span]
        w = arena.scratch("a")[span]
        np.multiply(p, self.weight_decay, out=w)
        w += gflat[span]  # g + wd * x
        m *= self.momentum
        w *= 1.0 - self.dampening
        m += w
        np.multiply(m, self.lr, out=w)
        p -= w

    def _undo(self, name: str, param: Parameter, grad: np.ndarray) -> None:
        lr = self.undo_journal[name]["lr"]
        m = self.state[name]["momentum"]
        # x_t = x_{t+1} + lr * m_t
        param.data += lr * m
        g = grad + self.weight_decay * param.data
        if self.momentum == 0.0:
            m[...] = 0.0
        else:
            m -= (1.0 - self.dampening) * g
            m /= self.momentum
