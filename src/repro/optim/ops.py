"""Operator inventory of representative optimizers (paper Table 1).

The table classifies the primitive operators each optimizer applies during
its update and whether each operator is invertible.  Swift's strategy layer
consults :func:`optimizer_invertible` when deciding whether update-undo is
applicable at all.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "OperatorInfo",
    "OPERATORS",
    "OPTIMIZER_OPERATORS",
    "optimizer_invertible",
    "table1_rows",
]


@dataclass(frozen=True)
class OperatorInfo:
    """A primitive update operator and whether it can be undone."""

    name: str
    invertible: bool
    note: str = ""


#: The operator universe of Table 1.
OPERATORS: dict[str, OperatorInfo] = {
    "ew_add": OperatorInfo("EW add", True, "element-wise addition"),
    "scalar_mul": OperatorInfo("scalar mul", True, "multiplication by a scalar"),
    "ew_mul": OperatorInfo("EW mul", True, "element-wise multiplication"),
    "ew_sqrt": OperatorInfo("EW sqrt", True, "element-wise square root (v >= 0)"),
    "ew_div": OperatorInfo("EW div", True, "element-wise division"),
    "ew_max": OperatorInfo("EW-max", False, "running maximum loses information"),
    "sum": OperatorInfo("sum", True, "reduction used by L2 norms; invertible "
                        "once the scalar result is journaled"),
}

#: Which operators each optimizer uses (Table 1 columns).
OPTIMIZER_OPERATORS: dict[str, tuple[str, ...]] = {
    "SGD": ("ew_add", "scalar_mul"),
    "Adam": ("ew_add", "scalar_mul", "ew_mul", "ew_sqrt", "ew_div"),
    "AdamW": ("ew_add", "scalar_mul", "ew_mul", "ew_sqrt", "ew_div"),
    "LAMB": ("ew_add", "scalar_mul", "ew_mul", "ew_sqrt", "ew_div", "sum"),
    "AMSGrad": ("ew_add", "scalar_mul", "ew_mul", "ew_sqrt", "ew_div", "ew_max"),
}


def optimizer_invertible(optimizer_name: str) -> bool:
    """True iff every operator the optimizer uses is invertible."""
    try:
        ops = OPTIMIZER_OPERATORS[optimizer_name]
    except KeyError:
        raise KeyError(
            f"unknown optimizer {optimizer_name!r}; known: "
            f"{sorted(OPTIMIZER_OPERATORS)}"
        ) from None
    return all(OPERATORS[op].invertible for op in ops)


def table1_rows() -> list[dict[str, object]]:
    """Render Table 1 as a list of row dicts (one per operator)."""
    rows = []
    for op_key, info in OPERATORS.items():
        row: dict[str, object] = {"operator": info.name, "invertible": info.invertible}
        for opt, ops in OPTIMIZER_OPERATORS.items():
            row[opt] = op_key in ops
        rows.append(row)
    return rows
