"""Simulated communication: point-to-point transport and collectives."""

from repro.comm.collectives import CollectiveGroup
from repro.comm.p2p import Message, Transport

__all__ = ["Message", "Transport", "CollectiveGroup"]
