"""Collective communication over the simulated cluster.

Data parallelism synchronizes gradients with all-reduce; replication-based
recovery broadcasts the surviving replica's state (paper Sections 2.1, 4).
Data semantics are computed exactly (NumPy); time is priced with the
standard ring-algorithm model: all-reduce moves ``2 (n-1)/n`` of the buffer
over the slowest link, broadcast/all-gather move ``(n-1)/n``.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.device import Device
from repro.cluster.topology import Cluster
from repro.errors import CommunicationError

__all__ = ["CollectiveGroup"]


class CollectiveGroup:
    """A fixed group of ranks participating in collectives."""

    def __init__(self, cluster: Cluster, devices: dict[int, Device]):
        if not devices:
            raise ValueError("collective group needs at least one member")
        self.cluster = cluster
        self.devices = dict(devices)
        #: slowest ring link, computed once — membership is fixed at
        #: construction and link bandwidth depends only on machine
        #: placement, so the scan is loop-invariant across iterations
        self._slowest_link_cache: float | None = None

    @property
    def size(self) -> int:
        return len(self.devices)

    def _check_alive(self) -> None:
        for rank, dev in self.devices.items():
            if not dev.alive:
                raise CommunicationError(rank, rank, f"rank {rank} is dead")

    def _check_participants(self, buffers: dict[int, np.ndarray]) -> None:
        if buffers.keys() != self.devices.keys():
            raise CommunicationError(
                -1, -1, "allreduce called with mismatched participant set"
            )

    def _slowest_link(self) -> float:
        """Bandwidth of the slowest pairwise link in the ring (cached)."""
        if self._slowest_link_cache is None:
            devs = list(self.devices.values())
            if len(devs) == 1:
                self._slowest_link_cache = self.cluster.bandwidth.nvlink
            else:
                self._slowest_link_cache = min(
                    self.cluster.link_bandwidth(devs[i], devs[(i + 1) % len(devs)])
                    for i in range(len(devs))
                )
        return self._slowest_link_cache

    # -- timing -----------------------------------------------------------
    def allreduce_time(self, nbytes: float) -> float:
        n = self.size
        if n == 1 or nbytes <= 0:
            return 0.0
        return 2.0 * (n - 1) / n * nbytes / self._slowest_link()

    def broadcast_time(self, nbytes: float) -> float:
        n = self.size
        if n == 1 or nbytes <= 0:
            return 0.0
        return (n - 1) / n * nbytes / self._slowest_link()

    allgather_time = broadcast_time

    # -- data ---------------------------------------------------------------
    def allreduce_mean(
        self, buffers: dict[int, np.ndarray], out: np.ndarray | None = None
    ) -> np.ndarray:
        """Average buffers across ranks (gradient synchronization).

        The reduction order is fixed (ascending rank) so results are
        bit-deterministic — required for logging-based replay to be exact.
        ``out`` (the fused flat-buffer path) receives the result in place,
        avoiding a fresh allocation per reduce; it must not alias any
        buffer other than the lowest rank's.
        """
        self._check_alive()
        self._check_participants(buffers)
        total = self._reduce(buffers, out)
        if out is None:
            return total / len(buffers)
        total /= len(buffers)
        return total

    def allreduce_sum(
        self, buffers: dict[int, np.ndarray], out: np.ndarray | None = None
    ) -> np.ndarray:
        self._check_alive()
        self._check_participants(buffers)
        return self._reduce(buffers, out)

    def _reduce(
        self, buffers: dict[int, np.ndarray], out: np.ndarray | None
    ) -> np.ndarray:
        ranks = sorted(buffers)
        if out is None:
            total = np.array(buffers[ranks[0]], dtype=np.float64, copy=True)
        else:
            total = out
            np.copyto(total, buffers[ranks[0]])
        for r in ranks[1:]:
            total += buffers[r]
        return total

    def broadcast(self, root: int, value: np.ndarray) -> dict[int, np.ndarray]:
        """Copy ``value`` from root to every rank (replica restoration)."""
        self._check_alive()
        if root not in self.devices:
            raise CommunicationError(root, root, f"root {root} not in group")
        return {rank: np.array(value, copy=True) for rank in self.devices}
