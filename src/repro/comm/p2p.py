"""Point-to-point communication with sender-side logging taps.

Pipeline parallelism moves activations forward and gradients backward with
point-to-point messages (paper Section 2.1).  Swift's logging hooks in at
the *sender* — "the sender rather than the receiver logs the message", the
upstream-backup idea of Section 5.1 — so the transport exposes *taps*:
callbacks invoked on every send with full message metadata, which the
tensor log uses to capture inter-machine traffic.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.device import Device
from repro.cluster.topology import Cluster
from repro.errors import CommunicationError
from repro.utils.pool import BufferPool, PooledBuffer

__all__ = ["Message", "Transport"]


@dataclass(frozen=True)
class Message:
    """One point-to-point message with the metadata Swift logs.

    The (iteration, microbatch, phase) triple is the paper's "timestamp ...
    used to determine the order of the data to replay" (Section 5.1).
    """

    src_rank: int
    dst_rank: int
    tensor: np.ndarray
    iteration: int
    microbatch: int
    phase: str  # "fwd" (activation) or "bwd" (gradient)
    seq: int = 0
    meta: dict = field(default_factory=dict, compare=False)
    #: arena buffer backing :attr:`tensor` when the transport pools sends;
    #: the tensor log shares (retains) it instead of copying again
    buffer: PooledBuffer | None = field(
        default=None, compare=False, repr=False
    )

    @property
    def nbytes(self) -> int:
        return int(self.tensor.nbytes)


class Transport:
    """Synchronous channel-based transport over the simulated cluster.

    Sends are charged at link bandwidth by the caller's timing model (the
    transport itself reports the transfer cost so engines can place it on
    per-stage timelines).  Any operation touching a dead machine raises
    :class:`CommunicationError`, which is how failures are *detected*.
    """

    def __init__(self, cluster: Cluster, devices: dict[int, Device],
                 pool: BufferPool | None = None):
        self.cluster = cluster
        self.devices = dict(devices)
        #: optional buffer arena: sends copy once into pooled read-only
        #: storage shared with the tensor log, instead of two fresh clones
        self.pool = pool
        self._channels: dict[tuple[int, int], deque[Message]] = {}
        self._taps: list[Callable[[Message, Device, Device], None]] = []
        self._seq = 0

    # -- taps ---------------------------------------------------------------
    def add_tap(self, tap: Callable[[Message, Device, Device], None]) -> None:
        """Register a callback fired on every successful send."""
        self._taps.append(tap)

    def remove_tap(self, tap: Callable[[Message, Device, Device], None]) -> None:
        self._taps.remove(tap)

    # -- liveness -----------------------------------------------------------
    def rebind(self, rank: int, device: Device) -> None:
        """Point a rank at a (replacement) device."""
        self.devices[rank] = device

    def _check(self, src: int, dst: int) -> tuple[Device, Device]:
        try:
            src_dev = self.devices[src]
            dst_dev = self.devices[dst]
        except KeyError as exc:
            raise CommunicationError(src, dst, f"unknown rank {exc}") from None
        if not src_dev.alive or not dst_dev.alive:
            raise CommunicationError(src, dst)
        return src_dev, dst_dev

    # -- messaging -----------------------------------------------------------
    def send(
        self,
        src: int,
        dst: int,
        tensor: np.ndarray,
        iteration: int,
        microbatch: int,
        phase: str,
        **meta: object,
    ) -> float:
        """Enqueue a message; returns the simulated transfer time.

        The tensor is copied so the sender may keep mutating its buffers —
        the same reason Swift's logger snapshots outgoing tensors.  With a
        pool attached, that is the *only* copy on the send+log path: the
        message carries a read-only pooled view that the log tap shares.
        """
        src_dev, dst_dev = self._check(src, dst)
        self._seq += 1
        if self.pool is not None:
            buf = self.pool.capture(tensor)
            payload = buf.array
        else:
            buf = None
            payload = np.array(tensor, copy=True)
        msg = Message(
            src_rank=src,
            dst_rank=dst,
            tensor=payload,
            iteration=iteration,
            microbatch=microbatch,
            phase=phase,
            seq=self._seq,
            meta=dict(meta),
            buffer=buf,
        )
        for tap in self._taps:
            tap(msg, src_dev, dst_dev)
        self._channels.setdefault((src, dst), deque()).append(msg)
        return self.cluster.transfer_time(msg.nbytes, src_dev, dst_dev)

    def recv(self, dst: int, src: int) -> Message:
        """Pop the oldest message on the (src → dst) channel."""
        self._check(src, dst)
        channel = self._channels.get((src, dst))
        if not channel:
            raise CommunicationError(
                src, dst, f"recv on empty channel {src} -> {dst}"
            )
        msg = channel.popleft()
        if msg.buffer is not None:
            # the receiver may keep aliasing the view, so the storage goes
            # through the pool's quarantine generation before reuse
            msg.buffer.seen_by_consumer = True
            msg.buffer.release()
        return msg

    def recv_matching(self, dst: int, src: int, phase: str) -> Message:
        """Pop the oldest (src → dst) message of the given phase.

        Interleaved pipeline schedules multiplex activations ("fwd") and
        gradients ("bwd") over the same directed stage pair, so the
        receiver selects by phase; within one phase the channel stays
        FIFO (which the static schedule verifier enforces).
        """
        self._check(src, dst)
        channel = self._channels.get((src, dst))
        if channel:
            for i, msg in enumerate(channel):
                if msg.phase == phase:
                    del channel[i]
                    if msg.buffer is not None:
                        msg.buffer.seen_by_consumer = True
                        msg.buffer.release()
                    return msg
        raise CommunicationError(
            src, dst, f"recv on channel {src} -> {dst}: no {phase!r} message"
        )

    def pending(self, src: int, dst: int) -> int:
        return len(self._channels.get((src, dst), ()))

    def drop_all(self) -> int:
        """Discard every in-flight message (a failed iteration is aborted
        wholesale — its partial traffic must not leak into the re-run)."""
        dropped = 0
        for channel in self._channels.values():
            for msg in channel:
                if msg.buffer is not None:
                    msg.buffer.release()  # undelivered: safe to recycle
            dropped += len(channel)
        self._channels.clear()
        return dropped

    def drop_channels_touching(self, ranks: set[int]) -> int:
        """Discard in-flight messages to/from failed ranks; returns count.

        In-flight data on a crashed machine is gone; data *to* it will be
        regenerated by replay, so both directions are dropped on failure.
        """
        dropped = 0
        for key in list(self._channels):
            if key[0] in ranks or key[1] in ranks:
                for msg in self._channels[key]:
                    if msg.buffer is not None:
                        msg.buffer.release()
                dropped += len(self._channels[key])
                del self._channels[key]
        return dropped
