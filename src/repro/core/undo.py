"""Update-undo: resolving crash-consistency without snapshots (Section 4).

When a machine crashes during a wait-free model update, surviving workers
are caught with *some* parameters updated and others not (Figure 4).
Because the optimizers are invertible (:mod:`repro.optim`), the survivors
simply undo the updates they already applied, returning every worker to
the same consistent version — no snapshot, no barrier, zero failure-free
overhead.

Two flavours match the two parallelism modes:

* **Data parallelism** — each worker undoes its own marked parameters
  (Figure 5: worker 2 undoes layer N-1's update).
* **Pipeline parallelism** — stages update at different times, so workers
  first exchange iteration counters to find the *consensus pre-failure
  iteration*; stages ahead of it undo their whole update (Section 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.parallel.data_parallel import DataParallelEngine
from repro.parallel.pipeline import PipelineEngine

__all__ = ["UndoReport", "resolve_dp_consistency", "resolve_pipeline_consistency"]


@dataclass
class UndoReport:
    """What update-undo had to repair."""

    #: consensus iteration every worker was rolled back to
    consensus_iteration: int
    #: per-worker (rank or stage id) parameter names undone
    undone: dict[int, list[str]] = field(default_factory=dict)

    @property
    def num_undone(self) -> int:
        return sum(len(v) for v in self.undone.values())


def resolve_dp_consistency(engine: DataParallelEngine) -> UndoReport:
    """Undo partial updates on surviving data-parallel workers.

    After this call every live replica holds exactly the iteration-start
    state ``x_t`` (up to floating-point error, per Section 4), restoring
    the replica-consistency invariant.
    """
    report = UndoReport(consensus_iteration=engine.iteration)
    for worker in engine.alive_workers():
        if not worker.updated_params:
            continue
        # undo in reverse update order (order is immaterial mathematically,
        # but reverse mirrors the forward update sequence)
        names = list(reversed(worker.updated_params))
        worker.optimizer.undo(names)
        report.undone[worker.rank] = names
        worker.updated_params = []
    return report


def resolve_pipeline_consistency(engine: PipelineEngine) -> UndoReport:
    """Roll surviving pipeline stages back to the consensus iteration.

    Surviving stages exchange iteration counters; the consensus pre-failure
    iteration is the minimum.  Stages that already advanced past it undo
    their latest update (whole-stage undo — stage updates are atomic at
    stage granularity in 1F1B).
    """
    alive = [s for s in engine.stages if s.alive]
    if not alive:
        return UndoReport(consensus_iteration=engine.iteration)
    consensus = min(s.iteration for s in alive)
    report = UndoReport(consensus_iteration=consensus)
    for stage in alive:
        while stage.iteration > consensus:
            names = list(stage.optimizer.params)
            stage.undo()
            report.undone.setdefault(stage.stage_id, []).extend(names)
    return report
