"""Selective logging: grouping machines under a storage budget (§5.3).

Logging every cross-machine message can consume large storage.  Swift
groups machines and logs only *inter-group* traffic; if any machine in a
group fails, the whole group rolls back and replays — so coarser groups
trade longer recovery for less storage.

Given per-machine per-iteration compute times ``R(G_i)``, adjacent-boundary
transmission sizes ``M(G_i, G_{i+1})``, checkpoint interval ``T`` and
network bandwidth ``B``, the planner greedily merges the adjacent pair
minimizing ``ΔR/ΔM`` (recovery-time increase per unit of storage saved)
until total storage ``M(G) = T · Σ boundary sizes`` fits the budget.  This
reproduces Tables 6 and 7 and the Figure 10 trade-off curves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.tlog import GroupingPlan
from repro.errors import ConfigurationError

__all__ = ["PipelineProfile", "PlanResult", "SelectiveLoggingPlanner"]


@dataclass(frozen=True)
class PipelineProfile:
    """Profiled inputs of the grouping algorithm.

    ``compute_times[i]`` — averaged per-iteration computation time of
    machine ``i``'s stages (the paper profiles 5 iterations and averages).
    ``boundary_bytes[i]`` — per-iteration transmission size between
    machines ``i`` and ``i+1`` (computable from the model configuration).
    """

    compute_times: tuple[float, ...]
    boundary_bytes: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.boundary_bytes) != len(self.compute_times) - 1:
            raise ConfigurationError(
                "need exactly N-1 boundary sizes for N machines"
            )
        if len(self.compute_times) < 1:
            raise ConfigurationError("profile needs at least one machine")

    @property
    def num_machines(self) -> int:
        return len(self.compute_times)


@dataclass
class PlanResult:
    """Outcome of the planner: grouping plus its predicted costs."""

    plan: GroupingPlan
    #: expected per-iteration recovery time E[R] under uniform failures
    expected_recovery_time: float
    #: total log storage M(G) = T * sum of inter-group boundary bytes
    storage_bytes: float
    #: per-group recovery times R(G_i)
    group_recovery_times: list[float] = field(default_factory=list)


class SelectiveLoggingPlanner:
    """Greedy ΔR/ΔM group merging under a storage cap (§5.3).

    Merging adjacent machines into one logging group stops their
    boundary traffic from being logged — saving storage at the price of
    a larger joint-recovery span.  The planner merges greedily by
    recovery-cost-per-byte until the log fits the budget.

    >>> planner = SelectiveLoggingPlanner(
    ...     PipelineProfile(compute_times=(0.2, 0.2, 0.2, 0.2),
    ...                     boundary_bytes=(1e9, 1e9, 1e9)),
    ...     checkpoint_interval=100, network_bandwidth=5e9)
    >>> unlimited = planner.plan(max_storage_bytes=1e12)
    >>> unlimited.plan.num_groups      # budget never binds: no merges
    4
    >>> tight = planner.plan(max_storage_bytes=250e9)
    >>> tight.plan.num_groups < 4      # merged until the log fits
    True
    """

    def __init__(
        self,
        profile: PipelineProfile,
        checkpoint_interval: int,
        network_bandwidth: float,
        parallel_recovery: bool = False,
    ):
        if checkpoint_interval < 1:
            raise ConfigurationError("checkpoint_interval must be >= 1")
        if network_bandwidth <= 0:
            raise ConfigurationError("network bandwidth must be positive")
        self.profile = profile
        self.T = int(checkpoint_interval)
        self.B = float(network_bandwidth)
        self.parallel_recovery = parallel_recovery

    # -- cost primitives (paper §5.3) ------------------------------------
    def _group_time(self, groups: list[list[int]], gi: int,
                    times: list[float]) -> float:
        """R(G_i), divided by ⌊N/|G_i|⌋ when parallel recovery is on."""
        r = times[gi]
        if self.parallel_recovery:
            n = self.profile.num_machines
            d = max(1, n // len(groups[gi]))
            r = r / d
        return r

    def _expected_recovery(self, groups: list[list[int]],
                           times: list[float]) -> float:
        """E[R] = Σ (|G_i|/N) · R(G_i): each machine equally likely to fail."""
        n = self.profile.num_machines
        return sum(
            len(g) / n * self._group_time(groups, gi, times)
            for gi, g in enumerate(groups)
        )

    def _boundary_bytes(self, groups: list[list[int]], gi: int) -> float:
        """M(G_i, G_{i+1}): traffic across the boundary after group gi."""
        last_machine = groups[gi][-1]
        return float(self.profile.boundary_bytes[last_machine])

    def _storage(self, groups: list[list[int]]) -> float:
        return self.T * sum(
            self._boundary_bytes(groups, gi) for gi in range(len(groups) - 1)
        )

    # -- the greedy merge ---------------------------------------------------
    def plan(self, max_storage_bytes: float) -> PlanResult:
        """Merge adjacent groups until storage fits ``max_storage_bytes``.

        Runs at most N-1 merges (all machines in one group means no logging
        and zero storage), so overall O(N²).
        """
        n = self.profile.num_machines
        groups: list[list[int]] = [[i] for i in range(n)]
        times: list[float] = list(self.profile.compute_times)

        while self._storage(groups) > max_storage_bytes and len(groups) > 1:
            best_idx, best_ratio = None, None
            for gi in range(len(groups) - 1):
                merged_r = (
                    times[gi]
                    + times[gi + 1]
                    + self._boundary_bytes(groups, gi) / self.B
                )
                # ΔR under the uniform-failure expectation (always > 0)
                if self.parallel_recovery:
                    merged_size = len(groups[gi]) + len(groups[gi + 1])
                    d_merged = max(1, n // merged_size)
                    dr = merged_size / n * merged_r / d_merged
                    dr -= len(groups[gi]) / n * self._group_time(groups, gi, times)
                    dr -= len(groups[gi + 1]) / n * self._group_time(
                        groups, gi + 1, times
                    )
                else:
                    dr = (
                        merged_r * (len(groups[gi]) + len(groups[gi + 1])) / n
                        - times[gi] * len(groups[gi]) / n
                        - times[gi + 1] * len(groups[gi + 1]) / n
                    )
                dm = self._boundary_bytes(groups, gi) * self.T
                if dm <= 0:
                    continue
                ratio = dr / dm
                if best_ratio is None or ratio < best_ratio:
                    best_idx, best_ratio = gi, ratio
            if best_idx is None:
                break
            gi = best_idx
            times[gi] = (
                times[gi] + times[gi + 1] + self._boundary_bytes(groups, gi) / self.B
            )
            groups[gi] = groups[gi] + groups[gi + 1]
            del groups[gi + 1]
            del times[gi + 1]

        plan = GroupingPlan.of(groups)
        group_times = [
            self._group_time(groups, gi, times) for gi in range(len(groups))
        ]
        return PlanResult(
            plan=plan,
            expected_recovery_time=self._expected_recovery(groups, times),
            storage_bytes=self._storage(groups),
            group_recovery_times=group_times,
        )

    def sweep(self, storage_limits: list[float]) -> list[PlanResult]:
        """Plan for each storage limit (the Figure 10 curve generator)."""
        return [self.plan(limit) for limit in storage_limits]
