"""Pluggable fault-tolerance recovery policies (registry behind the trainer).

The paper's Section 3 decision chain names three built-in mechanisms —
replication-based recovery, logging-based recovery (including its
parallel-replay variant, Section 5.2), and global checkpoint-restart —
but the trainer used to hard-wire them with ``isinstance``/string
dispatch.  This module turns each mechanism into a :class:`RecoveryPolicy`
registered under its :class:`~repro.core.strategy.FTStrategy` name, so

* the trainer looks recovery machinery up instead of constructing it
  inline, and
* future strategies (e.g. erasure-coded state, remote-memory logging)
  plug in via :func:`register_recovery_policy` without touching
  ``SwiftTrainer``.

A policy owns the *whole* wiring of its mechanism: the logging policy,
for example, attaches the tensor log to the pipeline transport, installs
the overhead hook, and registers log GC with the checkpoint manager —
side effects that previously lived in the trainer's constructor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.cluster.clock import SimClock
from repro.cluster.topology import Cluster
from repro.core.checkpoint import CheckpointManager
from repro.core.detector import FailureDetector
from repro.core.strategy import FTStrategy
from repro.core.tlog import GroupingPlan, LoggingMode, TensorLog
from repro.errors import ConfigurationError
from repro.parallel.data_parallel import DataParallelEngine
from repro.parallel.pipeline import PipelineEngine
from repro.utils.pool import BufferPool

__all__ = [
    "PolicyContext",
    "RecoveryBundle",
    "RecoveryPolicy",
    "register_recovery_policy",
    "get_recovery_policy",
    "recovery_policy_names",
    "resolve_strategy",
]


@dataclass
class PolicyContext:
    """Everything a policy may need to assemble its recovery machinery."""

    engine: object
    config: object  # TrainerConfig (kept loose to avoid an import cycle)
    clock: SimClock
    cluster: Cluster
    checkpoints: CheckpointManager
    detector: FailureDetector
    grouping: GroupingPlan | None = None
    logging_mode: LoggingMode = LoggingMode.BUBBLE


@dataclass
class RecoveryBundle:
    """What a policy hands back to the trainer."""

    recovery: object
    #: tensor log, when the mechanism taps pipeline messages
    tlog: TensorLog | None = None
    #: shared message-buffer arena, when pooled messaging is active
    pool: BufferPool | None = None


@runtime_checkable
class RecoveryPolicy(Protocol):
    """One fault-tolerance mechanism, pluggable into :class:`SwiftTrainer`.

    Implement ``name``/``compatible``/``describe_requirements``/``build``
    and register via :func:`register_recovery_policy`; the strategy name
    then works everywhere an :class:`FTStrategy` value does.

    >>> policy = get_recovery_policy("replication")
    >>> isinstance(policy, RecoveryPolicy)
    True
    >>> policy.describe_requirements()
    'a data-parallel engine (full replicas on >= 2 machines)'
    """

    #: registry key; must equal an :class:`FTStrategy` value for the
    #: built-ins, free-form for extensions
    name: str

    def compatible(self, engine: object) -> bool:
        """Can this mechanism protect the given engine?"""
        ...

    def describe_requirements(self) -> str:
        """Human-readable engine requirement (for error messages)."""
        ...

    def build(self, ctx: PolicyContext) -> RecoveryBundle:
        """Assemble the recovery object (and any taps/hooks) for ``ctx``."""
        ...


class ReplicationPolicy:
    """Replication-based recovery: survivors re-seed replacements (§4)."""

    name = FTStrategy.REPLICATION.value

    def compatible(self, engine: object) -> bool:
        return isinstance(engine, DataParallelEngine)

    def describe_requirements(self) -> str:
        return "a data-parallel engine (full replicas on >= 2 machines)"

    def build(self, ctx: PolicyContext) -> RecoveryBundle:
        from repro.core.replication import ReplicationRecovery

        return RecoveryBundle(
            recovery=ReplicationRecovery(
                ctx.engine,
                ctx.detector,
                ctx.clock,
                replacement_join_time=ctx.config.replacement_join_time,
            )
        )


class LoggingPolicy:
    """Logging-based recovery with optional parallel replay (§5, §5.2).

    ``config.parallel_recovery_degree > 1`` selects the parallel-replay
    variant; the mechanism (sender-side tensor log, checkpoint-scoped GC,
    bubble-hidden spills) is identical.
    """

    name = FTStrategy.LOGGING.value

    def compatible(self, engine: object) -> bool:
        return isinstance(engine, PipelineEngine)

    def describe_requirements(self) -> str:
        return "a pipeline-parallel engine (loggable stage boundaries)"

    def build(self, ctx: PolicyContext) -> RecoveryBundle:
        from repro.core.replay import LoggingRecovery

        engine = ctx.engine
        pool = BufferPool() if ctx.config.pooled_messaging else None
        if pool is not None:
            engine.transport.pool = pool
        tlog = TensorLog(ctx.cluster, ctx.grouping, mode=ctx.logging_mode)
        tlog.pool = pool
        tlog.attach(engine.transport)
        engine.overhead_hooks.append(tlog.make_overhead_hook())
        ctx.checkpoints.post_checkpoint_hooks.append(tlog.gc)
        return RecoveryBundle(
            recovery=LoggingRecovery(
                engine,
                tlog,
                ctx.checkpoints,
                ctx.detector,
                ctx.clock,
                parallel_degree=ctx.config.parallel_recovery_degree,
                replacement_join_time=ctx.config.replacement_join_time,
            ),
            tlog=tlog,
            pool=pool,
        )


class CheckpointOnlyPolicy:
    """Global checkpoint-restart, the Section 3 fallback baseline."""

    name = FTStrategy.CHECKPOINT_ONLY.value

    def compatible(self, engine: object) -> bool:
        return isinstance(engine, (DataParallelEngine, PipelineEngine))

    def describe_requirements(self) -> str:
        return "any checkpointable engine"

    def build(self, ctx: PolicyContext) -> RecoveryBundle:
        from repro.core.global_restart import GlobalCheckpointRecovery

        return RecoveryBundle(
            recovery=GlobalCheckpointRecovery(
                ctx.engine,
                ctx.checkpoints,
                ctx.detector,
                ctx.clock,
                replacement_join_time=ctx.config.replacement_join_time,
            )
        )


_REGISTRY: dict[str, RecoveryPolicy] = {}


def register_recovery_policy(
    policy: RecoveryPolicy, *, replace: bool = False
) -> RecoveryPolicy:
    """Register a policy under ``policy.name``; returns it for chaining.

    >>> class NullPolicy:
    ...     name = "docs_null"
    ...     def compatible(self, engine): return True
    ...     def describe_requirements(self): return "anything"
    ...     def build(self, ctx): raise NotImplementedError
    >>> _ = register_recovery_policy(NullPolicy(), replace=True)
    >>> "docs_null" in recovery_policy_names()
    True
    """
    if not replace and policy.name in _REGISTRY:
        raise ConfigurationError(
            f"recovery policy {policy.name!r} already registered"
        )
    _REGISTRY[policy.name] = policy
    return policy


def get_recovery_policy(name: str | FTStrategy) -> RecoveryPolicy:
    """Look up a registered policy by strategy name or enum member.

    >>> get_recovery_policy(FTStrategy.LOGGING).name
    'logging'
    """
    key = name.value if isinstance(name, FTStrategy) else name
    try:
        return _REGISTRY[key]
    except KeyError:
        raise ConfigurationError(
            f"unknown recovery policy {key!r}; registered: "
            f"{sorted(_REGISTRY)}"
        ) from None


def recovery_policy_names() -> list[str]:
    """Sorted names of every registered recovery policy.

    >>> {"replication", "logging", "checkpoint_only"} \
<= set(recovery_policy_names())
    True
    """
    return sorted(_REGISTRY)


def resolve_strategy(
    requested: str | FTStrategy, engine: object
) -> FTStrategy | str:
    """Normalize a requested strategy against the engine (build time).

    ``"auto"`` applies the engine-default arm of the Section 3 chain
    (replication for data parallelism, logging for pipelines); explicit
    names are validated against the engine so a mismatch fails with a
    clear :class:`ConfigurationError` instead of mis-wiring recovery.
    """
    if isinstance(requested, FTStrategy):
        requested = requested.value
    if requested == "auto":
        if isinstance(engine, PipelineEngine):
            return FTStrategy.LOGGING
        if isinstance(engine, DataParallelEngine):
            return FTStrategy.REPLICATION
        raise ConfigurationError(
            f"no auto strategy for engine {type(engine).__name__}; "
            "pass an explicit strategy"
        )
    try:
        strategy = FTStrategy(requested)
    except ValueError:
        # a custom-registered policy outside the paper's three mechanisms
        strategy = requested
    policy = get_recovery_policy(strategy)
    if not policy.compatible(engine):
        name = (
            strategy.value if isinstance(strategy, FTStrategy) else strategy
        )
        raise ConfigurationError(
            f"strategy {name!r} requires "
            f"{policy.describe_requirements()}, "
            f"got {type(engine).__name__}"
        )
    return strategy


register_recovery_policy(ReplicationPolicy())
register_recovery_policy(LoggingPolicy())
register_recovery_policy(CheckpointOnlyPolicy())
