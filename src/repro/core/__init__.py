"""Swift's core contribution: update-undo, replication & logging recovery,
selective logging, strategy selection, and the orchestration trainer."""

from repro.core.checkpoint import (
    CheckpointDelta,
    CheckpointManager,
    SnapshotCost,
    SnapshotManager,
    checkfreq_interval,
)
from repro.core.detector import DetectionReport, FailureDetector
from repro.core.elastic import ElasticCoordinator, ResizeEvent
from repro.core.policies import (
    PolicyContext,
    RecoveryBundle,
    RecoveryPolicy,
    get_recovery_policy,
    recovery_policy_names,
    register_recovery_policy,
    resolve_strategy,
)
from repro.core.global_restart import GlobalCheckpointRecovery
from repro.core.replay import LoggingRecovery, ReplaySpec
from repro.core.replication import RecoveryReport, ReplicationRecovery
from repro.core.sharded_recovery import ShardedReplicationRecovery
from repro.core.selective import (
    PipelineProfile,
    PlanResult,
    SelectiveLoggingPlanner,
)
from repro.core.strategy import (
    FTStrategy,
    LoggingFeasibility,
    choose_strategy,
    logging_worth_it,
    transformer_message_bytes,
)
from repro.core.tlog import GroupingPlan, LoggingMode, LogRecord, TensorLog
from repro.core.trainer import SwiftTrainer, TrainerConfig, TrainingTrace
from repro.core.undo import (
    UndoReport,
    resolve_dp_consistency,
    resolve_pipeline_consistency,
)

__all__ = [
    "UndoReport",
    "resolve_dp_consistency",
    "resolve_pipeline_consistency",
    "FailureDetector",
    "DetectionReport",
    "CheckpointDelta",
    "CheckpointManager",
    "SnapshotManager",
    "SnapshotCost",
    "checkfreq_interval",
    "TensorLog",
    "LogRecord",
    "GroupingPlan",
    "LoggingMode",
    "LoggingRecovery",
    "ReplaySpec",
    "ReplicationRecovery",
    "RecoveryReport",
    "ShardedReplicationRecovery",
    "GlobalCheckpointRecovery",
    "ElasticCoordinator",
    "ResizeEvent",
    "SelectiveLoggingPlanner",
    "PipelineProfile",
    "PlanResult",
    "FTStrategy",
    "choose_strategy",
    "logging_worth_it",
    "LoggingFeasibility",
    "transformer_message_bytes",
    "SwiftTrainer",
    "TrainerConfig",
    "TrainingTrace",
    "PolicyContext",
    "RecoveryBundle",
    "RecoveryPolicy",
    "register_recovery_policy",
    "get_recovery_policy",
    "recovery_policy_names",
    "resolve_strategy",
]
