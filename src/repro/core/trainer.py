"""SwiftTrainer: the user-facing orchestration loop (paper Section 6 Usage).

"A user only needs to provide a user-defined function (UDF) to train for
one iteration and specify fault tolerance and training configurations.
Then fault tolerance is in place ... and recovery upon a failure can be
automatically run without requiring user involvement."

Here the "UDF" is the engine's ``run_iteration`` and the trainer supplies
everything else: periodic global checkpointing (with log garbage
collection), failure-schedule consumption, recovery dispatch, and a
training trace that the benchmark harness turns into the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

import numpy as np

from repro.cluster.clock import SimClock
from repro.cluster.failures import FailureEvent, FailurePhase, FailureSchedule
from repro.core.checkpoint import CheckpointManager, SnapshotManager
from repro.core.detector import FailureDetector
from repro.core.policies import (
    PolicyContext,
    get_recovery_policy,
    recovery_policy_names,
    resolve_strategy,
)
from repro.core.replication import RecoveryReport
from repro.core.strategy import FTStrategy
from repro.core.tlog import GroupingPlan, LoggingMode
from repro.errors import ConfigurationError, RecoveryError
from repro.obs import NULL_RECORDER, Recorder, record_recovery_phases
from repro.parallel.data_parallel import DataParallelEngine
from repro.parallel.pipeline import PipelineEngine
from repro.parallel.results import IterationResult

__all__ = ["TrainerConfig", "TrainingTrace", "SwiftTrainer"]


@dataclass
class TrainerConfig:
    """Fault-tolerance configuration for a training run.

    >>> TrainerConfig(checkpoint_interval=25, strategy="logging").strategy
    'logging'
    >>> TrainerConfig(strategy="teleportation")  # doctest: +ELLIPSIS
    Traceback (most recent call last):
        ...
    repro.errors.ConfigurationError: unknown strategy 'teleportation'; ...
    """

    #: global checkpoint every N iterations (the catastrophic-failure net)
    checkpoint_interval: int = 100
    #: checkpoint at iteration 0 too (before any training)
    checkpoint_at_start: bool = True
    #: workers assisting each failed worker during logging replay (§5.2)
    parallel_recovery_degree: int = 1
    #: replacement-machine provisioning time, seconds
    replacement_join_time: float = 5.0
    #: "auto" picks Swift's mechanism per the engine (replication for DP,
    #: logging for PP, the Section 3 chain); any :class:`FTStrategy` value
    #: — "replication", "logging", "checkpoint_only" — may be named
    #: explicitly and is validated against the engine when the trainer is
    #: built (a mismatch raises :class:`ConfigurationError`)
    strategy: str = "auto"
    #: persist only the leaves the optimizers report dirty since the last
    #: checkpoint (delta checkpoints); every ``incremental_full_every``-th
    #: save per shard writes a full base to bound delta chains
    incremental_checkpoints: bool = False
    incremental_full_every: int = 8
    #: pool message buffers so the send+log path performs one copy into a
    #: recycled arena instead of two fresh allocations (pipeline engines)
    pooled_messaging: bool = True
    #: take a fresh global checkpoint right after every logging recovery,
    #: re-baselining the tensor log: records that lived only on the
    #: crashed machine are unrecoverable, so a *later* failure in the same
    #: checkpoint window must not need them.  Required for multi-failure
    #: scenario runs (repro.chaos); the fleet layer does the same per job.
    checkpoint_after_recovery: bool = False

    def __post_init__(self) -> None:
        if self.checkpoint_interval < 1:
            raise ConfigurationError("checkpoint_interval must be >= 1")
        if self.parallel_recovery_degree < 1:
            raise ConfigurationError("parallel_recovery_degree must be >= 1")
        if isinstance(self.strategy, FTStrategy):
            self.strategy = self.strategy.value
        if self.strategy != "auto" and self.strategy not in recovery_policy_names():
            raise ConfigurationError(
                f"unknown strategy {self.strategy!r}; expected 'auto' or "
                f"one of {recovery_policy_names()}"
            )
        if self.incremental_full_every < 1:
            raise ConfigurationError("incremental_full_every must be >= 1")


@dataclass
class TrainingTrace:
    """Everything a benchmark needs to redraw the paper's plots.

    >>> trace = TrainingTrace(losses=[0.5, 0.4], iteration_times=[0.1, 0.1],
    ...                       iteration_numbers=[0, 1], wall_times=[0.1, 0.2])
    >>> trace.goodput(samples_per_iteration=16)
    160.0
    >>> trace.recovery_time_total
    0
    """

    losses: list[float] = field(default_factory=list)
    iteration_times: list[float] = field(default_factory=list)
    iteration_numbers: list[int] = field(default_factory=list)
    checkpoints: list[tuple[int, float]] = field(default_factory=list)
    recoveries: list[RecoveryReport] = field(default_factory=list)
    #: simulated wall-clock at the end of each completed iteration
    wall_times: list[float] = field(default_factory=list)

    def throughput(self, samples_per_iteration: int) -> list[float]:
        """Per-iteration throughput series (samples / simulated second)."""
        return [
            samples_per_iteration / t if t > 0 else 0.0
            for t in self.iteration_times
        ]

    @property
    def total_time(self) -> float:
        return self.wall_times[-1] if self.wall_times else 0.0

    @property
    def recovery_time_total(self) -> float:
        """Simulated seconds spent inside recovery paths (detection +
        replacement init + undo + restore, summed over all recoveries)."""
        return sum(r.total_time for r in self.recoveries)

    def goodput(self, samples_per_iteration: int) -> float:
        """Useful samples per simulated second over the whole run.

        Unlike :meth:`throughput` this includes every stall — checkpoints,
        detection, and recovery — so it is the number benchmarks should
        report instead of recomputing ``iterations * batch / total_time``
        ad hoc.  Useful work is the *span* of completed iterations:
        iterations recomputed after a checkpoint rollback count once
        (redone work is exactly what goodput must not credit), and an
        iteration completed *through* recovery replay rather than a
        successful step (a mid-update pipeline crash resolves forward)
        still counts, even though no loss row was recorded for it.
        """
        if self.total_time <= 0 or not self.iteration_numbers:
            return 0.0
        useful = max(self.iteration_numbers) - min(self.iteration_numbers) + 1
        return useful * samples_per_iteration / self.total_time


class SwiftTrainer:
    """Drives an engine to completion through checkpoints and failures.

    >>> from repro.api import (ClusterSpec, Experiment, ModelSpec,
    ...                        ParallelismSpec)
    >>> session = Experiment(
    ...     model=ModelSpec(family="mlp", dim=4, hidden_dim=8, seed=0),
    ...     cluster=ClusterSpec(num_machines=2, devices_per_machine=1),
    ...     parallelism=ParallelismSpec(kind="dp", num_workers=2),
    ... ).build()
    >>> trainer = session.trainer          # a wired SwiftTrainer
    >>> trace = trainer.train(2)
    >>> (len(trace.losses), trainer.strategy.value)
    (2, 'replication')
    """

    def __init__(
        self,
        engine: DataParallelEngine | PipelineEngine,
        config: TrainerConfig,
        clock: SimClock | None = None,
        grouping: GroupingPlan | None = None,
        logging_mode: LoggingMode = LoggingMode.BUBBLE,
        snapshots: SnapshotManager | None = None,
        snapshot_interval: int | None = None,
        checkpoint_prefix: str = "ckpt",
        recorder: Recorder | None = None,
    ):
        self.engine = engine
        self.config = config
        self.clock = clock or engine.clock
        self.cluster = engine.cluster
        #: instrumentation sink; the default NULL_RECORDER records nothing
        #: and keeps every path bitwise-identical to an uninstrumented run
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        if self.recorder.enabled and getattr(self.recorder, "clock", None) is None:
            self.recorder.clock = self.clock
        engine.recorder = self.recorder
        #: distinct prefixes let several jobs share one global store
        #: without clobbering each other's checkpoints (repro.jobs)
        self.checkpoints = CheckpointManager(
            self.cluster, self.clock, key_prefix=checkpoint_prefix,
            incremental=config.incremental_checkpoints,
            full_every=config.incremental_full_every,
        )
        self.detector = FailureDetector(self.cluster.kvstore, self.clock)
        #: optional CheckFreq/Elastic-Horovod style snapshotting baseline
        self.snapshots = snapshots
        self.snapshot_interval = snapshot_interval

        self.is_pipeline = isinstance(engine, PipelineEngine)
        #: the mechanism actually protecting this run (strategy vocabulary
        #: is unified on :class:`FTStrategy`; "auto" resolves here)
        self.strategy: FTStrategy = resolve_strategy(config.strategy, engine)
        policy = get_recovery_policy(self.strategy)
        bundle = policy.build(PolicyContext(
            engine=engine,
            config=config,
            clock=self.clock,
            cluster=self.cluster,
            checkpoints=self.checkpoints,
            detector=self.detector,
            grouping=grouping,
            logging_mode=logging_mode,
        ))
        self.recovery = bundle.recovery
        self.tlog = bundle.tlog
        self.pool = bundle.pool

        #: running trace; persists across step()/train() calls so a cluster
        #: scheduler can interleave this trainer with other jobs
        self.trace = TrainingTrace()
        self.max_recoveries = 16
        self._recoveries = 0

    # -- checkpoint plumbing --------------------------------------------------
    def _engine_states(self) -> dict[int, dict[str, np.ndarray]]:
        if self.is_pipeline:
            return self.engine.full_state()
        return {w.rank: w.full_state() for w in self.engine.workers if w.alive}

    def _engine_shards(self) -> list:
        """Live shard objects (workers or stages) in checkpoint-shard order."""
        if self.is_pipeline:
            return list(self.engine.stages)
        return [w for w in self.engine.workers if w.alive]

    def take_checkpoint(self) -> float:
        """Synchronous global checkpoint of the whole job.

        With incremental checkpoints enabled, the optimizers' dirty-key
        reports select the leaves to persist; the reports are cleared only
        after the save succeeds.
        """
        rec = self.recorder
        dirty = None
        with rec.span("checkpoint/capture", iteration=self.engine.iteration):
            shards = self._engine_shards()
            if self.config.incremental_checkpoints:
                dirty = {
                    (s.stage_id if self.is_pipeline else s.rank):
                        s.dirty_full_state_keys()
                    for s in shards
                }
            states = self._engine_states()
        with rec.span("checkpoint/persist",
                      iteration=self.engine.iteration) as sp:
            stall = self.checkpoints.save_global(
                states,
                self.engine.iteration,
                pipelined=self.is_pipeline,
                dirty=dirty,
            )
            sp.set(stall_s=stall)
        if dirty is not None:
            for s in shards:
                s.clear_dirty()
        rec.count("trainer/checkpoints")
        return stall

    def take_snapshot(self) -> None:
        """CheckFreq/Elastic-Horovod snapshot of every shard (baseline)."""
        assert self.snapshots is not None
        for shard, state in self._engine_states().items():
            if self.is_pipeline:
                device = self.engine.stages[shard].device
                machine = self.engine.stages[shard].machine_id
            else:
                device = self.engine.workers[shard].device
                machine = self.engine.workers[shard].machine_id
            self.snapshots.take(
                shard, machine, state, self.engine.iteration,
                gpu_free_bytes=device.free_bytes(),
            )

    # -- the loop -----------------------------------------------------------------
    def step(self, failures: FailureSchedule | None = None) -> IterationResult:
        """Attempt one iteration: due checkpoints first, recovery on failure.

        This is the cooperative unit a cluster scheduler interleaves: each
        call runs at most one iteration of this job and returns.  A failed
        result means the iteration was interrupted and recovered — the same
        iteration re-runs on the next call (exactly the semantics of the
        ``continue`` in the classic :meth:`train` loop).
        """
        failures = failures or FailureSchedule()
        it = self.engine.iteration
        if (
            self.config.checkpoint_at_start
            and self.checkpoints.latest_iteration is None
        ):
            stall = self.take_checkpoint()
            self.trace.checkpoints.append((it, stall))
        elif (
            it > 0
            and it % self.config.checkpoint_interval == 0
            and self.checkpoints.latest_iteration != it
        ):
            stall = self.take_checkpoint()
            self.trace.checkpoints.append((it, stall))
        if (
            self.snapshots is not None
            and self.snapshot_interval
            and it > 0
            and it % self.snapshot_interval == 0
        ):
            self.take_snapshot()

        rec = self.recorder
        failure = self._due_failure(failures, it)
        with rec.span("trainer/iteration") as sp:
            result: IterationResult = self.engine.run_iteration(failure=failure)
            if result.failed:
                sp.set(iteration=it, failed=True)
            else:
                sp.set(iteration=result.iteration, loss=result.loss)

        if result.failed:
            rec.count("trainer/failures")
            # multiple simultaneous failures: fail the co-scheduled
            # machines before recovery so it handles them jointly
            # (Appendix B)
            for phase in FailurePhase:
                for extra in failures.pop_due(it, phase):
                    self.cluster.fail_machine(extra.machine_id)
            self._recoveries += 1
            if self._recoveries > self.max_recoveries:
                raise RecoveryError("too many recoveries; giving up")
            report = self._recover_instrumented()
            if self.config.checkpoint_after_recovery and self.tlog is not None:
                # close the failure window: the crashed machine's log
                # records are gone, so re-baseline before training resumes
                stall = self.take_checkpoint()
                self.trace.checkpoints.append((self.engine.iteration, stall))
            return result  # the interrupted iteration re-runs next step

        rec.count("trainer/iterations")
        if rec.enabled:
            rec.gauge("trainer/loss", result.loss)
            if self.tlog is not None:
                rec.gauge("tlog/bytes", self.tlog.total_bytes())
        self.trace.losses.append(result.loss)
        self.trace.iteration_times.append(result.sim_time)
        self.trace.iteration_numbers.append(result.iteration)
        self.trace.wall_times.append(self.clock.now)
        return result

    def recover_now(self) -> RecoveryReport:
        """Recover from a failure raised outside :meth:`step`.

        The cluster scheduler uses this to route a shared-cluster machine
        failure into this job's recovery path between iterations (the
        machine is already failed and the KV flag raised).
        """
        self._recoveries += 1
        if self._recoveries > self.max_recoveries:
            raise RecoveryError("too many recoveries; giving up")
        return self._recover_instrumented()

    def _recover_instrumented(self) -> RecoveryReport:
        """Run recovery, record the report and its telemetry decomposition."""
        with self.recorder.span("trainer/recovery") as sp:
            report = self.recovery.recover()
            sp.set(strategy=report.strategy,
                   lost_iterations=report.lost_iterations)
        self.trace.recoveries.append(report)
        self.recorder.count("trainer/recoveries")
        # recovery advanced the sim clock through detect -> rollback ->
        # rejoin -> replay; decompose it into per-phase telemetry spans
        record_recovery_phases(
            self.recorder, report, sim_end=self.clock.now,
            resume_iteration=report.resume_iteration,
        )
        return report

    def train(
        self,
        num_iterations: int,
        failures: FailureSchedule | None = None,
        max_recoveries: int = 16,
    ) -> TrainingTrace:
        """Train to ``num_iterations``, recovering from scheduled failures.

        Returns a trace of *this call* only (the classic API); the
        lifetime trace across all step()/train() calls stays available as
        :attr:`trace`.
        """
        failures = failures or FailureSchedule()
        self.max_recoveries = max_recoveries
        self._recoveries = 0
        start = {
            f.name: len(getattr(self.trace, f.name))
            for f in fields(TrainingTrace)
        }
        while self.engine.iteration < num_iterations:
            self.step(failures)
        return TrainingTrace(**{
            name: getattr(self.trace, name)[first:]
            for name, first in start.items()
        })

    @staticmethod
    def _due_failure(
        failures: FailureSchedule, iteration: int
    ) -> FailureEvent | None:
        for phase in FailurePhase:
            due = failures.pop_due(iteration, phase)
            if due:
                return due[0]
        return None
