"""Checkpointing: global checkpoints and snapshot-based baselines.

Three mechanisms from the paper (Sections 2.2, 7):

* **Global checkpointing** — the PyTorch default: every worker synchronously
  serializes its full state to persistent storage; training stalls for the
  whole write.  In pipeline-parallel training the writes of different
  stages overlap ("checkpointing is pipelined"), so the stall is the max
  per-stage cost rather than the sum.
* **CheckFreq** — two phases: a *snapshot* (copy of the state in GPU memory,
  or CPU memory over PCIe when the GPU cannot hold it) that stalls the next
  update until it completes, then an asynchronous *persist* of the snapshot
  to disk that still interferes with training (Figure 3).
* **Elastic Horovod** — snapshot only (no persist): data-parallel replicas
  make the disk copy unnecessary, but the snapshot stall remains.

The snapshot cost asymmetry — on-GPU copies are cheap, PCIe copies are not —
is precisely the paper's motivation (Section 2.2): a 9.8 GB Wide-ResNet-50
state cannot be snapshotted in a 32 GB GPU that is already 30.4 GB full.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.clock import SimClock
from repro.cluster.topology import Cluster
from repro.errors import CheckpointError
from repro.utils.serialization import clone_state, state_nbytes

__all__ = [
    "CheckpointManager",
    "SnapshotManager",
    "SnapshotCost",
    "checkfreq_interval",
]

#: effective intra-GPU memcpy bandwidth (HBM2), bytes/s
GPU_COPY_BW = 700e9


class CheckpointManager:
    """Writes/reads global checkpoints to the cluster's global store."""

    def __init__(self, cluster: Cluster, clock: SimClock,
                 key_prefix: str = "ckpt"):
        self.cluster = cluster
        self.clock = clock
        self.key_prefix = key_prefix
        self.latest_iteration: int | None = None
        #: callbacks fired after a successful checkpoint (log GC hooks in)
        self.post_checkpoint_hooks: list = []

    def _key(self, iteration: int, shard: int) -> str:
        return f"{self.key_prefix}/{iteration}/{shard}"

    def save_global(
        self,
        states: dict[int, dict[str, np.ndarray]],
        iteration: int,
        pipelined: bool = False,
    ) -> float:
        """Synchronously checkpoint all shards; returns the stall seconds.

        ``pipelined=True`` overlaps shard writes (pipeline-parallel mode):
        the stall is the slowest shard instead of the sum of all shards.
        """
        store = self.cluster.global_store
        times = []
        for shard, state in states.items():
            nbytes = state_nbytes(state)
            t = self.cluster.pcie_time(nbytes)  # GPU -> CPU
            t += store.upload(self._key(iteration, shard), nbytes,
                              clone_state(state))
            times.append(t)
        stall = max(times) if pipelined else sum(times)
        self.latest_iteration = iteration
        self.clock.advance(stall, "global_checkpoint", iteration=iteration)
        for hook in self.post_checkpoint_hooks:
            hook(iteration)
        return stall

    def load(self, shard: int, iteration: int | None = None
             ) -> tuple[dict[str, np.ndarray], float]:
        """Load one shard; returns (state, simulated read seconds)."""
        iteration = self.latest_iteration if iteration is None else iteration
        if iteration is None:
            raise CheckpointError("no checkpoint has been written yet")
        key = self._key(iteration, shard)
        if key not in self.cluster.global_store:
            raise CheckpointError(f"missing checkpoint shard {key!r}")
        blob, t = self.cluster.global_store.download(key)
        t += self.cluster.pcie_time(blob.nbytes)  # CPU -> GPU
        return clone_state(blob.payload), t


@dataclass(frozen=True)
class SnapshotCost:
    """Cost decomposition of one snapshot."""

    #: stall imposed on the next update (Section 2.2's "checkpoint stall")
    stall: float
    #: background persist time (CheckFreq phase 2); 0 for Elastic Horovod
    persist: float
    #: where the snapshot landed
    location: str  # "gpu" or "cpu"


class SnapshotManager:
    """CheckFreq / Elastic-Horovod style snapshotting baseline.

    Keeps the latest snapshot per shard (in simulated GPU or CPU memory of
    the shard's machine); a machine failure loses the snapshots held there,
    but in data parallelism the survivors' snapshots suffice.
    """

    def __init__(
        self,
        cluster: Cluster,
        clock: SimClock,
        mode: str = "checkfreq",
        disk_interference: float = 0.10,
    ):
        if mode not in ("checkfreq", "elastic"):
            raise CheckpointError(f"unknown snapshot mode {mode!r}")
        self.cluster = cluster
        self.clock = clock
        self.mode = mode
        #: fraction of the persist time that leaks into iteration time
        #: (Figure 3: CheckFreq iterations stay slower *after* the snapshot)
        self.disk_interference = disk_interference
        self._snapshots: dict[int, tuple[int, dict[str, np.ndarray]]] = {}
        self._snapshot_machine: dict[int, int] = {}

    def snapshot_cost(self, nbytes: int, gpu_free_bytes: int) -> SnapshotCost:
        """Price a snapshot of ``nbytes`` given free GPU memory."""
        if nbytes <= gpu_free_bytes:
            stall = nbytes / GPU_COPY_BW
            location = "gpu"
        else:
            stall = self.cluster.pcie_time(nbytes)  # must go to CPU memory
            location = "cpu"
        persist = 0.0
        if self.mode == "checkfreq":
            # async write of the snapshot to local NVMe
            persist = nbytes / self.cluster.machines[0].disk.write_bw
        return SnapshotCost(stall=stall, persist=persist, location=location)

    def take(
        self,
        shard: int,
        machine_id: int,
        state: dict[str, np.ndarray],
        iteration: int,
        gpu_free_bytes: int,
    ) -> SnapshotCost:
        """Snapshot one shard's state; records cost on the clock."""
        nbytes = state_nbytes(state)
        cost = self.snapshot_cost(nbytes, gpu_free_bytes)
        self._snapshots[shard] = (iteration, clone_state(state))
        self._snapshot_machine[shard] = machine_id
        self.clock.advance(cost.stall, "snapshot_stall", shard=shard)
        if cost.persist:
            self.clock.advance(
                cost.persist * self.disk_interference,
                "snapshot_persist_interference",
                shard=shard,
            )
        return cost

    def latest(self, shard: int) -> tuple[int, dict[str, np.ndarray]]:
        if shard not in self._snapshots:
            raise CheckpointError(f"no snapshot for shard {shard}")
        iteration, state = self._snapshots[shard]
        return iteration, clone_state(state)

    def drop_machine(self, machine_id: int) -> None:
        """A machine crash loses the snapshots staged in its memory."""
        doomed = [
            s for s, m in self._snapshot_machine.items() if m == machine_id
        ]
        for s in doomed:
            self._snapshots.pop(s, None)
            self._snapshot_machine.pop(s, None)

    def has_snapshot(self, shard: int) -> bool:
        return shard in self._snapshots


def checkfreq_interval(
    iteration_time: float, snapshot_stall: float, overhead_budget: float = 0.035
) -> int:
    """CheckFreq's frequency rule: cheapest interval within the budget.

    The amortized per-iteration overhead ``stall / k`` must not exceed
    ``budget * iteration_time``; the paper uses the same 3.5% permissible
    overhead as CheckFreq's experiments, which lands on "once per 30
    iterations" for their Wide-ResNet-50 setup.
    """
    if iteration_time <= 0 or overhead_budget <= 0:
        raise CheckpointError("iteration_time and budget must be positive")
    return max(1, math.ceil(snapshot_stall / (overhead_budget * iteration_time)))
