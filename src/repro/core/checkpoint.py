"""Checkpointing: global checkpoints and snapshot-based baselines.

Three mechanisms from the paper (Sections 2.2, 7):

* **Global checkpointing** — the PyTorch default: every worker synchronously
  serializes its full state to persistent storage; training stalls for the
  whole write.  In pipeline-parallel training the writes of different
  stages overlap ("checkpointing is pipelined"), so the stall is the max
  per-stage cost rather than the sum.
* **CheckFreq** — two phases: a *snapshot* (copy of the state in GPU memory,
  or CPU memory over PCIe when the GPU cannot hold it) that stalls the next
  update until it completes, then an asynchronous *persist* of the snapshot
  to disk that still interferes with training (Figure 3).
* **Elastic Horovod** — snapshot only (no persist): data-parallel replicas
  make the disk copy unnecessary, but the snapshot stall remains.

The snapshot cost asymmetry — on-GPU copies are cheap, PCIe copies are not —
is precisely the paper's motivation (Section 2.2): a 9.8 GB Wide-ResNet-50
state cannot be snapshotted in a 32 GB GPU that is already 30.4 GB full.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.clock import SimClock
from repro.cluster.topology import Cluster
from repro.errors import CheckpointError
from repro.utils.cow import StateView
from repro.utils.serialization import clone_state, state_nbytes

__all__ = [
    "CheckpointManager",
    "CheckpointDelta",
    "SnapshotManager",
    "SnapshotCost",
    "checkfreq_interval",
]

#: effective intra-GPU memcpy bandwidth (HBM2), bytes/s
GPU_COPY_BW = 700e9


@dataclass(frozen=True)
class CheckpointDelta:
    """An incremental checkpoint blob: changed leaves + its base pointer.

    The base is named twice: by iteration (the storage key to walk to) and
    by :class:`StateView` version (validated during the walk, so a base
    blob that was overwritten by a different save fails loudly instead of
    reconstructing a corrupt state).
    """

    #: iteration of the checkpoint this delta applies on top of
    base_iteration: int
    #: version of the full StateView the base blob must hold
    base_version: int
    #: version of the full state this delta brings the base up to
    version: int
    #: only the leaves that changed since the base (a zero-copy sub-view)
    delta: StateView


class CheckpointManager:
    """Writes/reads global checkpoints to the cluster's global store.

    Shard states are stored as :class:`~repro.utils.cow.StateView` blobs —
    capturing a checkpoint costs O(#keys), not O(state bytes), because
    ``full_state()`` already hands over private arrays.

    With ``incremental=True`` (and per-shard dirty-key reports passed to
    :meth:`save_global`), periodic persists write only the leaves that
    changed since the previous checkpoint; every ``full_every``-th
    checkpoint per shard writes a full base so delta chains stay short.
    """

    def __init__(self, cluster: Cluster, clock: SimClock,
                 key_prefix: str = "ckpt", incremental: bool = False,
                 full_every: int = 8):
        if full_every < 1:
            raise CheckpointError("full_every must be >= 1")
        self.cluster = cluster
        self.clock = clock
        self.key_prefix = key_prefix
        self.incremental = incremental
        self.full_every = full_every
        self.latest_iteration: int | None = None
        #: callbacks fired after a successful checkpoint (log GC hooks in)
        self.post_checkpoint_hooks: list = []
        #: per-shard (iteration, view) of the most recent save — the base
        #: the next delta is expressed against
        self._last_saved: dict[int, tuple[int, StateView]] = {}
        #: per-shard count of deltas since the last full base
        self._chain_len: dict[int, int] = {}

    def _key(self, iteration: int, shard: int) -> str:
        return f"{self.key_prefix}/{iteration}/{shard}"

    def save_global(
        self,
        states: dict[int, dict[str, np.ndarray]],
        iteration: int,
        pipelined: bool = False,
        dirty: dict[int, set[str]] | None = None,
    ) -> float:
        """Synchronously checkpoint all shards; returns the stall seconds.

        ``pipelined=True`` overlaps shard writes (pipeline-parallel mode):
        the stall is the slowest shard instead of the sum of all shards.

        ``dirty`` maps each shard to the state keys changed since the
        previous checkpoint (the optimizers' dirty-key reports).  When the
        manager is incremental and a shard has a usable base, only those
        leaves are uploaded.
        """
        store = self.cluster.global_store
        times = []
        for shard, state in states.items():
            view = StateView.of(state)
            payload: object = view
            nbytes = view.nbytes
            changed = None if dirty is None else dirty.get(shard)
            if self._delta_applicable(shard, iteration, view, changed):
                prev_iteration, prev_view = self._last_saved[shard]
                delta = view.select(changed)
                payload = CheckpointDelta(
                    prev_iteration, prev_view.version, view.version, delta
                )
                nbytes = delta.nbytes
                self._chain_len[shard] = self._chain_len.get(shard, 0) + 1
            else:
                self._chain_len[shard] = 0
            t = self.cluster.pcie_time(nbytes)  # GPU -> CPU
            t += store.upload(self._key(iteration, shard), nbytes, payload)
            self._last_saved[shard] = (iteration, view)
            times.append(t)
        stall = max(times) if pipelined else sum(times)
        self.latest_iteration = iteration
        self.clock.advance(stall, "global_checkpoint", iteration=iteration)
        for hook in self.post_checkpoint_hooks:
            hook(iteration)
        return stall

    def _delta_applicable(
        self, shard: int, iteration: int, view: StateView,
        changed: set[str] | None,
    ) -> bool:
        """A delta needs: incremental mode, a dirty report, a previous save
        at a strictly earlier iteration with the same key set, and a chain
        shorter than ``full_every``."""
        if not self.incremental or changed is None:
            return False
        if shard not in self._last_saved:
            return False
        if self._chain_len.get(shard, 0) + 1 >= self.full_every:
            return False
        prev_iteration, prev = self._last_saved[shard]
        if prev_iteration >= iteration:
            # re-saving the same iteration would make a delta its own base
            return False
        if prev.keys() != view.keys() or not changed <= view.keys():
            return False
        return True

    def load(self, shard: int, iteration: int | None = None
             ) -> tuple[dict[str, np.ndarray], float]:
        """Load one shard; returns (state, simulated read seconds).

        Incremental blobs are resolved by walking the delta chain back to
        the nearest full base and overlaying newer leaves; the returned
        state is always a private writable copy.
        """
        iteration = self.latest_iteration if iteration is None else iteration
        if iteration is None:
            raise CheckpointError("no checkpoint has been written yet")
        key = self._key(iteration, shard)
        if key not in self.cluster.global_store:
            raise CheckpointError(f"missing checkpoint shard {key!r}")
        blob, t = self.cluster.global_store.download(key)
        payload = blob.payload
        deltas: list[StateView] = []  # newest first
        walk_iteration = iteration
        expected_version: int | None = None
        while isinstance(payload, CheckpointDelta):
            if expected_version is not None and payload.version != expected_version:
                raise CheckpointError(
                    f"delta chain version mismatch at iteration "
                    f"{walk_iteration} for shard {shard}: base blob was "
                    "overwritten by a different save"
                )
            if payload.base_iteration >= walk_iteration:
                raise CheckpointError(
                    f"corrupt delta chain for shard {shard}: delta at "
                    f"iteration {walk_iteration} points at base "
                    f"{payload.base_iteration}"
                )
            deltas.append(payload.delta)
            expected_version = payload.base_version
            walk_iteration = payload.base_iteration
            base_key = self._key(walk_iteration, shard)
            if base_key not in self.cluster.global_store:
                raise CheckpointError(
                    f"broken delta chain: missing base {base_key!r}"
                )
            blob, t_base = self.cluster.global_store.download(base_key)
            t += t_base
            payload = blob.payload
        if (
            expected_version is not None
            and isinstance(payload, StateView)
            and payload.version != expected_version
        ):
            raise CheckpointError(
                f"delta chain version mismatch for shard {shard}: full "
                f"base at iteration {walk_iteration} was overwritten by a "
                "different save"
            )
        merged: dict[str, np.ndarray] = dict(payload)
        for delta in reversed(deltas):  # oldest delta first, newest wins
            merged.update(delta)
        t += self.cluster.pcie_time(state_nbytes(merged))  # CPU -> GPU
        return clone_state(merged), t


@dataclass(frozen=True)
class SnapshotCost:
    """Cost decomposition of one snapshot."""

    #: stall imposed on the next update (Section 2.2's "checkpoint stall")
    stall: float
    #: background persist time (CheckFreq phase 2); 0 for Elastic Horovod
    persist: float
    #: where the snapshot landed
    location: str  # "gpu" or "cpu"


class SnapshotManager:
    """CheckFreq / Elastic-Horovod style snapshotting baseline.

    Keeps the latest snapshot per shard (in simulated GPU or CPU memory of
    the shard's machine); a machine failure loses the snapshots held there,
    but in data parallelism the survivors' snapshots suffice.
    """

    def __init__(
        self,
        cluster: Cluster,
        clock: SimClock,
        mode: str = "checkfreq",
        disk_interference: float = 0.10,
    ):
        if mode not in ("checkfreq", "elastic"):
            raise CheckpointError(f"unknown snapshot mode {mode!r}")
        self.cluster = cluster
        self.clock = clock
        self.mode = mode
        #: fraction of the persist time that leaks into iteration time
        #: (Figure 3: CheckFreq iterations stay slower *after* the snapshot)
        self.disk_interference = disk_interference
        self._snapshots: dict[int, tuple[int, StateView]] = {}
        self._snapshot_machine: dict[int, int] = {}

    def snapshot_cost(self, nbytes: int, gpu_free_bytes: int) -> SnapshotCost:
        """Price a snapshot of ``nbytes`` given free GPU memory."""
        if nbytes <= gpu_free_bytes:
            stall = nbytes / GPU_COPY_BW
            location = "gpu"
        else:
            stall = self.cluster.pcie_time(nbytes)  # must go to CPU memory
            location = "cpu"
        persist = 0.0
        if self.mode == "checkfreq":
            # async write of the snapshot to local NVMe
            persist = nbytes / self.cluster.machines[0].disk.write_bw
        return SnapshotCost(stall=stall, persist=persist, location=location)

    def take(
        self,
        shard: int,
        machine_id: int,
        state: dict[str, np.ndarray],
        iteration: int,
        gpu_free_bytes: int,
    ) -> SnapshotCost:
        """Snapshot one shard's state; records cost on the clock.

        The snapshot is captured as a zero-copy :class:`StateView` — the
        *simulated* stall still prices the hardware copy, but the Python
        hot path is O(#keys) instead of O(state bytes).
        """
        view = StateView.of(state)
        nbytes = view.nbytes
        cost = self.snapshot_cost(nbytes, gpu_free_bytes)
        self._snapshots[shard] = (iteration, view)
        self._snapshot_machine[shard] = machine_id
        self.clock.advance(cost.stall, "snapshot_stall", shard=shard)
        if cost.persist:
            self.clock.advance(
                cost.persist * self.disk_interference,
                "snapshot_persist_interference",
                shard=shard,
            )
        return cost

    def latest(self, shard: int) -> tuple[int, dict[str, np.ndarray]]:
        """Latest snapshot as a private writable copy (the restore path)."""
        iteration, view = self.latest_view(shard)
        return iteration, view.materialize()

    def latest_view(self, shard: int) -> tuple[int, StateView]:
        """Latest snapshot as a zero-copy read-only view."""
        if shard not in self._snapshots:
            raise CheckpointError(f"no snapshot for shard {shard}")
        return self._snapshots[shard]

    def drop_machine(self, machine_id: int) -> None:
        """A machine crash loses the snapshots staged in its memory."""
        doomed = [
            s for s, m in self._snapshot_machine.items() if m == machine_id
        ]
        for s in doomed:
            self._snapshots.pop(s, None)
            self._snapshot_machine.pop(s, None)

    def has_snapshot(self, shard: int) -> bool:
        return shard in self._snapshots


def checkfreq_interval(
    iteration_time: float, snapshot_stall: float, overhead_budget: float = 0.035
) -> int:
    """CheckFreq's frequency rule: cheapest interval within the budget.

    The amortized per-iteration overhead ``stall / k`` must not exceed
    ``budget * iteration_time``; the paper uses the same 3.5% permissible
    overhead as CheckFreq's experiments, which lands on "once per 30
    iterations" for their Wide-ResNet-50 setup.
    """
    if iteration_time <= 0 or overhead_budget <= 0:
        raise CheckpointError("iteration_time and budget must be positive")
    return max(1, math.ceil(snapshot_stall / (overhead_budget * iteration_time)))
