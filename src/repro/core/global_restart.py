"""Global checkpoint-restart recovery — the de-facto baseline (Section 1).

"The training job periodically checkpoints the entire model state.  All
workers restart from the latest checkpoint when the job fails."

Unlike Swift's mechanisms, *every* worker — survivors included — loads the
checkpoint and rolls its progress back, so all iterations since the last
checkpoint are re-computed live by the training loop.  This is the
behaviour Figures 8-9 compare against; having it on the live engines lets
integration tests measure the lost-work gap against Swift on identical
numerics.
"""

from __future__ import annotations

from repro.cluster.clock import SimClock
from repro.core.checkpoint import CheckpointManager
from repro.core.detector import FailureDetector
from repro.core.replication import RecoveryReport
from repro.errors import RecoveryError
from repro.parallel.data_parallel import DataParallelEngine
from repro.parallel.pipeline import PipelineEngine

__all__ = ["GlobalCheckpointRecovery"]


class GlobalCheckpointRecovery:
    """Restart every worker from the latest global checkpoint."""

    def __init__(
        self,
        engine: DataParallelEngine | PipelineEngine,
        checkpoints: CheckpointManager,
        detector: FailureDetector,
        clock: SimClock,
        replacement_join_time: float = 5.0,
    ):
        self.engine = engine
        self.checkpoints = checkpoints
        self.detector = detector
        self.clock = clock
        self.replacement_join_time = replacement_join_time

    def recover(self) -> RecoveryReport:
        detection = self.detector.detect()
        failed_machines = [
            m.machine_id for m in self.engine.cluster.failed_machines()
        ] or [detection.machine_id]
        ckpt_iter = self.checkpoints.latest_iteration
        if ckpt_iter is None:
            raise RecoveryError("no global checkpoint exists to restart from")

        pre_failure = self.engine.iteration
        for machine_id in failed_machines:
            self.engine.cluster.replace_machine(machine_id)
        self.clock.advance(self.replacement_join_time, "replacement_join")

        # every worker loads; loads proceed in parallel -> stall is the max
        load_time = 0.0
        if isinstance(self.engine, PipelineEngine):
            for stage in list(self.engine.stages):
                state, t = self.checkpoints.load(stage.stage_id, ckpt_iter)
                fresh = self.engine.new_stage(stage.stage_id, stage.device)
                fresh.load_full_state(state)
                self.engine.stages[stage.stage_id] = fresh
                self.engine.transport.rebind(stage.stage_id, fresh.device)
                load_time = max(load_time, t)
            self.engine.transport.drop_all()
        else:
            for rank in range(len(self.engine.workers)):
                worker = self.engine.rebuild_worker(rank)
                state, t = self.checkpoints.load(rank, ckpt_iter)
                worker.load_full_state(state)
                worker.iteration = ckpt_iter
                worker.updated_params = []
                load_time = max(load_time, t)

        self.engine.iteration = ckpt_iter
        self.clock.advance(load_time, "checkpoint_restart")

        return RecoveryReport(
            strategy="global_checkpoint_restart",
            failed_machines=failed_machines,
            resume_iteration=ckpt_iter,
            lost_iterations=pre_failure - ckpt_iter,
            detection_time=detection.detection_time,
            init_time=self.replacement_join_time,
            undo_time=0.0,
            restore_time=load_time,
            details={"checkpoint_iteration": ckpt_iter,
                     "rolled_back_workers": "all"},
        )
