"""Replication-based recovery for data parallelism (Section 4, Figure 5).

Flow after a machine failure:

1. detect the failure (async error → KV flag → aborts);
2. surviving workers *undo* any partially applied updates, returning every
   replica to the consistent iteration-start state;
3. a replacement machine joins; its workers are rebuilt empty;
4. one surviving replica broadcasts the full model state (parameters +
   optimizer state) to the replacements;
5. everyone resumes from the consensus iteration.

No checkpoint load, no lost-iteration recomputation — which is why the
paper measures a 98.9% / 98.1% recovery-time reduction vs. global
checkpointing / CheckFreq / Elastic Horovod (Figure 8a).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.clock import SimClock
from repro.comm.collectives import CollectiveGroup
from repro.core.detector import FailureDetector
from repro.core.undo import UndoReport, resolve_dp_consistency
from repro.errors import RecoveryError
from repro.parallel.data_parallel import DataParallelEngine
from repro.utils.cow import StateView

__all__ = ["RecoveryReport", "ReplicationRecovery"]


@dataclass
class RecoveryReport:
    """Timing/outcome record shared by both recovery mechanisms."""

    strategy: str
    failed_machines: list[int]
    #: iteration training resumes from
    resume_iteration: int
    #: iterations of work that had to be re-computed (0 for replication)
    lost_iterations: int = 0
    detection_time: float = 0.0
    #: replacement join/initialization time
    init_time: float = 0.0
    undo_time: float = 0.0
    #: replica broadcast (replication) or replay+transfer (logging)
    restore_time: float = 0.0
    details: dict = field(default_factory=dict)

    @property
    def recovery_time(self) -> float:
        """Paper's 'recovery time': from replacement join to pre-failure
        iteration (detection and init are reported separately)."""
        return self.undo_time + self.restore_time

    @property
    def total_time(self) -> float:
        return self.detection_time + self.init_time + self.recovery_time


class ReplicationRecovery:
    """Recovers a data-parallel job from surviving replicas (§4).

    Survivors undo any partial update (invertible optimizers), a
    replacement joins on the failed machine's slot, and one surviving
    replica broadcasts its state — zero recomputation.  Built for you by
    the ``"replication"`` recovery policy:

    >>> from repro.api import (ClusterSpec, Experiment, ModelSpec,
    ...                        ParallelismSpec)
    >>> session = Experiment(
    ...     model=ModelSpec(family="mlp", dim=4, hidden_dim=8),
    ...     cluster=ClusterSpec(num_machines=2, devices_per_machine=1),
    ...     parallelism=ParallelismSpec(kind="dp", num_workers=2),
    ... ).build()
    >>> type(session.recovery).__name__
    'ReplicationRecovery'
    """

    def __init__(
        self,
        engine: DataParallelEngine,
        detector: FailureDetector,
        clock: SimClock,
        replacement_join_time: float = 5.0,
        undo_kernel_time: float = 0.01,
    ):
        self.engine = engine
        self.detector = detector
        self.clock = clock
        #: time for the scheduler to provision a replacement (paper's
        #: "initialization time")
        self.replacement_join_time = replacement_join_time
        #: simulated GPU time to undo one worker's partial update
        self.undo_kernel_time = undo_kernel_time

    def recover(self) -> RecoveryReport:
        """Run the full replication-recovery procedure."""
        detection = self.detector.detect()
        # multiple simultaneous failures are handled jointly (Appendix B):
        # every failed machine's workers are rebuilt from the same replica
        failed_machines = [
            m.machine_id for m in self.engine.cluster.failed_machines()
        ]
        if not failed_machines:
            failed_machines = [detection.machine_id]

        survivors = self.engine.alive_workers()
        if not survivors:
            raise RecoveryError(
                "no surviving replica: replication-based recovery is "
                "impossible (fall back to global checkpointing)"
            )

        # 2. update-undo on survivors
        undo_report: UndoReport = resolve_dp_consistency(self.engine)
        undo_time = self.undo_kernel_time if undo_report.num_undone else 0.0
        self.clock.advance(undo_time, "undo")

        # 3. replacements join (concurrently)
        for machine_id in failed_machines:
            self.engine.cluster.replace_machine(machine_id)
        self.clock.advance(self.replacement_join_time, "replacement_join")
        replacements = [
            self.engine.rebuild_worker(w.rank)
            for w in self.engine.workers
            if w.machine_id in failed_machines
        ]

        # 4. broadcast the surviving state to the replacements — captured
        # as a read-only COW view, so the broadcast payload is immune to
        # concurrent mutation and costs no extra copy (each replacement's
        # load_full_state copies on ingest)
        source = survivors[0]
        state = StateView.of(source.full_state())
        nbytes = state.nbytes
        group = CollectiveGroup(
            self.engine.cluster,
            {w.rank: w.device for w in self.engine.workers},
        )
        broadcast_time = group.broadcast_time(nbytes)
        for worker in replacements:
            worker.load_full_state(state)
            worker.iteration = source.iteration
        self.clock.advance(broadcast_time, "replica_broadcast")

        return RecoveryReport(
            strategy="replication",
            failed_machines=failed_machines,
            resume_iteration=self.engine.iteration,
            lost_iterations=0,
            detection_time=detection.detection_time,
            init_time=self.replacement_join_time,
            undo_time=undo_time,
            restore_time=broadcast_time,
            details={
                "undone_params": undo_report.num_undone,
                "broadcast_bytes": nbytes,
                "replacement_ranks": [w.rank for w in replacements],
            },
        )
