"""Elastic data-parallel training powered by update-undo (paper Section 8).

"Most elastic training works still rely on checkpoint-restart to avoid
the crash-consistency problem. Swift can resolve the inconsistency using
update-undo and thus benefit elastic training (e.g., broadcast the
worker's state when new workers come in)."

:class:`ElasticCoordinator` wraps a :class:`DataParallelEngine` and adds:

* **scale-out** — new workers join on spare devices; a surviving replica
  broadcasts its state (no checkpoint restart);
* **scale-in** — workers leave (e.g., preempted by a high-priority job);
  if the departure interrupts an update, the remaining workers undo to
  the consistent iteration-start state first;
* a resize *schedule* so tests/benchmarks can script membership changes.

Throughout, the replica-consistency invariant of data parallelism is
preserved — asserted by :meth:`DataParallelEngine.replicas_consistent`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.clock import SimClock
from repro.comm.collectives import CollectiveGroup
from repro.core.undo import resolve_dp_consistency
from repro.errors import ConfigurationError, RecoveryError
from repro.parallel.data_parallel import DataParallelEngine, DPWorker
from repro.utils.serialization import state_nbytes

__all__ = ["ResizeEvent", "ElasticCoordinator"]


@dataclass(frozen=True)
class ResizeEvent:
    """A scheduled membership change at the start of an iteration."""

    iteration: int
    #: positive — add workers at these (machine, device) slots
    join: tuple[tuple[int, int], ...] = ()
    #: ranks leaving the job
    leave: tuple[int, ...] = ()
    #: whether the departure is abrupt (mid-update) and needs undo
    abrupt: bool = False
    #: for abrupt departures: how many parameters were updated already
    after_updates: int = 0


@dataclass
class ElasticTrace:
    losses: list[float] = field(default_factory=list)
    memberships: list[int] = field(default_factory=list)
    resize_times: list[float] = field(default_factory=list)


class ElasticCoordinator:
    """Drives elastic membership changes over a data-parallel engine."""

    def __init__(self, engine: DataParallelEngine, clock: SimClock | None = None):
        self.engine = engine
        self.clock = clock or engine.clock

    @property
    def active_ranks(self) -> list[int]:
        return [w.rank for w in self.engine.workers if w.alive]

    # -- membership changes -------------------------------------------------
    def scale_out(self, slots: list[tuple[int, int]]) -> float:
        """Add one worker per (machine, device) slot; returns resize time.

        The new workers receive the model state by broadcast from an
        existing replica — no checkpoint involved.
        """
        live = self.engine.alive_workers()
        if not live:
            raise RecoveryError("cannot scale out with no live replica")
        source = live[0]
        state = source.full_state()
        new_workers = []
        for machine_id, dev_idx in slots:
            device = self.engine.cluster.device(machine_id, dev_idx)
            if not device.alive:
                raise ConfigurationError(
                    f"device ({machine_id}, {dev_idx}) is on a failed machine"
                )
            model = self.engine.model_factory()
            worker = DPWorker(
                len(self.engine.workers), device, model,
                self.engine.opt_factory(model),
            )
            worker.load_full_state(state)
            worker.iteration = source.iteration
            self.engine.workers.append(worker)
            new_workers.append(worker)
        self._rebuild_group()
        nbytes = state_nbytes(state)
        t = CollectiveGroup(
            self.engine.cluster,
            {w.rank: w.device for w in self.engine.workers if w.alive},
        ).broadcast_time(nbytes)
        self.clock.advance(t, "elastic_scale_out", joined=len(slots))
        return t

    def scale_in(self, ranks: list[int], abrupt: bool = False) -> float:
        """Remove workers; abrupt departures trigger update-undo first."""
        remaining = [
            w for w in self.engine.workers
            if w.alive and w.rank not in set(ranks)
        ]
        if not remaining:
            raise ConfigurationError("cannot remove every worker")
        t = 0.0
        if abrupt:
            # departures mid-update leave survivors inconsistent: undo
            report = resolve_dp_consistency(self.engine)
            if report.num_undone:
                t += 0.01
        self.engine.workers = remaining
        # re-rank contiguously so sharding stays balanced
        for new_rank, w in enumerate(self.engine.workers):
            w.rank = new_rank
        self._rebuild_group()
        self.clock.advance(t + 0.05, "elastic_scale_in", left=len(ranks))
        return t + 0.05

    def _rebuild_group(self) -> None:
        self.engine.group = CollectiveGroup(
            self.engine.cluster,
            {w.rank: w.device for w in self.engine.workers if w.alive},
        )

    # -- scripted elastic training -----------------------------------------------
    def train(self, num_iterations: int,
              schedule: list[ResizeEvent] | None = None) -> ElasticTrace:
        """Run training while applying membership changes on schedule."""
        events = sorted(schedule or [], key=lambda e: e.iteration)
        trace = ElasticTrace()
        while self.engine.iteration < num_iterations:
            it = self.engine.iteration
            due = [e for e in events if e.iteration == it]
            for event in due:
                events.remove(event)
                t = 0.0
                if event.leave:
                    t += self.scale_in(list(event.leave), abrupt=event.abrupt)
                if event.join:
                    t += self.scale_out(list(event.join))
                trace.resize_times.append(t)
                assert self.engine.replicas_consistent(), (
                    "elastic resize broke replica consistency"
                )
            result = self.engine.run_iteration()
            trace.losses.append(result.loss)
            trace.memberships.append(len(self.engine.alive_workers()))
        return trace
