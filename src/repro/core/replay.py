"""Logging-based recovery: replay the failed sub-pipeline (Section 5).

After a machine failure in pipeline-parallel training:

1. detect; surviving stages undo past-consensus updates (Section 6);
2. surviving upstream workers flush unlogged data and upload their logging
   files to the global store (Figure 6b steps 1-3);
3. the replacement loads the latest global checkpoint for the failed
   stages and *replays* the logged tensors in timestamp order, re-running
   only the failed machine's computation graph — without pipeline bubbles
   (Figure 1b);
4. with **parallel recovery** (Section 5.2, Figure 7), the replay of each
   iteration's micro-batches is split round-robin over ``d`` recovery
   workers; gradients are all-reduced, which is logically equivalent to
   sequential replay.

The recovery *scope* is the failed machine's group (selective logging
widens it to the whole group, Section 5.3): surviving stages keep their
state and simply wait.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.clock import SimClock
from repro.core.checkpoint import CheckpointManager
from repro.core.detector import FailureDetector
from repro.core.replication import RecoveryReport
from repro.core.tlog import GroupingPlan, TensorLog
from repro.core.undo import resolve_pipeline_consistency
from repro.errors import ConfigurationError, RecoveryError
from repro.cluster.storage import pipelined_transfer_time
from repro.parallel.pipeline import PipelineEngine, PipelineStage
from repro.utils.flat import FlatBuffer

__all__ = ["LoggingRecovery", "ReplaySpec"]


@dataclass(frozen=True)
class ReplaySpec:
    """What must be replayed: stage span, iteration span, parallelism."""

    stage_ids: tuple[int, ...]  # contiguous, ascending
    from_iteration: int  # checkpoint iteration (inclusive)
    to_iteration: int  # consensus pre-failure iteration (exclusive)
    parallel_degree: int = 1

    @property
    def lost_iterations(self) -> int:
        return self.to_iteration - self.from_iteration


class LoggingRecovery:
    """Recovers failed pipeline stages from the tensor log (§5).

    Failed stages rebuild from the last global checkpoint and *replay*
    their boundary inputs from the sender-side log; disjoint failed
    spans recover independently, and ``parallel_degree > 1`` splits each
    span's replay across recovery workers (§5.2).  Built for you by the
    ``"logging"`` recovery policy:

    >>> from repro.api import (ClusterSpec, Experiment, ModelSpec,
    ...                        ParallelismSpec)
    >>> session = Experiment(
    ...     model=ModelSpec(family="mlp", dim=4, hidden_dim=8, depth=2),
    ...     cluster=ClusterSpec(num_machines=2, devices_per_machine=1),
    ...     parallelism=ParallelismSpec(kind="pp", num_workers=2,
    ...                                 num_microbatches=2),
    ... ).build()
    >>> type(session.recovery).__name__
    'LoggingRecovery'
    """

    def __init__(
        self,
        engine: PipelineEngine,
        tlog: TensorLog,
        checkpoints: CheckpointManager,
        detector: FailureDetector,
        clock: SimClock,
        parallel_degree: int = 1,
        replacement_join_time: float = 5.0,
        #: logging needs extra setup (CUDA stream + threads), Section 7.1
        logging_init_time: float = 1.0,
        transfer_chunks: int = 8,
    ):
        if getattr(engine, "virtual_stages", 1) != 1:
            raise ConfigurationError(
                "logging recovery replays contiguous stage spans; "
                "interleaved schedules (virtual_stages > 1) scatter each "
                "stage's chunks across the pipeline — use checkpoint_only"
            )
        self.engine = engine
        self.tlog = tlog
        self.checkpoints = checkpoints
        self.detector = detector
        self.clock = clock
        self.parallel_degree = max(1, int(parallel_degree))
        self.replacement_join_time = replacement_join_time
        self.logging_init_time = logging_init_time
        self.transfer_chunks = transfer_chunks

    # -- scope ------------------------------------------------------------
    def recovery_spans(self, failed_machines: list[int]) -> list[list[int]]:
        """Stage spans needing replay, one per contiguous pipeline portion.

        All stages in the failed machines' *groups* roll back (with
        selective logging intra-group traffic is unlogged, Section 5.3).
        Failures spanning disjoint portions of the pipeline are recovered
        independently (Appendix B): each contiguous run of failed stages
        becomes its own replay span, bounded by surviving (logging)
        machines.
        """
        grouping = self.tlog.grouping
        machines: set[int] = set()
        for m in failed_machines:
            if grouping is None:
                machines.add(m)
            else:
                machines.update(grouping.group_machines(m))
        ids = sorted(
            s.stage_id
            for s in self.engine.stages
            if self.engine.machine_of_stage(s.stage_id) in machines
        )
        if not ids:
            raise RecoveryError(f"no stages placed on machines {failed_machines}")
        spans: list[list[int]] = [[ids[0]]]
        for sid in ids[1:]:
            if sid == spans[-1][-1] + 1:
                spans[-1].append(sid)
            else:
                spans.append([sid])
        return spans

    # -- the numeric replay ------------------------------------------------------
    def _rebuild_stages(
        self, stage_ids: list[int], from_iteration: int
    ) -> tuple[dict[int, PipelineStage], float]:
        """Fresh stage objects loaded from the checkpoint; returns load time."""
        rebuilt: dict[int, PipelineStage] = {}
        load_time = 0.0
        for sid in stage_ids:
            state, t = self.checkpoints.load(sid, from_iteration)
            stage = self.engine.new_stage(sid, self.engine.stages[sid].device)
            stage.load_full_state(state)
            rebuilt[sid] = stage
            load_time = max(load_time, t)  # loads proceed in parallel
        return rebuilt, load_time

    def _replay_scratch(
        self, stages: dict[int, PipelineStage], stage_ids: list[int],
        degree: int,
    ) -> dict[int, tuple[FlatBuffer, np.ndarray]]:
        """Per-stage flat gradient buffer + bucket matrix, allocated once.

        One ``(degree, size)`` matrix holds every recovery worker's bucket
        snapshot; reusing it across the replayed iterations keeps the
        large-buffer path free of per-iteration allocations.
        """
        return {
            sid: (
                (flat := FlatBuffer(stages[sid].module.param_shapes())),
                np.empty((degree, flat.size), dtype=np.float64),
            )
            for sid in stage_ids
        }

    def _replay_iteration(
        self,
        stages: dict[int, PipelineStage],
        stage_ids: list[int],
        iteration: int,
        degree: int,
        scratch: dict[int, tuple[FlatBuffer, np.ndarray]] | None = None,
    ) -> None:
        """Replay one lost iteration, optionally data-parallel (Figure 7).

        With ``degree > 1`` micro-batches are assigned round-robin; each
        virtual recovery worker accumulates its own gradient bucket and the
        buckets are summed in worker order before the update — mirroring
        the gradient synchronization of parallel recovery.

        Buckets are *flat*: each worker accumulates straight into a seeded
        contiguous buffer (:meth:`Module.seed_flat_grads`), a bucket
        snapshot is one memcpy, and the cross-worker sum is one vector add
        per bucket instead of one per parameter — bitwise identical to the
        per-parameter sum (same per-element addition order).
        """
        xs, ys = self.engine.microbatches(iteration)
        m = self.engine.num_microbatches
        first, last = stage_ids[0], stage_ids[-1]
        p = self.engine.num_stages

        if scratch is None:
            scratch = self._replay_scratch(stages, stage_ids, degree)
        for worker in range(degree):
            for sid in stage_ids:
                stages[sid].module.seed_flat_grads(scratch[sid][0])
            for mb in range(worker, m, degree):
                # forward through the failed span
                if first == 0:
                    h = xs[mb]
                else:
                    h = self.tlog.query(first, iteration, mb, "fwd").tensor
                for sid in stage_ids:
                    h = stages[sid].module(h)
                # gradient entering the span
                if last == p - 1:
                    loss_fn = self.engine.loss_factory()
                    loss_fn(h, ys[mb])
                    g = loss_fn.backward() / m
                else:
                    g = self.tlog.query(last, iteration, mb, "bwd").tensor
                for sid in reversed(stage_ids):
                    g = stages[sid].module.backward(g)
            for sid in stage_ids:
                flat, buckets = scratch[sid]
                np.copyto(buckets[worker], flat.data)

        # gradient synchronization across recovery workers (sum in rank
        # order — bit-deterministic, logically equal to sequential replay)
        for sid in stage_ids:
            flat, buckets = scratch[sid]
            flat.copy_from(buckets[0])
            for worker in range(1, degree):
                flat.data += buckets[worker]
            views = flat.views()
            for name, param in stages[sid].module.named_parameters():
                param.grad = views[name]
            stages[sid].step()

    # -- timing model ---------------------------------------------------------
    def _replay_time(self, spec: ReplaySpec) -> dict[str, float]:
        """Price the recovery (Figure 6b/6c flow)."""
        eng = self.engine
        m = eng.num_microbatches
        degree = spec.parallel_degree
        # Replay pipelines micro-batches through the failed span with no
        # waiting on other stages (Figure 1b): fill the span once, then one
        # micro-batch per bottleneck-stage slot.  Parallel recovery divides
        # the micro-batches across `degree` recovery workers (Figure 7).
        stage_fb = [eng.fwd_times[sid] + eng.bwd_times[sid] for sid in spec.stage_ids]
        mb_per_worker = -(-m // degree)  # ceil
        per_iteration = sum(stage_fb) + (mb_per_worker - 1) * max(stage_fb)
        compute = spec.lost_iterations * per_iteration
        sync = 0.0
        if degree > 1:
            # per-iteration gradient all-reduce among recovery workers
            state_bytes = sum(eng.state_nbytes(sid) for sid in spec.stage_ids)
            sync = spec.lost_iterations * 2.0 * (degree - 1) / degree * (
                state_bytes / eng.cluster.bandwidth.network
            )
        # log-file movement: flush (PCIe+disk) → upload → download, chunked
        log_bytes = self.tlog.upload_bytes_for(
            range(spec.from_iteration, spec.to_iteration),
            exclude_machine=-1,
        )
        transfer = pipelined_transfer_time(
            log_bytes,
            [
                eng.cluster.bandwidth.pcie,
                eng.cluster.machines[0].disk.write_bw,
                eng.cluster.bandwidth.network,  # upload
                eng.cluster.bandwidth.network,  # download
            ],
            num_chunks=self.transfer_chunks,
        )
        # transfer pipelines with replay itself (chunked files): charge the max
        replay_wall = max(compute + sync, transfer)
        return {
            "compute": compute,
            "sync": sync,
            "transfer": transfer,
            "replay_wall": replay_wall,
            "log_bytes": float(log_bytes),
        }

    # -- orchestration ----------------------------------------------------------
    def recover(self) -> RecoveryReport:
        detection = self.detector.detect()
        failed_machines = [detection.machine_id] + [
            mm.machine_id
            for mm in self.engine.cluster.failed_machines()
            if mm.machine_id != detection.machine_id
        ]

        # surviving stages: consensus + undo
        undo_report = resolve_pipeline_consistency(self.engine)
        consensus = undo_report.consensus_iteration
        undo_time = 0.01 if undo_report.num_undone else 0.0
        self.clock.advance(undo_time, "undo")

        ckpt_iter = self.checkpoints.latest_iteration
        if ckpt_iter is None:
            raise RecoveryError("no global checkpoint exists to replay from")
        # drop the failed machines' own (lost) records, then plan the spans
        for machine_id in failed_machines:
            self.tlog.drop_machine(machine_id)
        spans = self.recovery_spans(failed_machines)

        # replacement joins (plus logging re-initialization, Section 7.1)
        for machine_id in failed_machines:
            self.engine.cluster.replace_machine(machine_id)
        init_time = self.replacement_join_time + self.logging_init_time
        self.clock.advance(init_time, "replacement_join")

        # rebuild + replay every span (numerics); disjoint spans recover
        # independently and concurrently (Appendix B), so wall time is the
        # max across spans
        restore_time = 0.0
        all_stage_ids: list[int] = []
        timing_details: dict = {}
        for span in spans:
            spec = ReplaySpec(
                stage_ids=tuple(span),
                from_iteration=ckpt_iter,
                to_iteration=consensus,
                parallel_degree=self.parallel_degree,
            )
            rebuilt, load_time = self._rebuild_stages(span, ckpt_iter)
            scratch = self._replay_scratch(rebuilt, span, spec.parallel_degree)
            for it in range(spec.from_iteration, spec.to_iteration):
                self._replay_iteration(rebuilt, span, it,
                                       spec.parallel_degree, scratch)
            for sid in span:
                stage = rebuilt[sid]
                assert stage.iteration == consensus, (
                    f"replayed stage {sid} at iteration {stage.iteration}, "
                    f"expected {consensus}"
                )
                self.engine.stages[sid] = stage
                self.engine.transport.rebind(sid, stage.device)
            timing = self._replay_time(spec)
            restore_time = max(restore_time, load_time + timing["replay_wall"])
            timing_details[f"span_{span[0]}_{span[-1]}"] = timing
            all_stage_ids.extend(span)

        self.clock.advance(restore_time, "logging_replay")
        self.engine.iteration = consensus

        return RecoveryReport(
            strategy="logging" if self.parallel_degree == 1 else "logging+pr",
            failed_machines=failed_machines,
            resume_iteration=consensus,
            lost_iterations=consensus - ckpt_iter,
            detection_time=detection.detection_time,
            init_time=init_time,
            undo_time=undo_time,
            restore_time=restore_time,
            details={**timing_details, "stage_ids": all_stage_ids,
                     "checkpoint_iteration": ckpt_iter,
                     "undone_params": undo_report.num_undone},
        )
