"""Sharded replication recovery: FSDP + Swift (paper Section 8).

Recovers an :class:`~repro.parallel.fsdp.FSDPEngine` from a machine
failure.  The flow generalizes plain replication-based recovery:

1. detect the failure;
2. undo partially applied updates on surviving *owners* (shard-wise
   update-undo — only the shards updated past the consensus roll back);
3. replacements join; dead workers are rebuilt;
4. every shard whose owner or mirror died is restored from its surviving
   copy (the mirror on another machine), and mirrors are re-established;
5. the full parameter set is re-gathered so every worker's compute copy
   is consistent.

If both copies of any shard died (a two-machine failure hitting an
owner/mirror pair), recovery falls back to the periodic global checkpoint
by raising :class:`~repro.errors.RecoveryError` — exactly the
catastrophic-failure escape hatch of Section 3.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.clock import SimClock
from repro.core.detector import FailureDetector
from repro.core.replication import RecoveryReport
from repro.errors import RecoveryError
from repro.parallel.fsdp import FSDPEngine
from repro.utils.cow import StateView

__all__ = ["ShardedReplicationRecovery"]


class ShardedReplicationRecovery:
    """Restores lost shards from their cross-machine mirrors."""

    def __init__(
        self,
        engine: FSDPEngine,
        detector: FailureDetector,
        clock: SimClock,
        replacement_join_time: float = 5.0,
    ):
        self.engine = engine
        self.detector = detector
        self.clock = clock
        self.replacement_join_time = replacement_join_time

    def recover(self) -> RecoveryReport:
        detection = self.detector.detect()
        dead_machines = {
            m.machine_id for m in self.engine.cluster.failed_machines()
        }
        if not dead_machines:
            dead_machines = {detection.machine_id}

        # 1. locate a live source for every shard BEFORE touching state —
        # if any shard is unrecoverable we must not half-recover
        sources: dict[str, tuple[str, int]] = {}
        for name in self.engine.plan.owner:
            sources[name] = self.engine.shard_source(name, dead_machines)

        # 2. shard-wise update-undo on surviving owners
        undone = 0
        for worker in self.engine.alive_workers():
            if worker.updated_params and worker.optimizer is not None:
                names = list(reversed(worker.updated_params))
                worker.optimizer.undo(names)
                undone += len(names)
                worker.updated_params = []
        undo_time = 0.01 if undone else 0.0
        self.clock.advance(undo_time, "undo")

        # 3. replacements join, dead workers rebuilt
        for machine_id in dead_machines:
            self.engine.cluster.replace_machine(machine_id)
        self.clock.advance(self.replacement_join_time, "replacement_join")
        dead_ranks = [
            w.rank for w in self.engine.workers if w.machine_id in dead_machines
        ]
        for rank in dead_ranks:
            self.engine.rebuild_worker(rank)

        # 4. restore shards from surviving copies and re-mirror everything
        restored_bytes = 0
        for name, (kind, src_rank) in sources.items():
            src = self.engine.workers[src_rank]
            # zero-copy restore source: shard_state already exports private
            # arrays, and mirror dicts are rebound (never mutated in place)
            # by _sync_mirrors, so a read-only view suffices —
            # load_shard_state copies on ingest
            state = StateView.of(
                src.shard_state(name) if kind == "owner"
                else dict(src.mirrors[name])
            )
            owner = self.engine.workers[self.engine.plan.owner[name]]
            owner.load_shard_state(name, state)
            restored_bytes += state.nbytes
        self.engine._sync_mirrors(list(self.engine.plan.owner))

        # 5. re-gather full parameters onto every worker
        for name, rank in self.engine.plan.owner.items():
            value = self.engine.workers[rank]._params[name].data
            for w in self.engine.workers:
                w._params[name].data = np.array(value, copy=True)

        restore_time = (
            restored_bytes / self.engine.cluster.bandwidth.network
        )
        self.clock.advance(restore_time, "shard_restore")
        survivors = [
            w for w in self.engine.workers if w.rank not in dead_ranks
        ]
        for w in self.engine.workers:
            w.iteration = max(s.iteration for s in survivors)

        return RecoveryReport(
            strategy="sharded_replication",
            failed_machines=sorted(dead_machines),
            resume_iteration=self.engine.iteration,
            lost_iterations=0,
            detection_time=detection.detection_time,
            init_time=self.replacement_join_time,
            undo_time=undo_time,
            restore_time=restore_time,
            details={
                "restored_bytes": restored_bytes,
                "undone_params": undone,
                "rebuilt_ranks": dead_ranks,
            },
        )
