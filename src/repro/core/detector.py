"""Failure detection via async communicator errors and a global flag.

Reproduces the paper's protocol (Section 6): every worker runs a background
thread polling ``ncclCommGetAsyncError()``; on error it sets a failure flag
in the global KV store (co-located with rank 0) and aborts its own
communicators; all other workers poll the flag and abort too.  Here the
protocol is collapsed into a timing model plus the KV-store flag the
engines already raise on injected failures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.clock import SimClock
from repro.cluster.kvstore import KVStore

__all__ = ["DetectionReport", "FailureDetector"]


@dataclass(frozen=True)
class DetectionReport:
    """Outcome of failure detection."""

    machine_id: int
    iteration: int
    #: simulated seconds from crash to all workers having aborted
    detection_time: float


class FailureDetector:
    """Timing + protocol model of Swift's failure detection."""

    def __init__(
        self,
        kvstore: KVStore,
        clock: SimClock,
        nccl_poll_interval: float = 0.002,
        kv_roundtrip: float = 0.001,
        abort_time: float = 0.05,
    ):
        self.kvstore = kvstore
        self.clock = clock
        self.nccl_poll_interval = nccl_poll_interval
        self.kv_roundtrip = kv_roundtrip
        self.abort_time = abort_time

    def detection_time(self) -> float:
        """Crash → error surfaced → flag set → peers polled → aborted."""
        return (
            self.nccl_poll_interval  # observer thread notices the error
            + self.kv_roundtrip  # set the flag at rank 0's store
            + self.kvstore.poll_interval  # other workers poll the flag
            + self.abort_time  # abort NCCL communicators everywhere
        )

    def detect(self) -> DetectionReport:
        """Consume the raised failure flag, charging detection time."""
        info = self.kvstore.failure_info()
        if info is None:
            raise RuntimeError("detect() called but no failure flag is set")
        t = self.detection_time()
        self.clock.advance(t, "failure_detection", machine=info["machine_id"])
        self.kvstore.clear_failure()
        return DetectionReport(
            machine_id=int(info["machine_id"]),
            iteration=int(info["iteration"]),
            detection_time=t,
        )
