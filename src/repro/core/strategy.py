"""Fault-tolerance strategy selection (paper Section 3 and Section 5.4).

Swift decides the strategy *before training starts*:

1. if the model state has at least one replica on another machine →
   **replication-based recovery** (lowest runtime and recovery overhead);
2. else if pipeline parallelism crosses machines *and logging is worth
   doing* → **logging-based recovery**;
3. else → **global checkpointing only**.

Periodic global checkpointing runs in every case, guarding against
catastrophic failures (loss of all replicas or log data).

"Worth doing" (Section 5.4) is a back-of-envelope calculus: the
per-iteration log volume must be transferable from GPU to CPU within the
pipeline's bubble time, and the log should not dwarf the model state
(CNN-scale activations disqualify themselves).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.optim.ops import optimizer_invertible
from repro.parallel.hybrid import ParallelLayout
from repro.parallel.schedules import bubble_ratio

__all__ = [
    "FTStrategy",
    "LoggingFeasibility",
    "logging_worth_it",
    "choose_strategy",
    "transformer_message_bytes",
]


class FTStrategy(str, Enum):
    """The paper's three fault-tolerance mechanisms (Section 3).

    One shared vocabulary across :class:`TrainerConfig`,
    :class:`~repro.api.FaultToleranceSpec`, and
    :class:`~repro.jobs.JobSpec`; the registry of
    :mod:`repro.core.policies` resolves each value to its mechanism.

    >>> FTStrategy("logging") is FTStrategy.LOGGING
    True
    >>> [s.value for s in FTStrategy]
    ['replication', 'logging', 'checkpoint_only']
    """

    REPLICATION = "replication"
    LOGGING = "logging"
    CHECKPOINT_ONLY = "checkpoint_only"


def transformer_message_bytes(
    micro_batch_size: int, seq_len: int, hidden_size: int, dtype_bytes: int = 4
) -> int:
    """Per-boundary activation/gradient size for transformer models.

    Section 5.4: "the intermediate activation/gradient size would be
    micro_batch_size × hidden_size × sequence_length in a micro-batch".
    """
    return micro_batch_size * seq_len * hidden_size * dtype_bytes


@dataclass(frozen=True)
class LoggingFeasibility:
    """Outcome of the Section 5.4 use-case calculus."""

    worth_it: bool
    #: per-iteration bytes the busiest sender must log
    log_bytes_per_iteration: float
    #: GPU→CPU copy time for those bytes
    copy_time: float
    #: bubble time available to hide the copy in
    bubble_time: float
    reason: str = ""


def logging_worth_it(
    log_bytes_per_iteration: float,
    iteration_time: float,
    num_stages: int,
    num_microbatches: int,
    pcie_bandwidth: float,
    model_state_bytes: float | None = None,
    log_to_state_ratio_cap: float = 10.0,
) -> LoggingFeasibility:
    """Decide whether logging stays off the critical path (Section 5.4).

    The bubble time per iteration is ``bubble_ratio(p, m) * iteration_time``;
    logging is worthwhile iff the PCIe copy of one iteration's log volume
    fits inside it.  Optionally also reject when the per-checkpoint-interval
    log volume far exceeds the model state ("it would be better to
    checkpoint a model when the logging size far exceeds the model size").
    """
    copy_time = log_bytes_per_iteration / pcie_bandwidth
    bubble_time = bubble_ratio(num_stages, num_microbatches) * iteration_time
    if model_state_bytes is not None and model_state_bytes > 0:
        if log_bytes_per_iteration > log_to_state_ratio_cap * model_state_bytes:
            return LoggingFeasibility(
                False, log_bytes_per_iteration, copy_time, bubble_time,
                reason="log volume far exceeds model state size "
                       "(CNN-scale activations)",
            )
    if copy_time > bubble_time:
        return LoggingFeasibility(
            False, log_bytes_per_iteration, copy_time, bubble_time,
            reason="PCIe copy does not fit in the bubble time",
        )
    return LoggingFeasibility(
        True, log_bytes_per_iteration, copy_time, bubble_time,
        reason="copy fits within bubble time",
    )


def choose_strategy(
    layout: ParallelLayout,
    feasibility: LoggingFeasibility | None = None,
    optimizer_name: str | None = None,
) -> FTStrategy:
    """The Section 3 decision chain.

    ``optimizer_name`` guards update-undo applicability (Table 1):
    replication-based recovery needs an invertible optimizer to resolve
    crash consistency without snapshots; if the optimizer is not
    invertible, Swift falls back to the next option.

    >>> from repro.parallel.hybrid import ParallelLayout, StagePlacement
    >>> replicated = ParallelLayout(                   # one stage, two
    ...     stages=[StagePlacement(0, ((0,), (1,)))])  # machine replicas
    >>> choose_strategy(replicated).value
    'replication'
    >>> choose_strategy(replicated, optimizer_name="AMSGrad").value
    'checkpoint_only'
    """
    undo_ok = optimizer_name is None or optimizer_invertible(optimizer_name)
    if layout.replication_covers_all_failures() and undo_ok:
        return FTStrategy.REPLICATION
    if (
        layout.is_pipeline_parallel()
        and layout.crosses_machines()
        and (feasibility is None or feasibility.worth_it)
    ):
        return FTStrategy.LOGGING
    return FTStrategy.CHECKPOINT_ONLY
