"""The tensor log: upstream, asynchronous, bubble-scheduled logging (§5.1).

Senders log every *inter-machine* (and, with selective logging, inter-
*group*) message they emit: intermediate activations in the forward pass,
gradients in the backward pass, each with (sender, receiver, iteration,
micro-batch, phase) metadata — the timestamp that orders replay.

Three logging modes model the paper's comparison:

* ``SYNC``   — ``torch.save`` before every send; the copy sits on the
  critical path (the paper's synchronous-logging baseline, Figure 8b/c).
* ``ASYNC``  — background copy overlapped with compute, but PCIe contention
  still leaks into iteration time (like CheckFreq's async persist, §2.2).
* ``BUBBLE`` — Swift's design: copies wait for pipeline bubbles; overhead
  appears only if an iteration's log volume exceeds what PCIe can move
  within that stage's bubble time.

Garbage collection: a global checkpoint obsoletes all earlier records, so
the log size is bounded by (checkpoint interval) × (per-iteration volume)
— the quantity selective logging constrains (§5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.cluster.device import Device
from repro.cluster.topology import Cluster
from repro.comm.p2p import Message, Transport
from repro.errors import LogIntegrityError
from repro.parallel.schedules import ScheduleTiming
from repro.utils.pool import PooledBuffer

__all__ = ["LoggingMode", "LogRecord", "GroupingPlan", "TensorLog"]


class LoggingMode(str, Enum):
    """When the GPU->CPU log copy runs relative to the pipeline (§5.1).

    ``SYNC`` blocks the iteration, ``ASYNC`` overlaps at an
    interference cost, ``BUBBLE`` hides the copy inside pipeline
    bubbles (the paper's default when the §5.4 calculus allows it).

    >>> LoggingMode("bubble") is LoggingMode.BUBBLE
    True
    """

    SYNC = "sync"
    ASYNC = "async"
    BUBBLE = "bubble"


@dataclass(frozen=True)
class LogRecord:
    """One logged message (raw tensor + replay-ordering metadata)."""

    sender_stage: int
    receiver_stage: int
    sender_machine: int
    receiver_machine: int
    iteration: int
    microbatch: int
    phase: str  # "fwd" or "bwd"
    seq: int
    tensor: np.ndarray = field(compare=False, repr=False)
    #: arena buffer shared with the transport message (zero-copy logging);
    #: released back to the pool when the record is garbage-collected
    buffer: PooledBuffer | None = field(
        default=None, compare=False, repr=False
    )

    @property
    def nbytes(self) -> int:
        return int(self.tensor.nbytes)


@dataclass(frozen=True)
class GroupingPlan:
    """Machine grouping for selective logging (§5.3).

    Only messages crossing a *group* boundary are logged; with singleton
    groups (the default) this degenerates to logging all inter-machine
    traffic.

    >>> plan = GroupingPlan.singletons([0, 1, 2])
    >>> plan.groups
    ((0,), (1,), (2,))
    >>> GroupingPlan(((0, 1), (2,))).group_of(1)
    0
    """

    groups: tuple[tuple[int, ...], ...]

    @staticmethod
    def singletons(machine_ids: list[int]) -> "GroupingPlan":
        return GroupingPlan(tuple((m,) for m in machine_ids))

    @staticmethod
    def of(groups: list[list[int]]) -> "GroupingPlan":
        return GroupingPlan(tuple(tuple(g) for g in groups))

    def group_of(self, machine_id: int) -> int:
        for gi, group in enumerate(self.groups):
            if machine_id in group:
                return gi
        raise KeyError(f"machine {machine_id} not in any group")

    def same_group(self, a: int, b: int) -> bool:
        return self.group_of(a) == self.group_of(b)

    def group_machines(self, machine_id: int) -> tuple[int, ...]:
        return self.groups[self.group_of(machine_id)]

    @property
    def num_groups(self) -> int:
        return len(self.groups)


class TensorLog:
    """Sender-side tensor log attached to a pipeline transport."""

    def __init__(
        self,
        cluster: Cluster,
        grouping: GroupingPlan | None = None,
        mode: LoggingMode = LoggingMode.BUBBLE,
        async_interference: float = 0.25,
        precision: str = "full",
    ):
        if precision not in ("full", "fp16"):
            raise ValueError(f"unknown logging precision {precision!r}")
        self.cluster = cluster
        self.grouping = grouping
        self.mode = mode
        #: "fp16" halves the logged volume at the cost of exactness —
        #: the mixed-precision extension the paper sketches in Section 8.
        #: Replay then recovers an approximately (not bitwise) equal state.
        self.precision = precision
        #: PCIe-contention leak factor for plain ASYNC mode
        self.async_interference = async_interference
        #: the transport's buffer arena, when pooled messaging is wired
        #: (set by SwiftTrainer); gc() advances its quarantine epoch
        self.pool = None
        #: (receiver_stage, iteration, microbatch, phase) -> record
        self._index: dict[tuple[int, int, int, str], LogRecord] = {}
        #: per-sender-machine record keys (for failure drops and accounting)
        self._by_machine: dict[int, list[tuple[int, int, int, str]]] = {}
        #: bytes logged per sender stage in the current iteration
        self._iter_bytes_by_stage: dict[int, int] = {}
        #: total bytes logged per iteration (history for Table 3)
        self.bytes_per_iteration: dict[int, int] = {}
        self._uploaded_bytes = 0

    # -- wiring ---------------------------------------------------------------
    def attach(self, transport: Transport) -> None:
        transport.add_tap(self.tap)

    def should_log(self, src_machine: int, dst_machine: int) -> bool:
        if src_machine == dst_machine:
            return False  # GPU-to-GPU within a machine is never logged
        if self.grouping is not None and self.grouping.same_group(
            src_machine, dst_machine
        ):
            return False  # intra-group traffic skipped (selective logging)
        return True

    def tap(self, msg: Message, src_dev: Device, dst_dev: Device) -> None:
        src_m = src_dev.machine.machine_id
        dst_m = dst_dev.machine.machine_id
        if not self.should_log(src_m, dst_m):
            return
        buffer = None
        if self.precision == "fp16":
            # down-cast allocates a fresh (private) half-precision array
            tensor = np.asarray(msg.tensor).astype(np.float16)
        elif msg.buffer is not None:
            # zero-copy logging: share the message's pooled read-only
            # tensor instead of cloning it a second time
            tensor = msg.tensor
            buffer = msg.buffer.retain()
        else:
            tensor = np.array(msg.tensor, copy=True)
        record = LogRecord(
            sender_stage=msg.src_rank,
            receiver_stage=msg.dst_rank,
            sender_machine=src_m,
            receiver_machine=dst_m,
            iteration=msg.iteration,
            microbatch=msg.microbatch,
            phase=msg.phase,
            seq=msg.seq,
            tensor=tensor,
            buffer=buffer,
        )
        key = (msg.dst_rank, msg.iteration, msg.microbatch, msg.phase)
        stale = self._index.get(key)
        if stale is not None and stale.buffer is not None:
            stale.buffer.release()  # a re-run overwrote this record
        self._index[key] = record
        self._by_machine.setdefault(src_m, []).append(key)
        self._iter_bytes_by_stage[msg.src_rank] = (
            self._iter_bytes_by_stage.get(msg.src_rank, 0) + record.nbytes
        )
        self.bytes_per_iteration[msg.iteration] = (
            self.bytes_per_iteration.get(msg.iteration, 0) + record.nbytes
        )

    # -- timing hook (plugged into PipelineEngine.overhead_hooks) -----------
    def make_overhead_hook(self):
        """Return a hook charging this iteration's logging overhead.

        The hook also resets the per-iteration byte counters, so it must be
        registered exactly once per engine.
        """

        def hook(timing: ScheduleTiming) -> tuple[str, float]:
            pcie = self.cluster.bandwidth.pcie
            worst = 0.0
            for stage, nbytes in self._iter_bytes_by_stage.items():
                copy = nbytes / pcie
                if self.mode is LoggingMode.SYNC:
                    overhead = copy
                elif self.mode is LoggingMode.ASYNC:
                    overhead = self.async_interference * copy
                else:  # BUBBLE: only the spill beyond the bubble window
                    bubble = (
                        timing.stage_bubble[stage]
                        if stage < len(timing.stage_bubble)
                        else 0.0
                    )
                    overhead = max(0.0, copy - bubble)
                worst = max(worst, overhead)
            self._iter_bytes_by_stage.clear()
            return ("logging", worst)

        return hook

    # -- queries ---------------------------------------------------------------
    def query(
        self, receiver_stage: int, iteration: int, microbatch: int, phase: str
    ) -> LogRecord:
        """Fetch the record replay needs, or fail loudly (§1: a missing
        record makes precise recovery impossible)."""
        key = (receiver_stage, iteration, microbatch, phase)
        try:
            return self._index[key]
        except KeyError:
            raise LogIntegrityError(
                f"missing log record for stage {receiver_stage}, iteration "
                f"{iteration}, microbatch {microbatch}, phase {phase!r}"
            ) from None

    def has(self, receiver_stage: int, iteration: int, microbatch: int,
            phase: str) -> bool:
        return (receiver_stage, iteration, microbatch, phase) in self._index

    def total_bytes(self) -> int:
        return sum(r.nbytes for r in self._index.values())

    def records_from_machine(self, machine_id: int) -> list[LogRecord]:
        return [self._index[k] for k in self._by_machine.get(machine_id, [])
                if k in self._index]

    # -- lifecycle -----------------------------------------------------------
    def drop_machine(self, machine_id: int) -> int:
        """A sender machine crashed: its log records are gone (volatile).

        Returns the number of records dropped.  Replay never needs a failed
        machine's own records (upstream backup), but cascading-failure
        handling must know they are unavailable.
        """
        keys = self._by_machine.pop(machine_id, [])
        dropped = 0
        for key in keys:
            record = self._index.pop(key, None)
            if record is not None:
                if record.buffer is not None:
                    record.buffer.release()
                dropped += 1
        return dropped

    def gc(self, checkpoint_iteration: int) -> int:
        """Drop records older than a completed global checkpoint.

        Returns bytes freed.  This is what bounds log storage by the
        checkpoint interval (§5.1 "Garbage collection") — and what returns
        pooled tensor buffers to the arena for reuse.
        """
        if self.pool is not None:
            # age the quarantine generations BEFORE this round's releases:
            # buffers freed now stay unallocatable for two more
            # checkpoints, protecting receiver-retained views
            self.pool.advance_epoch()
        freed = 0
        doomed = [
            k for k, r in self._index.items() if r.iteration < checkpoint_iteration
        ]
        for key in doomed:
            record = self._index[key]
            freed += record.nbytes
            if record.buffer is not None:
                record.buffer.release()
            del self._index[key]
        for machine, keys in self._by_machine.items():
            self._by_machine[machine] = [k for k in keys if k in self._index]
        for it in [i for i in self.bytes_per_iteration if i < checkpoint_iteration]:
            del self.bytes_per_iteration[it]
        return freed

    # -- recovery-time transfer accounting ------------------------------------
    def upload_bytes_for(self, iterations: range, exclude_machine: int) -> int:
        """Bytes surviving machines must upload to the global store."""
        return sum(
            r.nbytes
            for r in self._index.values()
            if r.iteration in iterations and r.sender_machine != exclude_machine
        )
