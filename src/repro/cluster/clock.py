"""Virtual time for the simulated cluster.

All throughput and recovery-time results in this reproduction come from a
:class:`SimClock` advanced by the analytic cost model — the substitute for
wall-clock measurement on the paper's 16-machine testbed.  The clock also
keeps a tagged event log so benchmarks can reconstruct timelines (Figures
3, 8, and 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SimClock", "ClockEvent"]


@dataclass(frozen=True)
class ClockEvent:
    """A timestamped, labelled interval on the simulated timeline."""

    start: float
    end: float
    label: str
    meta: dict = field(default_factory=dict, compare=False)

    @property
    def duration(self) -> float:
        return self.end - self.start


class SimClock:
    """Monotonic simulated clock with an interval event log."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self.events: list[ClockEvent] = []

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float, label: str = "", **meta: object) -> ClockEvent:
        """Move time forward and record the interval.

        Negative durations are a programming error in a cost model and are
        rejected loudly rather than silently clamped.
        """
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time {seconds}")
        start = self._now
        self._now += seconds
        event = ClockEvent(start, self._now, label, dict(meta))
        if label:
            self.events.append(event)
        return event

    def advance_to(self, timestamp: float, label: str = "", **meta: object) -> None:
        """Jump forward to an absolute time (no-op if already past it)."""
        if timestamp > self._now:
            self.advance(timestamp - self._now, label, **meta)

    def events_labelled(self, label: str) -> list[ClockEvent]:
        return [e for e in self.events if e.label == label]

    def total_time(self, label: str) -> float:
        """Total simulated seconds spent in intervals with this label."""
        return sum(e.duration for e in self.events_labelled(label))

    def reset(self) -> None:
        self._now = 0.0
        self.events.clear()
