"""Persistent storage: local NVMe disks and an HDFS-like global store.

Both are modelled as in-memory blob stores with bandwidth-based transfer
costs.  The global store stands in for the paper's HDFS cluster (Section 7
testbed): logging files are uploaded there by surviving machines and
downloaded by replacements (Figure 6b steps 3-4), optionally *chunked* so
upload, download, and replay pipeline with each other (Section 5.1: "steps
3, 4, and 5 can be executed in a pipeline by chunking the logging file").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import StorageError

__all__ = ["Blob", "LocalDisk", "GlobalStore", "pipelined_transfer_time"]

GB = 1e9


@dataclass
class Blob:
    """A stored object: opaque payload plus its size for the cost model."""

    key: str
    nbytes: int
    payload: object = None


class LocalDisk:
    """Per-machine NVMe disk with distinct read and write bandwidths."""

    def __init__(self, write_bw: float = 2.0 * GB, read_bw: float = 3.0 * GB):
        self.write_bw = float(write_bw)
        self.read_bw = float(read_bw)
        self._blobs: dict[str, Blob] = {}

    def write(self, key: str, nbytes: int, payload: object = None) -> float:
        """Store a blob; returns the simulated write time in seconds."""
        self._blobs[key] = Blob(key, int(nbytes), payload)
        return nbytes / self.write_bw

    def read(self, key: str) -> tuple[Blob, float]:
        """Fetch a blob; returns (blob, simulated read seconds)."""
        blob = self._blobs[key]
        return blob, blob.nbytes / self.read_bw

    def delete(self, key: str) -> None:
        self._blobs.pop(key, None)

    def __contains__(self, key: str) -> bool:
        return key in self._blobs

    def keys(self) -> list[str]:
        return list(self._blobs)

    def used_bytes(self) -> int:
        return sum(b.nbytes for b in self._blobs.values())


class GlobalStore:
    """Cluster-wide durable blob store (the HDFS substitute).

    Survives any machine failure.  Upload/download costs are charged at the
    machine's network bandwidth (the store is assumed wide enough not to be
    the bottleneck itself; contention appears only through the per-machine
    link, which is where the paper observed the Figure 9 transfer
    bottleneck).
    """

    def __init__(self, network_bw: float = 5.0 * GB):
        self.network_bw = float(network_bw)
        self._blobs: dict[str, Blob] = {}
        # [start, end) simulated-time windows during which the store is
        # unreachable (repro.chaos storage_outage events land here)
        self.outages: list[tuple[float, float]] = []

    def add_outage(self, start: float, end: float) -> None:
        """Declare an [start, end) window during which requests fail.

        Timestamps are in the caller's simulated-time domain; operations
        that pass ``now`` inside any declared window raise
        :class:`~repro.errors.StorageError`.  Operations that omit
        ``now`` keep the legacy always-available behaviour.
        """
        if end <= start:
            raise ValueError(f"empty outage window [{start}, {end})")
        self.outages.append((float(start), float(end)))

    def in_outage(self, now: float) -> bool:
        """True when ``now`` falls inside any declared outage window."""
        return any(start <= now < end for start, end in self.outages)

    def _check_available(self, op: str, key: str, now: float | None) -> None:
        if now is not None and self.in_outage(now):
            raise StorageError(
                f"global store unavailable at t={now:g}: {op} {key!r} "
                "hit an outage window"
            )

    def upload(
        self, key: str, nbytes: int, payload: object = None,
        now: float | None = None,
    ) -> float:
        self._check_available("upload", key, now)
        self._blobs[key] = Blob(key, int(nbytes), payload)
        return nbytes / self.network_bw

    def download(
        self, key: str, now: float | None = None
    ) -> tuple[Blob, float]:
        self._check_available("download", key, now)
        blob = self._blobs[key]
        return blob, blob.nbytes / self.network_bw

    def delete(self, key: str) -> None:
        self._blobs.pop(key, None)

    def delete_prefix(self, prefix: str) -> int:
        """Garbage-collect blobs under a key prefix; returns bytes freed."""
        doomed = [k for k in self._blobs if k.startswith(prefix)]
        freed = sum(self._blobs[k].nbytes for k in doomed)
        for k in doomed:
            del self._blobs[k]
        return freed

    def __contains__(self, key: str) -> bool:
        return key in self._blobs

    def keys(self) -> list[str]:
        return list(self._blobs)

    def used_bytes(self) -> int:
        return sum(b.nbytes for b in self._blobs.values())


def pipelined_transfer_time(
    nbytes: float, stage_bandwidths: list[float], num_chunks: int = 1
) -> float:
    """Time to move ``nbytes`` through a chain of bandwidth-limited stages.

    With one chunk the stages serialize (sum of times); with many chunks
    they pipeline and the bottleneck stage dominates:

        T = (nbytes/num_chunks) * sum(1/bw) + (num_chunks-1) * (nbytes/num_chunks) / min(bw)

    This models Figure 6b's upload → download → replay chain when the
    logging file is chunked.
    """
    if nbytes <= 0:
        return 0.0
    if num_chunks < 1:
        raise ValueError("num_chunks must be >= 1")
    chunk = nbytes / num_chunks
    fill = sum(chunk / bw for bw in stage_bandwidths)
    drain = (num_chunks - 1) * chunk / min(stage_bandwidths)
    return fill + drain
