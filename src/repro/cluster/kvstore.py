"""Global key-value store for failure signalling.

The paper co-locates a KV store with the master (rank 0): a worker that
catches an asynchronous NCCL error sets a failure flag there, and all other
workers poll the flag and abort their communicators (Section 6, "Failure
detection").  This module reproduces that protocol over simulated time.
"""

from __future__ import annotations

__all__ = ["KVStore", "FAILURE_FLAG"]

FAILURE_FLAG = "swift/failure_flag"


class KVStore:
    """A tiny strongly-consistent KV store (assumed to survive failures).

    In the paper the store lives on the master machine; a master failure is
    a catastrophic failure handled by periodic global checkpointing, which
    the trainer also implements, so modelling the store as durable is safe.
    """

    def __init__(self) -> None:
        self._data: dict[str, object] = {}
        #: polling interval workers use for the failure flag, seconds
        self.poll_interval = 0.005

    def set(self, key: str, value: object) -> None:
        self._data[key] = value

    def get(self, key: str, default: object = None) -> object:
        return self._data.get(key, default)

    def delete(self, key: str) -> None:
        self._data.pop(key, None)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    # -- failure-flag protocol -------------------------------------------------
    def raise_failure(self, machine_id: int, iteration: int) -> None:
        """Record that a failure was observed (idempotent)."""
        if FAILURE_FLAG not in self._data:
            self._data[FAILURE_FLAG] = {
                "machine_id": machine_id,
                "iteration": iteration,
            }

    def failure_raised(self) -> bool:
        return FAILURE_FLAG in self._data

    def failure_info(self) -> dict | None:
        value = self._data.get(FAILURE_FLAG)
        return dict(value) if isinstance(value, dict) else None

    def clear_failure(self) -> None:
        self._data.pop(FAILURE_FLAG, None)
