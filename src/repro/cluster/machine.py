"""Simulated machine: a set of devices, a local disk, and fail-stop state."""

from __future__ import annotations

from repro.cluster.device import Device, GiB
from repro.cluster.storage import LocalDisk
from repro.errors import MachineFailure

__all__ = ["Machine"]


class Machine:
    """One physical server (the failure domain of the fail-stop model).

    The paper's key observation about failure granularity: "GPUs are rare
    to fail individually, while a machine crash is more common" (Section
    5.1).  Failures in this library therefore happen at machine scope: all
    devices wipe, the CPU memory wipes, but the local disk — and anything
    persisted to it — survives a *process* crash, while the global store
    survives even a permanent machine loss.
    """

    def __init__(
        self,
        machine_id: int,
        num_devices: int = 8,
        device_memory: int = 32 * GiB,
        cpu_memory: int = 1536 * GiB,
        disk: LocalDisk | None = None,
    ):
        self.machine_id = machine_id
        self.alive = True
        #: how many times this slot's hardware has failed (the signal
        #: failure-aware placement in :mod:`repro.jobs` steers away from)
        self.failure_count = 0
        self.devices = [
            Device(machine_id * 1000 + i, self, device_memory)
            for i in range(num_devices)
        ]
        self.cpu_memory = int(cpu_memory)
        self.disk = disk or LocalDisk()
        #: CPU-memory staging area (snapshots, logging buffers)
        self._cpu_store: dict[str, object] = {}

    # -- fail-stop -----------------------------------------------------------
    def fail(self) -> None:
        """Crash the machine: all volatile state is lost."""
        if self.alive:
            self.failure_count += 1
        self.take_offline()

    def replace(self) -> None:
        """Bring up a replacement with the same identity but empty state.

        This models the paper's "a replacement machine will be added to the
        training job" (Section 3); recovery then repopulates its state.
        """
        self.alive = True
        for dev in self.devices:
            dev.wipe()
        self._cpu_store.clear()

    def take_offline(self) -> None:
        """Mark the machine down without recording a new hardware failure.

        Used by the multi-job scheduler to undo an over-eager replacement:
        a job's recovery replaces every failed machine it sees, including
        broken machines it does not own — those must stay down until their
        own repair/recovery actually happens.
        """
        self.alive = False
        for dev in self.devices:
            dev.wipe()
        self._cpu_store.clear()

    def check_alive(self) -> None:
        if not self.alive:
            raise MachineFailure(self.machine_id)

    # -- CPU staging -----------------------------------------------------------
    def cpu_put(self, key: str, value: object) -> None:
        self.check_alive()
        self._cpu_store[key] = value

    def cpu_get(self, key: str) -> object:
        self.check_alive()
        return self._cpu_store[key]

    def cpu_pop(self, key: str) -> object:
        self.check_alive()
        return self._cpu_store.pop(key)

    def cpu_contains(self, key: str) -> bool:
        return self.alive and key in self._cpu_store

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "alive" if self.alive else "failed"
        return f"Machine(id={self.machine_id}, devices={len(self.devices)}, {state})"
