"""Failure injection: deterministic kill schedules and MTBF sampling.

Three modes cover the paper's experiments and beyond:

* **Deterministic** — "kill a machine (rank 1) at the beginning of
  iteration 150" (Section 7): a :class:`FailureSchedule` of exact
  ``(iteration, phase, machine)`` triggers, including *mid-update* points
  that expose the crash-consistency problem.
* **Stochastic** — the simulation study (Section 7.3) injects failures
  "uniformly randomly during training, assuming a 17-hour
  median-time-between-failure": :class:`MTBFSampler` draws exponential
  inter-failure times with a given median.
* **Scenario-driven** — :mod:`repro.chaos` samples correlated,
  distribution-driven failure workloads (rack bursts, flaky nodes,
  cascades) into replayable traces and lowers them onto the same
  :class:`FailureSchedule` the engines already consume.

Engines and trainers depend only on the :class:`FailureSource` protocol
— anything with ``pop_due``/``pending`` — of which
:class:`FailureSchedule` is the canonical implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Protocol, runtime_checkable

import numpy as np

__all__ = [
    "FailurePhase",
    "FailureEvent",
    "FailureSource",
    "FailureSchedule",
    "MTBFSampler",
]


class FailurePhase(str, Enum):
    """Where in an iteration the crash lands (granularity of Section 2.3)."""

    ITERATION_START = "iteration_start"
    FORWARD = "forward"
    BACKWARD = "backward"
    #: between two layer-wise parameter updates — the crash-consistency window
    MID_UPDATE = "mid_update"
    ITERATION_END = "iteration_end"
    #: at the boundary *before* a named pipeline instruction (mid-bubble,
    #: mid-p2p, pre-step — any point the schedule program can name)
    INSTRUCTION = "instruction"


@dataclass(frozen=True)
class FailureEvent:
    """One machine crash at a precise logical point."""

    machine_id: int
    iteration: int
    phase: FailurePhase = FailurePhase.ITERATION_START
    #: for MID_UPDATE: how many parameters were already updated when the
    #: crash hit (the "some layers updated, others not" state of Figure 4).
    #: For INSTRUCTION: how many matching instruction boundaries on the
    #: failed machine are skipped before the crash fires.
    after_updates: int = 0
    #: for INSTRUCTION: the pipeline instruction op name (e.g. "SendGrad",
    #: "OptimizerStep") at whose boundary the crash lands
    instruction: str | None = None


@runtime_checkable
class FailureSource(Protocol):
    """What the trainer/engines need from a failure injector.

    A source is *consumed*: ``pop_due(iteration, phase)`` removes and
    returns the events firing at that logical point, and ``pending()``
    lists what is still to come.  :class:`FailureSchedule` is the
    canonical static implementation; :mod:`repro.chaos` produces
    schedules from sampled scenario traces
    (:meth:`repro.chaos.FailureTrace.to_schedule`).

    >>> isinstance(FailureSchedule(), FailureSource)
    True
    """

    def pop_due(self, iteration: int, phase: "FailurePhase") -> list["FailureEvent"]:
        """Remove and return all events due at (iteration, phase)."""
        ...

    def pending(self) -> list["FailureEvent"]:
        """Events not yet consumed, in firing order."""
        ...


class FailureSchedule:
    """A deterministic list of failure events consumed by engines."""

    def __init__(self, events: list[FailureEvent] | None = None):
        self._events: list[FailureEvent] = sorted(
            events or [], key=lambda e: (e.iteration, e.machine_id)
        )

    def add(self, event: FailureEvent) -> "FailureSchedule":
        self._events.append(event)
        self._events.sort(key=lambda e: (e.iteration, e.machine_id))
        return self

    def pending(self) -> list[FailureEvent]:
        return list(self._events)

    def pop_due(self, iteration: int, phase: FailurePhase) -> list[FailureEvent]:
        """Remove and return all events due at (iteration, phase)."""
        due = [
            e for e in self._events if e.iteration == iteration and e.phase == phase
        ]
        for e in due:
            self._events.remove(e)
        return due

    def __len__(self) -> int:
        return len(self._events)


@dataclass
class MTBFSampler:
    """Exponential failure-time sampler parameterised by *median* TBF.

    The exponential with rate λ has median ln(2)/λ, so a 17-hour median
    (the paper's assumption, following Maeng et al.) gives
    λ = ln(2)/17h.
    """

    median_hours: float = 17.0
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.median_hours <= 0:
            raise ValueError("median_hours must be positive")
        self._rng = np.random.default_rng(self.seed)

    @property
    def rate_per_hour(self) -> float:
        return float(np.log(2.0) / self.median_hours)

    def next_failure_hours(self) -> float:
        """Hours until the next failure (exponential draw)."""
        return float(self._rng.exponential(1.0 / self.rate_per_hour))

    def failure_times_within(self, horizon_hours: float) -> list[float]:
        """All failure timestamps (hours) within a training horizon."""
        times: list[float] = []
        t = self.next_failure_hours()
        while t < horizon_hours:
            times.append(t)
            t += self.next_failure_hours()
        return times

    def pick_machine(self, num_machines: int) -> int:
        """Uniformly choose which machine fails (equal-probability model)."""
        return int(self._rng.integers(num_machines))
