"""Simulated accelerator device (GPU) with volatile state and memory model.

A device hosts exactly one *worker*'s volatile model state (parameters and
optimizer state live "mainly ... on the GPUs", paper Section 3).  A machine
crash wipes every device on it — that wipe is what recovery must repair.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import MachineFailure

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.machine import Machine

__all__ = ["Device"]

GiB = 1024**3


class Device:
    """One GPU: volatile key/value tensor store plus a memory accountant."""

    def __init__(self, device_id: int, machine: "Machine", memory_bytes: int = 32 * GiB):
        self.device_id = device_id
        self.machine = machine
        self.memory_bytes = int(memory_bytes)
        self._store: dict[str, np.ndarray] = {}
        #: extra memory claimed by activations/workspace, for occupancy checks
        self.workspace_bytes = 0

    # -- liveness ------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self.machine.alive

    @property
    def local_index(self) -> int:
        """Index of this device within its machine (the slot coordinate)."""
        return self.machine.devices.index(self)

    def check_alive(self) -> None:
        if not self.alive:
            raise MachineFailure(self.machine.machine_id)

    # -- volatile store -------------------------------------------------------
    def put(self, key: str, value: np.ndarray) -> None:
        self.check_alive()
        self._store[key] = value

    def get(self, key: str) -> np.ndarray:
        self.check_alive()
        return self._store[key]

    def pop(self, key: str) -> np.ndarray:
        self.check_alive()
        return self._store.pop(key)

    def __contains__(self, key: str) -> bool:
        return self.alive and key in self._store

    def wipe(self) -> None:
        """Fail-stop: all volatile state vanishes."""
        self._store.clear()
        self.workspace_bytes = 0

    # -- memory accounting -------------------------------------------------------
    def used_bytes(self) -> int:
        return (
            sum(int(v.nbytes) for v in self._store.values()) + self.workspace_bytes
        )

    def free_bytes(self) -> int:
        return self.memory_bytes - self.used_bytes()

    def fits(self, nbytes: int) -> bool:
        """Would an extra allocation of ``nbytes`` fit on this device?

        This is the check behind Section 2.2: a model-state snapshot that
        does not fit on the GPU must be copied to CPU memory over PCIe,
        which is what makes CheckFreq/Elastic-Horovod snapshots expensive
        for large models.
        """
        return nbytes <= self.free_bytes()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Device(id={self.device_id}, machine={self.machine.machine_id}, "
            f"used={self.used_bytes() / GiB:.2f}GiB)"
        )
