"""Simulated cluster substrate: machines, devices, storage, failures, time."""

from repro.cluster.clock import ClockEvent, SimClock
from repro.cluster.device import Device, GiB
from repro.cluster.failures import (
    FailureEvent,
    FailurePhase,
    FailureSchedule,
    FailureSource,
    MTBFSampler,
)
from repro.cluster.kvstore import FAILURE_FLAG, KVStore
from repro.cluster.machine import Machine
from repro.cluster.storage import (
    Blob,
    GlobalStore,
    LocalDisk,
    pipelined_transfer_time,
)
from repro.cluster.topology import BandwidthModel, Cluster

__all__ = [
    "SimClock",
    "ClockEvent",
    "Device",
    "GiB",
    "Machine",
    "Cluster",
    "BandwidthModel",
    "KVStore",
    "FAILURE_FLAG",
    "LocalDisk",
    "GlobalStore",
    "Blob",
    "pipelined_transfer_time",
    "FailureEvent",
    "FailurePhase",
    "FailureSchedule",
    "FailureSource",
    "MTBFSampler",
]
