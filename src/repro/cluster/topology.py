"""Cluster topology and bandwidth model.

Defaults follow the paper's testbed (Section 7): DGX-2 class machines with
eight 32 GB V100s on NVLink, 40 Gbps Ethernet between machines, NVMe local
disks, and an HDFS-like global store built on the same machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.device import Device, GiB
from repro.cluster.kvstore import KVStore
from repro.cluster.machine import Machine
from repro.cluster.storage import GlobalStore

__all__ = ["BandwidthModel", "Cluster"]

GB = 1e9


@dataclass(frozen=True)
class BandwidthModel:
    """Link bandwidths in bytes/second (paper testbed defaults)."""

    #: inter-machine Ethernet (40 Gbps = 5 GB/s)
    network: float = 5.0 * GB
    #: intra-machine GPU-GPU (NVLink)
    nvlink: float = 150.0 * GB
    #: GPU <-> CPU copy path (PCIe 3.0 x16 effective)
    pcie: float = 12.0 * GB
    #: fixed per-message latency, seconds
    latency: float = 20e-6


class Cluster:
    """A set of machines plus the shared services (KV store, global store).

    The cluster is the root object of every scenario: engines place workers
    on its devices, the failure injector kills its machines, and the cost
    model prices transfers with its :class:`BandwidthModel`.
    """

    def __init__(
        self,
        num_machines: int,
        devices_per_machine: int = 8,
        device_memory: int = 32 * GiB,
        bandwidth: BandwidthModel | None = None,
    ):
        if num_machines < 1:
            raise ValueError("cluster needs at least one machine")
        self.bandwidth = bandwidth or BandwidthModel()
        self.machines = [
            Machine(m, devices_per_machine, device_memory)
            for m in range(num_machines)
        ]
        self.kvstore = KVStore()
        self.global_store = GlobalStore(network_bw=self.bandwidth.network)
        #: monotonically increasing ids for replacement machines
        self._replacements: list[int] = []
        #: slot accounting: (machine_id, device_idx) -> owner tag.  Engines
        #: themselves do not consult the ledger (a single-job run owns the
        #: whole cluster); the :mod:`repro.jobs` scheduler uses it to share
        #: one cluster between jobs and the spare pool.
        self._slot_owner: dict[tuple[int, int], str] = {}

    # -- lookup ------------------------------------------------------------
    @property
    def num_machines(self) -> int:
        return len(self.machines)

    def machine(self, machine_id: int) -> Machine:
        return self.machines[machine_id]

    def device(self, machine_id: int, local_idx: int) -> Device:
        return self.machines[machine_id].devices[local_idx]

    def all_devices(self) -> list[Device]:
        return [d for m in self.machines for d in m.devices]

    def alive_machines(self) -> list[Machine]:
        return [m for m in self.machines if m.alive]

    def failed_machines(self) -> list[Machine]:
        return [m for m in self.machines if not m.alive]

    # -- slot accounting ------------------------------------------------------
    def reserve_slots(
        self, slots: list[tuple[int, int]], owner: str
    ) -> None:
        """Assign free ``(machine_id, device_idx)`` slots to ``owner``."""
        for slot in slots:
            holder = self._slot_owner.get(slot)
            if holder is not None and holder != owner:
                raise ValueError(
                    f"slot {slot} already owned by {holder!r}"
                )
        for slot in slots:
            self._slot_owner[slot] = owner

    def release_slots(
        self, slots: list[tuple[int, int]], owner: str | None = None
    ) -> None:
        """Return slots to the free pool (``owner`` asserts ownership)."""
        for slot in slots:
            holder = self._slot_owner.get(slot)
            if owner is not None and holder != owner:
                raise ValueError(
                    f"slot {slot} owned by {holder!r}, not {owner!r}"
                )
            self._slot_owner.pop(slot, None)

    def release_owner(self, owner: str) -> list[tuple[int, int]]:
        """Release every slot held by ``owner``; returns the freed slots."""
        freed = self.owned_slots(owner)
        for slot in freed:
            del self._slot_owner[slot]
        return freed

    def slot_owner(self, machine_id: int, device_idx: int) -> str | None:
        return self._slot_owner.get((machine_id, device_idx))

    def owned_slots(self, owner: str) -> list[tuple[int, int]]:
        return sorted(
            slot for slot, who in self._slot_owner.items() if who == owner
        )

    def owners_on_machine(self, machine_id: int) -> set[str]:
        """Distinct owners holding at least one slot on a machine."""
        return {
            who for (m, _), who in self._slot_owner.items() if m == machine_id
        }

    def free_slots(self) -> list[tuple[int, int]]:
        """Unowned slots on live machines, ordered by (machine, device)."""
        return [
            (m.machine_id, d)
            for m in self.machines
            if m.alive
            for d in range(len(m.devices))
            if (m.machine_id, d) not in self._slot_owner
        ]

    # -- failure handling ---------------------------------------------------
    def fail_machine(self, machine_id: int) -> None:
        self.machines[machine_id].fail()

    def replace_machine(self, machine_id: int) -> Machine:
        """Swap in a replacement for a failed machine (same slot/id)."""
        machine = self.machines[machine_id]
        machine.replace()
        self._replacements.append(machine_id)
        return machine

    # -- transfer pricing -----------------------------------------------------
    def same_machine(self, a: Device, b: Device) -> bool:
        return a.machine.machine_id == b.machine.machine_id

    def link_bandwidth(self, a: Device, b: Device) -> float:
        return self.bandwidth.nvlink if self.same_machine(a, b) else self.bandwidth.network

    def transfer_time(self, nbytes: float, a: Device, b: Device) -> float:
        """Point-to-point transfer time between two devices."""
        if nbytes <= 0:
            return self.bandwidth.latency
        return self.bandwidth.latency + nbytes / self.link_bandwidth(a, b)

    def pcie_time(self, nbytes: float) -> float:
        """GPU -> CPU (or back) copy time; the logging/snapshot cost unit."""
        return nbytes / self.bandwidth.pcie if nbytes > 0 else 0.0
