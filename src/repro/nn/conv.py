"""2-D convolution and pooling via im2col, with exact backward.

These power the Wide-ResNet workload (paper Table 2).  The im2col
formulation turns convolution into one large matrix multiply, which is the
recommended vectorization strategy for NumPy (loops only over the small
kernel window, never over batch or spatial extent).
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter
from repro.utils.seeding import RngStream

__all__ = ["Conv2d", "AvgPool2d", "GlobalAvgPool2d", "Flatten"]


def _im2col(
    x: np.ndarray, kh: int, kw: int, stride: int, pad: int
) -> tuple[np.ndarray, int, int]:
    """Unfold NCHW input into columns of shape (N, C*kh*kw, OH*OW)."""
    n, c, h, w = x.shape
    oh = (h + 2 * pad - kh) // stride + 1
    ow = (w + 2 * pad - kw) // stride + 1
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    cols = np.empty((n, c, kh, kw, oh, ow), dtype=x.dtype)
    for i in range(kh):
        i_end = i + stride * oh
        for j in range(kw):
            j_end = j + stride * ow
            cols[:, :, i, j, :, :] = x[:, :, i:i_end:stride, j:j_end:stride]
    return cols.reshape(n, c * kh * kw, oh * ow), oh, ow


def _col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Fold columns back into an NCHW gradient (adjoint of :func:`_im2col`)."""
    n, c, h, w = x_shape
    oh = (h + 2 * pad - kh) // stride + 1
    ow = (w + 2 * pad - kw) // stride + 1
    cols = cols.reshape(n, c, kh, kw, oh, ow)
    out = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    for i in range(kh):
        i_end = i + stride * oh
        for j in range(kw):
            j_end = j + stride * ow
            out[:, :, i:i_end:stride, j:j_end:stride] += cols[:, :, i, j, :, :]
    if pad:
        out = out[:, :, pad:-pad, pad:-pad]
    return out


class Conv2d(Module):
    """2-D convolution over NCHW inputs."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: RngStream | None = None,
    ):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        gen = (rng or RngStream(0, "conv")).generator("weight")
        fan_in = in_channels * kernel_size * kernel_size
        bound = 1.0 / np.sqrt(fan_in)
        self.weight = self.register_parameter(
            "weight",
            Parameter(
                gen.uniform(
                    -bound, bound, (out_channels, in_channels, kernel_size, kernel_size)
                )
            ),
        )
        self.bias = (
            self.register_parameter("bias", Parameter(np.zeros(out_channels)))
            if bias
            else None
        )
        self._cache: tuple[np.ndarray, tuple[int, int, int, int]] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        k, s, p = self.kernel_size, self.stride, self.padding
        cols, oh, ow = _im2col(x, k, k, s, p)
        self._cache = (cols, x.shape)
        w2d = self.weight.data.reshape(self.out_channels, -1)
        out = np.einsum("of,nfl->nol", w2d, cols, optimize=True)
        if self.bias is not None:
            out = out + self.bias.data[None, :, None]
        return out.reshape(x.shape[0], self.out_channels, oh, ow)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._cache is not None
        cols, x_shape = self._cache
        k, s, p = self.kernel_size, self.stride, self.padding
        n = grad_out.shape[0]
        g2d = grad_out.reshape(n, self.out_channels, -1)
        w_grad = np.einsum("nol,nfl->of", g2d, cols, optimize=True)
        self.weight.accumulate_grad(w_grad.reshape(self.weight.data.shape))
        if self.bias is not None:
            self.bias.accumulate_grad(g2d.sum(axis=(0, 2)))
        w2d = self.weight.data.reshape(self.out_channels, -1)
        col_grad = np.einsum("of,nol->nfl", w2d, g2d, optimize=True)
        return _col2im(col_grad, x_shape, k, k, s, p)


class AvgPool2d(Module):
    """Average pooling with square window and matching stride."""

    def __init__(self, kernel_size: int):
        super().__init__()
        self.kernel_size = kernel_size
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        k = self.kernel_size
        n, c, h, w = x.shape
        if h % k or w % k:
            raise ValueError(f"input {h}x{w} not divisible by pool size {k}")
        self._x_shape = x.shape
        return x.reshape(n, c, h // k, k, w // k, k).mean(axis=(3, 5))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._x_shape is not None
        k = self.kernel_size
        g = grad_out / (k * k)
        g = np.repeat(np.repeat(g, k, axis=2), k, axis=3)
        return g.reshape(self._x_shape)


class GlobalAvgPool2d(Module):
    """Average over all spatial positions, producing (N, C)."""

    def __init__(self) -> None:
        super().__init__()
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._x_shape is not None
        n, c, h, w = self._x_shape
        return np.broadcast_to(
            grad_out[:, :, None, None] / (h * w), self._x_shape
        ).copy()


class Flatten(Module):
    """Flatten all non-batch dimensions."""

    def __init__(self) -> None:
        super().__init__()
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._x_shape is not None
        return grad_out.reshape(self._x_shape)
