"""Normalization layers: LayerNorm (transformers) and BatchNorm2d (ResNets)."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter

__all__ = ["LayerNorm", "BatchNorm2d"]


class LayerNorm(Module):
    """Normalize over the trailing feature dimension."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = self.register_parameter("gamma", Parameter(np.ones(dim)))
        self.beta = self.register_parameter("beta", Parameter(np.zeros(dim)))
        self._cache: tuple[np.ndarray, np.ndarray] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean) * inv_std
        self._cache = (x_hat, inv_std)
        return x_hat * self.gamma.data + self.beta.data

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._cache is not None
        x_hat, inv_std = self._cache
        axes = tuple(range(grad_out.ndim - 1))
        self.gamma.accumulate_grad((grad_out * x_hat).sum(axis=axes))
        self.beta.accumulate_grad(grad_out.sum(axis=axes))
        g = grad_out * self.gamma.data
        n = x_hat.shape[-1]
        g_mean = g.mean(axis=-1, keepdims=True)
        gx_mean = (g * x_hat).mean(axis=-1, keepdims=True)
        return inv_std * (g - g_mean - x_hat * gx_mean) * (n / n)


class BatchNorm2d(Module):
    """Batch normalization over NCHW inputs with running statistics.

    Running statistics are part of the volatile model state: they live in
    the state dict so that checkpoints, replicas, and replayed recoveries
    all restore them (the paper's "model state" includes such buffers).
    """

    def __init__(self, channels: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.channels = channels
        self.eps = eps
        self.momentum = momentum
        self.gamma = self.register_parameter("gamma", Parameter(np.ones(channels)))
        self.beta = self.register_parameter("beta", Parameter(np.zeros(channels)))
        # running stats are non-trainable state, registered as parameters so
        # they travel with state dicts but excluded from optimization
        self.running_mean = self.register_parameter(
            "running_mean", Parameter(np.zeros(channels), requires_grad=False)
        )
        self.running_var = self.register_parameter(
            "running_var", Parameter(np.ones(channels), requires_grad=False)
        )
        self._cache: tuple[np.ndarray, np.ndarray, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError(f"BatchNorm2d expects NCHW input, got ndim={x.ndim}")
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            n = x.shape[0] * x.shape[2] * x.shape[3]
            self.running_mean.data = (
                (1 - self.momentum) * self.running_mean.data + self.momentum * mean
            )
            unbiased = var * n / max(n - 1, 1)
            self.running_var.data = (
                (1 - self.momentum) * self.running_var.data + self.momentum * unbiased
            )
        else:
            mean = self.running_mean.data
            var = self.running_var.data
            n = 0
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        self._cache = (x_hat, inv_std, n)
        return x_hat * self.gamma.data[None, :, None, None] + self.beta.data[
            None, :, None, None
        ]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._cache is not None
        x_hat, inv_std, n = self._cache
        axes = (0, 2, 3)
        self.gamma.accumulate_grad((grad_out * x_hat).sum(axis=axes))
        self.beta.accumulate_grad(grad_out.sum(axis=axes))
        g = grad_out * self.gamma.data[None, :, None, None]
        if n == 0:  # eval mode: running stats are constants
            return g * inv_std[None, :, None, None]
        g_mean = g.mean(axis=axes, keepdims=True)
        gx_mean = (g * x_hat).mean(axis=axes, keepdims=True)
        return (
            inv_std[None, :, None, None] * (g - g_mean - x_hat * gx_mean)
        )
