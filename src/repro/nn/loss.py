"""Loss functions returning (loss value, input gradient)."""

from __future__ import annotations

import numpy as np

from repro.nn.attention import softmax

__all__ = ["CrossEntropyLoss", "MSELoss"]


class CrossEntropyLoss:
    """Softmax cross-entropy over the trailing class dimension.

    Accepts logits of shape ``(B, C)`` or ``(B, T, C)`` with integer targets
    of the leading shape.  ``backward`` returns the gradient w.r.t. logits
    already divided by the number of target elements (mean reduction).
    """

    def __init__(self) -> None:
        self._cache: tuple[np.ndarray, np.ndarray] | None = None

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        targets = np.asarray(targets, dtype=np.int64)
        probs = softmax(logits, axis=-1)
        flat_p = probs.reshape(-1, logits.shape[-1])
        flat_t = targets.reshape(-1)
        self._cache = (probs, targets)
        picked = flat_p[np.arange(flat_t.size), flat_t]
        return float(-np.log(np.clip(picked, 1e-12, None)).mean())

    __call__ = forward

    def backward(self) -> np.ndarray:
        assert self._cache is not None, "backward called before forward"
        probs, targets = self._cache
        grad = probs.copy()
        flat_g = grad.reshape(-1, grad.shape[-1])
        flat_t = targets.reshape(-1)
        flat_g[np.arange(flat_t.size), flat_t] -= 1.0
        return grad / flat_t.size

    def accuracy(self) -> float:
        """Fraction of targets where the argmax class is correct."""
        assert self._cache is not None
        probs, targets = self._cache
        pred = probs.argmax(axis=-1)
        return float((pred == targets).mean())


class MSELoss:
    """Mean squared error with mean reduction."""

    def __init__(self) -> None:
        self._cache: tuple[np.ndarray, np.ndarray] | None = None

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        self._cache = (pred, np.asarray(target, dtype=np.float64))
        return float(np.mean((pred - self._cache[1]) ** 2))

    __call__ = forward

    def backward(self) -> np.ndarray:
        assert self._cache is not None
        pred, target = self._cache
        return 2.0 * (pred - target) / pred.size
