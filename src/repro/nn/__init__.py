"""From-scratch NumPy neural-network framework (the PyTorch substitute).

Every layer implements an explicit, deterministic ``forward``/``backward``
pair — see :mod:`repro.nn.module` for why determinism and layer-granular
state matter to Swift.
"""

from repro.nn.activations import GELU, Dropout, Identity, ReLU, Tanh
from repro.nn.attention import MultiHeadSelfAttention, softmax, softmax_backward
from repro.nn.conv import AvgPool2d, Conv2d, Flatten, GlobalAvgPool2d
from repro.nn.embedding import Embedding, PositionalEmbedding
from repro.nn.linear import Linear
from repro.nn.loss import CrossEntropyLoss, MSELoss
from repro.nn.module import Module, Parameter
from repro.nn.normalization import BatchNorm2d, LayerNorm
from repro.nn.sequential import Sequential
from repro.nn.transformer import MLPBlock, TransformerEncoderLayer

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "Conv2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "ReLU",
    "GELU",
    "Tanh",
    "Dropout",
    "Identity",
    "LayerNorm",
    "BatchNorm2d",
    "Embedding",
    "PositionalEmbedding",
    "MultiHeadSelfAttention",
    "softmax",
    "softmax_backward",
    "TransformerEncoderLayer",
    "MLPBlock",
    "Sequential",
    "CrossEntropyLoss",
    "MSELoss",
]
