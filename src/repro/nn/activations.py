"""Element-wise activation layers (stateless apart from forward caches)."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.utils.seeding import RngStream

__all__ = ["ReLU", "GELU", "Tanh", "Dropout", "Identity"]

_SQRT_2_OVER_PI = np.sqrt(2.0 / np.pi)


class Identity(Module):
    """Pass-through layer (useful as a stage placeholder)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out


class ReLU(Module):
    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._mask is not None
        return np.where(self._mask, grad_out, 0.0)


class Tanh(Module):
    def __init__(self) -> None:
        super().__init__()
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._y = np.tanh(x)
        return self._y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._y is not None
        return grad_out * (1.0 - self._y**2)


class GELU(Module):
    """Gaussian error linear unit, tanh approximation (as in BERT/ViT)."""

    def __init__(self) -> None:
        super().__init__()
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        inner = _SQRT_2_OVER_PI * (x + 0.044715 * x**3)
        return 0.5 * x * (1.0 + np.tanh(inner))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._x is not None
        x = self._x
        inner = _SQRT_2_OVER_PI * (x + 0.044715 * x**3)
        t = np.tanh(inner)
        d_inner = _SQRT_2_OVER_PI * (1.0 + 3 * 0.044715 * x**2)
        grad = 0.5 * (1.0 + t) + 0.5 * x * (1.0 - t**2) * d_inner
        return grad_out * grad


class Dropout(Module):
    """Deterministic dropout: masks are drawn from a named RNG stream.

    Determinism matters for logging-based replay — a recovered worker must
    draw the *same* dropout masks as the pre-failure execution, so masks are
    keyed by a per-layer stream and an explicit epoch counter that recovery
    rewinds (analogous to the cuDNN-determinism measures of paper Section 6).
    """

    def __init__(self, p: float = 0.1, rng: RngStream | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng or RngStream(0, "dropout")
        self.counter = 0  # advanced once per forward; rewound on replay
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        gen = self.rng.generator("mask", self.counter)
        self.counter += 1
        self._mask = (gen.random(x.shape) >= self.p) / (1.0 - self.p)
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask
