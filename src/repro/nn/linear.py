"""Fully-connected layer with exact manual backward."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter
from repro.utils.seeding import RngStream

__all__ = ["Linear"]


class Linear(Module):
    """Affine map ``y = x @ W.T + b`` over the trailing dimension.

    Accepts inputs of shape ``(..., in_features)``; leading dimensions are
    treated as batch axes (needed for transformer inputs ``(B, T, H)``).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: RngStream | None = None,
    ):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        gen = (rng or RngStream(0, "linear")).generator("weight")
        bound = 1.0 / np.sqrt(in_features)
        self.weight = self.register_parameter(
            "weight", Parameter(gen.uniform(-bound, bound, (out_features, in_features)))
        )
        self.bias = (
            self.register_parameter("bias", Parameter(np.zeros(out_features)))
            if bias
            else None
        )
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        y = x @ self.weight.data.T
        if self.bias is not None:
            y = y + self.bias.data
        return y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._x is not None, "backward called before forward"
        x = self._x
        x2d = x.reshape(-1, self.in_features)
        g2d = grad_out.reshape(-1, self.out_features)
        self.weight.accumulate_grad(g2d.T @ x2d)
        if self.bias is not None:
            self.bias.accumulate_grad(g2d.sum(axis=0))
        return (grad_out @ self.weight.data).reshape(x.shape)
