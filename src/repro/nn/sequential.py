"""Sequential container — the canonical model shape for stage partitioning."""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from repro.nn.module import Module

__all__ = ["Sequential"]


class Sequential(Module):
    """Chain of sub-modules executed in order.

    Pipeline partitioning (:mod:`repro.parallel.partition`) slices a
    ``Sequential`` into contiguous stages; each stage is itself a
    ``Sequential``, so stages compose.
    """

    def __init__(self, layers: Sequence[Module] = ()):
        super().__init__()
        self.layers: list[Module] = []
        for layer in layers:
            self.append(layer)

    def append(self, layer: Module) -> "Sequential":
        idx = len(self.layers)
        self.layers.append(layer)
        self._modules[str(idx)] = layer
        return self

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self) -> Iterator[Module]:
        return iter(self.layers)

    def __getitem__(self, idx):
        if isinstance(idx, slice):
            return Sequential(self.layers[idx])
        return self.layers[idx]

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out
