"""Transformer encoder layer — the unit of pipeline partitioning.

In the paper's large-model experiments each transformer layer occupies one
GPU ("we use a 128-stage pipeline ... with each transformer layer occupying
one GPU"), so this module is exactly one pipeline stage of the BERT-128 and
ViT-128/32 workloads.
"""

from __future__ import annotations

import numpy as np

from repro.nn.activations import GELU
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.nn.normalization import LayerNorm
from repro.utils.seeding import RngStream

__all__ = ["TransformerEncoderLayer", "MLPBlock"]


class MLPBlock(Module):
    """Position-wise feed-forward block: Linear → GELU → Linear."""

    def __init__(self, dim: int, hidden_dim: int, rng: RngStream | None = None):
        super().__init__()
        rng = rng or RngStream(0, "mlp")
        self.fc1 = Linear(dim, hidden_dim, rng=rng.child("fc1"))
        self.act = GELU()
        self.fc2 = Linear(hidden_dim, dim, rng=rng.child("fc2"))

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.fc2(self.act(self.fc1(x)))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return self.fc1.backward(self.act.backward(self.fc2.backward(grad_out)))


class TransformerEncoderLayer(Module):
    """Pre-norm transformer layer: x + MHSA(LN(x)); x + MLP(LN(x))."""

    def __init__(
        self,
        dim: int,
        num_heads: int,
        mlp_ratio: float = 4.0,
        rng: RngStream | None = None,
    ):
        super().__init__()
        rng = rng or RngStream(0, "transformer_layer")
        self.norm1 = LayerNorm(dim)
        self.attn = MultiHeadSelfAttention(dim, num_heads, rng=rng.child("attn"))
        self.norm2 = LayerNorm(dim)
        self.mlp = MLPBlock(dim, int(dim * mlp_ratio), rng=rng.child("mlp"))

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = x + self.attn(self.norm1(x))
        x = x + self.mlp(self.norm2(x))
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        g = grad_out + self.norm2.backward(self.mlp.backward(grad_out))
        g = g + self.norm1.backward(self.attn.backward(g))
        return g
