"""Token and position embeddings for transformer workloads."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter
from repro.utils.seeding import RngStream

__all__ = ["Embedding", "PositionalEmbedding"]


class Embedding(Module):
    """Lookup table mapping integer token ids ``(B, T)`` to ``(B, T, H)``."""

    def __init__(self, vocab_size: int, dim: int, rng: RngStream | None = None):
        super().__init__()
        self.vocab_size = vocab_size
        self.dim = dim
        gen = (rng or RngStream(0, "embedding")).generator("weight")
        self.weight = self.register_parameter(
            "weight", Parameter(gen.normal(0.0, 0.02, (vocab_size, dim)))
        )
        self._ids: np.ndarray | None = None

    def forward(self, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids, dtype=np.int64)
        if ids.min() < 0 or ids.max() >= self.vocab_size:
            raise ValueError("token id out of range")
        self._ids = ids
        return self.weight.data[ids]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._ids is not None
        grad = np.zeros_like(self.weight.data)
        np.add.at(grad, self._ids.reshape(-1), grad_out.reshape(-1, self.dim))
        self.weight.accumulate_grad(grad)
        # token ids are not differentiable; return zeros of the id shape
        return np.zeros(self._ids.shape)


class PositionalEmbedding(Module):
    """Learned absolute position embedding added to a ``(B, T, H)`` input."""

    def __init__(self, max_len: int, dim: int, rng: RngStream | None = None):
        super().__init__()
        self.max_len = max_len
        self.dim = dim
        gen = (rng or RngStream(0, "pos_embedding")).generator("weight")
        self.weight = self.register_parameter(
            "weight", Parameter(gen.normal(0.0, 0.02, (max_len, dim)))
        )
        self._seq_len: int | None = None
        self._batch: int | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        _, t, _ = x.shape
        if t > self.max_len:
            raise ValueError(f"sequence length {t} exceeds max_len {self.max_len}")
        self._seq_len = t
        self._batch = x.shape[0]
        return x + self.weight.data[None, :t, :]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._seq_len is not None
        grad = np.zeros_like(self.weight.data)
        grad[: self._seq_len] = grad_out.sum(axis=0)
        self.weight.accumulate_grad(grad)
        return grad_out
