"""Multi-head self-attention with exact manual backward."""

from __future__ import annotations

import numpy as np

from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.utils.seeding import RngStream

__all__ = ["MultiHeadSelfAttention", "softmax", "softmax_backward"]


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    z = x - x.max(axis=axis, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=axis, keepdims=True)


def softmax_backward(y: np.ndarray, grad_out: np.ndarray, axis: int = -1) -> np.ndarray:
    """Backward of softmax given its output ``y``."""
    dot = (grad_out * y).sum(axis=axis, keepdims=True)
    return y * (grad_out - dot)


class MultiHeadSelfAttention(Module):
    """Standard (bidirectional) multi-head self-attention over (B, T, H)."""

    def __init__(self, dim: int, num_heads: int, rng: RngStream | None = None):
        super().__init__()
        if dim % num_heads:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        rng = rng or RngStream(0, "mhsa")
        self.q_proj = Linear(dim, dim, rng=rng.child("q"))
        self.k_proj = Linear(dim, dim, rng=rng.child("k"))
        self.v_proj = Linear(dim, dim, rng=rng.child("v"))
        self.out_proj = Linear(dim, dim, rng=rng.child("out"))
        self._cache: tuple | None = None

    def _split(self, x: np.ndarray) -> np.ndarray:
        b, t, _ = x.shape
        return x.reshape(b, t, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge(self, x: np.ndarray) -> np.ndarray:
        b, h, t, d = x.shape
        return x.transpose(0, 2, 1, 3).reshape(b, t, h * d)

    def forward(self, x: np.ndarray) -> np.ndarray:
        q = self._split(self.q_proj(x))
        k = self._split(self.k_proj(x))
        v = self._split(self.v_proj(x))
        scale = 1.0 / np.sqrt(self.head_dim)
        scores = np.einsum("bhtd,bhsd->bhts", q, k, optimize=True) * scale
        attn = softmax(scores, axis=-1)
        ctx = np.einsum("bhts,bhsd->bhtd", attn, v, optimize=True)
        self._cache = (q, k, v, attn, scale)
        return self.out_proj(self._merge(ctx))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._cache is not None
        q, k, v, attn, scale = self._cache
        g_ctx = self._split(self.out_proj.backward(grad_out))
        g_attn = np.einsum("bhtd,bhsd->bhts", g_ctx, v, optimize=True)
        g_v = np.einsum("bhts,bhtd->bhsd", attn, g_ctx, optimize=True)
        g_scores = softmax_backward(attn, g_attn, axis=-1) * scale
        g_q = np.einsum("bhts,bhsd->bhtd", g_scores, k, optimize=True)
        g_k = np.einsum("bhts,bhtd->bhsd", g_scores, q, optimize=True)
        g_x = self.q_proj.backward(self._merge(g_q))
        g_x = g_x + self.k_proj.backward(self._merge(g_k))
        g_x = g_x + self.v_proj.backward(self._merge(g_v))
        return g_x
