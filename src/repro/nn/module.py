"""Minimal layer-wise neural-network framework on NumPy.

This replaces PyTorch as the substrate the paper builds on.  The design is
deliberately *layer-wise*: every :class:`Module` implements an explicit
``forward`` that caches what its ``backward`` needs, and ``backward`` both
returns the gradient w.r.t. the module input and accumulates parameter
gradients into ``Parameter.grad``.

Two properties matter for Swift and are guaranteed here:

* **Determinism** — forward/backward are pure NumPy; the same input always
  produces the same output, which is what makes logging-based replay exact
  (paper Section 5.1 "Consistency").
* **Layer-granular state** — parameters are named and updated individually,
  which is what exposes the crash-consistency window of wait-free updates
  (paper Section 2.3, Figure 4) and what update-undo operates on.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping

import numpy as np

from repro.errors import ShapeError

__all__ = ["Parameter", "Module"]


class Parameter:
    """A named trainable tensor with an associated gradient slot.

    ``grad`` holds the *latest* gradient ``g_t``.  Keeping one gradient
    version around is exactly the caching behaviour Swift relies on for
    update-undo (Section 4: "It only needs to cache the latest gradients
    g_t, a common practice in mainstream DL frameworks").
    """

    __slots__ = ("name", "data", "grad", "requires_grad")

    def __init__(self, data: np.ndarray, name: str = "", requires_grad: bool = True):
        self.data = np.ascontiguousarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.name = name
        self.requires_grad = requires_grad

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def zero_grad(self) -> None:
        self.grad = None

    def accumulate_grad(self, grad: np.ndarray) -> None:
        if grad.shape != self.data.shape:
            raise ShapeError(
                f"gradient shape {grad.shape} != parameter shape {self.data.shape}"
                f" for {self.name!r}"
            )
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)
        else:
            self.grad += grad

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"


class Module:
    """Base class for all layers and models.

    Subclasses register parameters via :meth:`register_parameter` and
    sub-modules via attribute assignment; traversal, state dicts, and
    gradient bookkeeping come for free.
    """

    def __init__(self) -> None:
        self._parameters: dict[str, Parameter] = {}
        self._modules: dict[str, Module] = {}
        self.training = True

    # -- registration -----------------------------------------------------
    def register_parameter(self, name: str, param: Parameter) -> Parameter:
        param.name = name
        self._parameters[name] = param
        return param

    def __setattr__(self, name: str, value: object) -> None:
        if isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    # -- traversal ---------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def num_parameters(self) -> int:
        return int(sum(p.data.size for p in self.parameters()))

    def state_nbytes(self) -> int:
        return int(sum(p.nbytes for p in self.parameters()))

    # -- state dict ---------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of all parameters, keyed by qualified name."""
        return {name: np.array(p.data, copy=True) for name, p in self.named_parameters()}

    def load_state_dict(self, state: Mapping[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        missing = params.keys() - state.keys()
        extra = state.keys() - params.keys()
        if missing or extra:
            raise ShapeError(
                f"state dict mismatch: missing={sorted(missing)} extra={sorted(extra)}"
            )
        for name, param in params.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ShapeError(
                    f"shape mismatch for {name!r}: {value.shape} != {param.data.shape}"
                )
            param.data = np.array(value, copy=True)

    # -- flat views -----------------------------------------------------------
    def param_shapes(self, trainable_only: bool = False) -> dict[str, tuple[int, ...]]:
        """Qualified-name → shape map — the layout a flat arena packs.

        The iteration order matches :meth:`named_parameters`, so a
        :class:`~repro.utils.flat.FlatBuffer` built from this map lines up
        with every other per-parameter traversal of the module.
        """
        return {
            name: p.data.shape
            for name, p in self.named_parameters()
            if not trainable_only or p.requires_grad
        }

    def seed_flat_grads(self, buffer) -> None:
        """Point every parameter's grad at a zeroed slice of ``buffer``.

        ``buffer`` is a :class:`~repro.utils.flat.FlatBuffer` laid out by
        :meth:`param_shapes`.  Backward passes then accumulate directly
        into the contiguous arena, so gradient bucketing (fused all-reduce,
        recovery-worker bucket sums) needs no per-parameter gather.
        """
        buffer.zero()
        views = buffer.views()
        for name, p in self.named_parameters():
            p.grad = views[name]

    # -- gradients -----------------------------------------------------------
    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def grads(self) -> dict[str, np.ndarray]:
        """Copy of all gradients (zeros where a parameter has no grad)."""
        out = {}
        for name, p in self.named_parameters():
            out[name] = (
                np.zeros_like(p.data) if p.grad is None else np.array(p.grad, copy=True)
            )
        return out

    # -- modes ---------------------------------------------------------------
    def train(self) -> "Module":
        for m in self.modules():
            m.training = True
        return self

    def eval(self) -> "Module":
        for m in self.modules():
            m.training = False
        return self

    # -- compute ---------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backprop through the module; returns gradient w.r.t. the input.

        Must be called after :meth:`forward` on the same input (each layer
        caches its forward activations).
        """
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)
