"""Job abstraction: a fault-tolerant training run as a schedulable unit.

The seed reproduction drives exactly one :class:`~repro.core.SwiftTrainer`
on a dedicated cluster.  A *job* wraps that trainer (engine + recovery +
trace) behind a small lifecycle interface so a cluster-level scheduler can
run many of them on one shared :class:`~repro.cluster.Cluster`:

* :class:`JobSpec` — the submission-time description (gang size, priority,
  elasticity, model/workload knobs);
* :class:`Job` — the runtime object: built onto concrete ``(machine,
  device)`` slots when the scheduler places it, stepped one iteration at a
  time (cooperative interleaving), shrunk/grown through
  :class:`~repro.core.ElasticCoordinator` under preemption, and routed
  shared-cluster machine failures via its own Swift recovery path.

Every mechanism of the paper keeps working per job: replication recovery
for DP jobs, logging recovery for PP jobs, update-undo for abrupt elastic
departures (Section 8) — the scheduler only decides *when* each job runs
and *which* hardware it holds.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from enum import Enum

from repro.cluster.clock import SimClock
from repro.cluster.topology import Cluster
from repro.core.elastic import ElasticCoordinator
from repro.core.replication import RecoveryReport
from repro.core.trainer import SwiftTrainer, TrainerConfig
from repro.data import ClassificationTask
from repro.errors import ConfigurationError
from repro.core.strategy import FTStrategy
from repro.models import make_mlp
from repro.nn import CrossEntropyLoss
from repro.optim import make_optimizer
from repro.parallel.data_parallel import DataParallelEngine
from repro.parallel.pipeline import PipelineEngine
from repro.parallel.results import IterationResult

__all__ = ["JobState", "JobSpec", "Job"]


class JobState(str, Enum):
    """Lifecycle of a job on the shared cluster."""

    #: submitted, waiting in the queue for a gang of free slots
    PENDING = "pending"
    #: placed and training
    RUNNING = "running"
    #: hit a machine failure while the spare pool was empty; waits for a
    #: repaired machine before its recovery can run
    BLOCKED = "blocked"
    COMPLETED = "completed"
    #: recovery was impossible (e.g. no surviving replica)
    FAILED = "failed"


@dataclass(frozen=True)
class JobSpec:
    """Submission-time description of one training job."""

    name: str
    #: "dp" (data parallel, replication recovery) or "pp" (pipeline
    #: parallel, logging recovery)
    parallelism: str
    #: gang size: DP workers or PP stages — all placed at once
    num_workers: int
    #: training length in iterations
    iterations: int
    #: larger = more important; may preempt lower-priority elastic jobs
    priority: int = 0
    #: DP only: may be shrunk by preemption and re-grown later
    elastic: bool = False
    #: elastic floor: preemption never shrinks below this many workers
    min_workers: int = 1
    #: fleet round at which the job arrives (used by the FleetSimulator)
    arrival: int = 0
    batch_size: int = 16
    checkpoint_interval: int = 20
    #: fault-tolerance strategy, forwarded to :class:`TrainerConfig` —
    #: "auto" or any :class:`~repro.core.FTStrategy` value, checked here
    #: against ``parallelism`` so a mismatch fails at submission time
    strategy: str = "auto"
    #: delta checkpoints (persist only dirty leaves), forwarded to
    #: :class:`TrainerConfig` — see repro.core.checkpoint
    incremental_checkpoints: bool = False
    # -- workload knobs (small deterministic MLP classification) ----------
    dim: int = 8
    hidden_dim: int = 16
    num_classes: int = 4
    depth: int = 2
    num_microbatches: int = 4
    seed: int = 7
    #: dataset seed; ``None`` reuses ``seed`` (the historic behavior)
    task_seed: int | None = None
    #: optimizer family — ``None`` keeps the historic per-parallelism
    #: defaults (SGD-momentum for DP, Adam for PP)
    optimizer: str | None = None
    lr: float | None = None
    momentum: float = 0.9
    #: owning tenant on a multi-tenant control plane (:mod:`repro.serve`);
    #: ``None`` for single-tenant fleet runs
    tenant: str | None = None

    def __post_init__(self) -> None:
        if self.parallelism not in ("dp", "pp"):
            raise ConfigurationError(
                f"parallelism must be 'dp' or 'pp', got {self.parallelism!r}"
            )
        if self.num_workers < 1:
            raise ConfigurationError("num_workers must be >= 1")
        if self.iterations < 1:
            raise ConfigurationError("iterations must be >= 1")
        if self.elastic and self.parallelism != "dp":
            raise ConfigurationError("only DP jobs can be elastic")
        if not 1 <= self.min_workers <= self.num_workers:
            raise ConfigurationError(
                "min_workers must be in [1, num_workers]"
            )
        if self.strategy not in ("auto",) + tuple(s.value for s in FTStrategy):
            raise ConfigurationError(
                f"unknown strategy {self.strategy!r}; expected 'auto' or "
                f"one of {[s.value for s in FTStrategy]}"
            )
        if self.strategy == FTStrategy.REPLICATION.value \
                and self.parallelism != "dp":
            raise ConfigurationError(
                "strategy 'replication' requires a data-parallel job"
            )
        if self.strategy == FTStrategy.LOGGING.value \
                and self.parallelism != "pp":
            raise ConfigurationError(
                "strategy 'logging' requires a pipeline-parallel job"
            )

    @property
    def samples(self) -> int:
        """Total useful samples the job produces when it completes."""
        return self.iterations * self.batch_size

    def to_payload(self) -> dict:
        """Plain-JSON form of the spec (WAL events, wire protocol).

        >>> spec = JobSpec(name="j", parallelism="dp", num_workers=2,
        ...                iterations=10)
        >>> JobSpec.from_payload(spec.to_payload()) == spec
        True
        """
        return dict(asdict(self))

    @classmethod
    def from_payload(cls, payload: dict) -> "JobSpec":
        """Rebuild a spec from :meth:`to_payload` output.

        Unknown keys are ignored so older servers can read specs written
        by newer clients (the WAL analogue of trace version tolerance).

        >>> JobSpec.from_payload({"name": "j", "parallelism": "pp",
        ...                       "num_workers": 2, "iterations": 5,
        ...                       "future_knob": 1}).num_workers
        2
        """
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})


class Job:
    """A scheduled training run: spec + (once placed) a live trainer."""

    def __init__(self, spec: JobSpec):
        self.spec = spec
        self.state = JobState.PENDING
        self.clock: SimClock | None = None
        self.cluster: Cluster | None = None
        self.trainer: SwiftTrainer | None = None
        self.coordinator: ElasticCoordinator | None = None
        #: PP placement is immutable; DP slots are derived from workers
        self._pp_slots: list[tuple[int, int]] = []
        # -- fleet bookkeeping (fleet-time seconds / counters) ------------
        self.submit_time: float = 0.0
        self.start_time: float | None = None
        self.finish_time: float | None = None
        self.preemptions = 0
        self.machine_failures = 0
        #: machine ids whose failure is still waiting for a spare
        self.pending_machines: list[int] = []

    # -- identity ---------------------------------------------------------
    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def owner_tag(self) -> str:
        """Tag under which this job's slots are reserved in the ledger."""
        return f"job:{self.spec.name}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Job({self.spec.name}, {self.state.value})"

    # -- engine construction ----------------------------------------------
    def _build_engine(
        self, cluster: Cluster, slots: list[tuple[int, int]]
    ) -> DataParallelEngine | PipelineEngine:
        spec = self.spec
        task = ClassificationTask(
            dim=spec.dim,
            num_classes=spec.num_classes,
            batch_size=spec.batch_size,
            seed=spec.seed if spec.task_seed is None else spec.task_seed,
        )
        if spec.parallelism == "dp":
            family = spec.optimizer or "sgd_momentum"
            # legacy specs (optimizer=None) keep the historic lr=0.05;
            # declared optimizers pass lr through verbatim (None = class
            # default), matching what repro.api's Session would build
            lr = (
                spec.lr if spec.optimizer is not None
                else (0.05 if spec.lr is None else spec.lr)
            )
            return DataParallelEngine(
                cluster,
                model_factory=lambda: make_mlp(
                    spec.dim, spec.hidden_dim, spec.num_classes,
                    depth=spec.depth, seed=spec.seed,
                ),
                opt_factory=lambda m: make_optimizer(
                    family, m, lr=lr, momentum=spec.momentum
                ),
                loss_factory=CrossEntropyLoss,
                task=task,
                placement=list(slots),
                clock=self.clock,
            )
        # pipeline: ensure the MLP has at least one layer per stage
        depth = max(spec.depth, spec.num_workers)
        num_layers = 2 * depth + 1
        base, rem = divmod(num_layers, spec.num_workers)
        sizes = [base + 1 if s < rem else base for s in range(spec.num_workers)]
        family = spec.optimizer or "adam"
        lr = (
            spec.lr if spec.optimizer is not None
            else (0.01 if spec.lr is None else spec.lr)
        )
        return PipelineEngine(
            cluster,
            model_factory=lambda: make_mlp(
                spec.dim, spec.hidden_dim, spec.num_classes,
                depth=depth, seed=spec.seed,
            ),
            partition_sizes=sizes,
            placement=list(slots),
            num_microbatches=spec.num_microbatches,
            opt_factory=lambda m: make_optimizer(
                family, m, lr=lr, momentum=spec.momentum
            ),
            loss_factory=CrossEntropyLoss,
            task=task,
            clock=self.clock,
        )

    def start(
        self,
        cluster: Cluster,
        slots: list[tuple[int, int]],
        now: float = 0.0,
    ) -> None:
        """Build the engine/trainer gang onto the granted slots."""
        if len(slots) != self.spec.num_workers:
            raise ConfigurationError(
                f"{self.name}: gang needs {self.spec.num_workers} slots, "
                f"got {len(slots)}"
            )
        self.cluster = cluster
        self.clock = SimClock()
        engine = self._build_engine(cluster, slots)
        if isinstance(engine, PipelineEngine):
            self._pp_slots = list(slots)
        self.trainer = SwiftTrainer(
            engine,
            TrainerConfig(
                checkpoint_interval=self.spec.checkpoint_interval,
                strategy=self.spec.strategy,
                incremental_checkpoints=self.spec.incremental_checkpoints,
            ),
            clock=self.clock,
            checkpoint_prefix=f"ckpt/{self.spec.name}",
        )
        if self.spec.elastic:
            self.coordinator = ElasticCoordinator(engine, clock=self.clock)
        self.state = JobState.RUNNING
        self.start_time = now

    # -- runtime queries ---------------------------------------------------
    @property
    def engine(self):
        assert self.trainer is not None, f"{self.name} not started"
        return self.trainer.engine

    @property
    def iteration(self) -> int:
        return self.engine.iteration if self.trainer else 0

    @property
    def done(self) -> bool:
        return (
            self.trainer is not None
            and self.engine.iteration >= self.spec.iterations
        )

    @property
    def samples_done(self) -> int:
        return self.iteration * self.spec.batch_size

    @property
    def num_workers_now(self) -> int:
        """Current gang size (elastic jobs may run shrunk)."""
        if self.trainer is None:
            return 0
        if self.spec.parallelism == "pp":
            return len(self._pp_slots)
        return len(self.engine.workers)

    def current_slots(self) -> list[tuple[int, int]]:
        """The ``(machine_id, device_idx)`` slots the job occupies now."""
        if self.trainer is None:
            return []
        if self.spec.parallelism == "pp":
            return list(self._pp_slots)
        return [
            (w.machine_id, w.device.local_index)
            for w in self.engine.workers
        ]

    def machines_used(self) -> set[int]:
        return {m for m, _ in self.current_slots()}

    @property
    def recoveries(self) -> list[RecoveryReport]:
        return self.trainer.trace.recoveries if self.trainer else []

    @property
    def recovery_time(self) -> float:
        """Simulated seconds this job spent inside recovery paths."""
        return self.trainer.trace.recovery_time_total if self.trainer else 0.0

    @property
    def lost_iterations(self) -> int:
        """Iterations of work recovery had to recompute (0 for replication)."""
        return sum(rep.lost_iterations for rep in self.recoveries)

    @property
    def queueing_delay(self) -> float:
        """Fleet seconds spent waiting between submission and placement."""
        if self.start_time is None:
            return 0.0
        return self.start_time - self.submit_time

    # -- stepping ----------------------------------------------------------
    def step(self) -> IterationResult:
        """Run (at most) one iteration of this job."""
        assert self.trainer is not None, f"{self.name} not started"
        assert self.state == JobState.RUNNING, (
            f"cannot step {self.name} in state {self.state}"
        )
        return self.trainer.step()

    # -- failure routing ---------------------------------------------------
    def apply_failure(self, machine_id: int) -> None:
        """A shared-cluster machine this job occupies crashed.

        Fails the machine and raises the job's failure flag; the actual
        recovery runs via :meth:`recover` once the scheduler has secured a
        replacement from the spare pool (possibly after blocking).
        """
        assert self.cluster is not None
        self.cluster.fail_machine(machine_id)
        self.cluster.kvstore.raise_failure(machine_id, self.iteration)
        self.machine_failures += 1
        if machine_id not in self.pending_machines:
            self.pending_machines.append(machine_id)

    def recover(self) -> RecoveryReport:
        """Run this job's Swift recovery for its pending machine failure."""
        assert self.trainer is not None and self.cluster is not None
        # a co-located job's recovery may have consumed the shared flag
        # (its detector clears it); re-raise for our own detector
        if not self.cluster.kvstore.failure_raised() and self.pending_machines:
            self.cluster.kvstore.raise_failure(
                self.pending_machines[-1], self.iteration
            )
        report = self.trainer.recover_now()
        if self.trainer.tlog is not None:
            # re-baseline the tensor log: records that lived only on the
            # crashed machine are unrecoverable, so a *second* failure in
            # the same checkpoint window must not need them.  A fresh
            # global checkpoint (which GCs the log) closes that window.
            stall = self.trainer.take_checkpoint()
            self.trainer.trace.checkpoints.append((self.iteration, stall))
        self.pending_machines.clear()
        self.state = JobState.RUNNING
        return report

    # -- elastic resizing (preemption / restoration) -----------------------
    def shrink(self, num: int) -> list[tuple[int, int]]:
        """Preempt ``num`` workers (abrupt scale-in); returns freed slots.

        Abrupt because preemption may land mid-update; update-undo makes
        it crash-consistent (paper Section 8), so no checkpoint restart.
        """
        assert self.coordinator is not None, f"{self.name} is not elastic"
        workers = self.engine.workers
        if len(workers) - num < self.spec.min_workers:
            raise ConfigurationError(
                f"{self.name}: shrinking {num} would go below "
                f"min_workers={self.spec.min_workers}"
            )
        victims = workers[-num:]
        freed = [(w.machine_id, w.device.local_index) for w in victims]
        self.coordinator.scale_in([w.rank for w in victims], abrupt=True)
        self.preemptions += 1
        return freed

    def grow(self, slots: list[tuple[int, int]]) -> None:
        """Restore preempted workers onto freshly granted slots."""
        assert self.coordinator is not None, f"{self.name} is not elastic"
        self.coordinator.scale_out(list(slots))

    @property
    def shrinkable(self) -> int:
        """How many workers preemption could still take from this job."""
        if (
            not self.spec.elastic
            or self.trainer is None
            or self.state != JobState.RUNNING
        ):
            return 0
        return max(0, len(self.engine.workers) - self.spec.min_workers)

    @property
    def missing_workers(self) -> int:
        """Workers lost to preemption that restoration should give back."""
        if not self.spec.elastic or self.trainer is None:
            return 0
        return max(0, self.spec.num_workers - len(self.engine.workers))
