"""Spare-machine pool: replacement capacity for failure recovery.

The paper assumes "a replacement machine will be added to the training
job" after a crash (Section 3) — on a dedicated cluster that replacement
appears by fiat.  On a *shared* cluster, replacements come from a finite
pool of hot spares the operator keeps idle:

* the pool reserves whole machines in the cluster's slot ledger so the
  scheduler never places job gangs on them;
* when a machine hosting jobs fails, the scheduler *leases* one spare —
  conceptually the spare's hardware slides into the failed slot (the
  simulation keeps machine ids stable, matching
  :meth:`Cluster.replace_machine`), and the broken hardware goes to
  repair;
* after ``repair_ticks`` scheduler rounds the repaired hardware returns
  to the pool as the new spare (reclaim), restoring capacity;
* an empty pool blocks recovery: affected jobs sit in ``BLOCKED`` state
  until a repair completes.
"""

from __future__ import annotations

from repro.cluster.topology import Cluster
from repro.errors import ConfigurationError

__all__ = ["SparePool"]

SPARE_OWNER = "spare-pool"


class SparePool:
    """Manages the hot-spare machines of a shared cluster."""

    def __init__(
        self,
        cluster: Cluster,
        machine_ids: list[int],
        repair_ticks: int = 5,
    ):
        if repair_ticks < 1:
            raise ConfigurationError("repair_ticks must be >= 1")
        seen = set()
        for m in machine_ids:
            if m in seen:
                raise ConfigurationError(f"duplicate spare machine {m}")
            seen.add(m)
        self.cluster = cluster
        self.repair_ticks = repair_ticks
        self._available: list[int] = list(machine_ids)
        #: broken hardware being repaired: [machine_id, ticks_remaining]
        self._repairing: list[list[int]] = []
        self.total_leases = 0
        #: every lease as ``(failed_machine_id, spare_id)``, in order —
        #: observers (the serve WAL mirror) read pairings from here
        self.lease_log: list[tuple[int, int]] = []
        # keep the scheduler off the spares
        for m in machine_ids:
            slots = [(m, d) for d in range(len(cluster.machine(m).devices))]
            cluster.reserve_slots(slots, SPARE_OWNER)

    # -- queries ------------------------------------------------------------
    @property
    def available(self) -> int:
        return len(self._available)

    @property
    def repairing(self) -> int:
        return len(self._repairing)

    def is_spare(self, machine_id: int) -> bool:
        return machine_id in self._available or any(
            machine_id == entry[0] for entry in self._repairing
        )

    # -- lease / reclaim ----------------------------------------------------
    def lease(self, failed_machine_id: int) -> int | None:
        """Hand a spare to a recovery; ``None`` if the pool is empty.

        The spare's hardware takes over the failed slot (ids stay stable);
        the failed slot's broken hardware enters repair and will come back
        as the new spare under the leased id.
        """
        if not self._available:
            return None
        spare = self._available.pop(0)
        self._repairing.append([spare, self.repair_ticks])
        self.total_leases += 1
        self.lease_log.append((failed_machine_id, spare))
        return spare

    def fail_spare(self, machine_id: int) -> None:
        """A failure hit an idle spare itself: repair it, no job affected.

        A spare already in repair can fail "again" (the slot's hardware is
        flaky); the repair timer simply restarts.
        """
        if machine_id in self._available:
            self._available.remove(machine_id)
            self.cluster.fail_machine(machine_id)
            self._repairing.append([machine_id, self.repair_ticks])
            return
        for entry in self._repairing:
            if entry[0] == machine_id:
                entry[1] = self.repair_ticks
                return
        raise ConfigurationError(f"machine {machine_id} is not a spare")

    def tick(self) -> list[int]:
        """Advance repairs one round; returns machine ids reclaimed."""
        for entry in self._repairing:
            entry[1] -= 1
        return self._collect_done()

    def reclaim_now(self, machine_id: int) -> None:
        """Finish a repair immediately (test/operator hook)."""
        for entry in self._repairing:
            if entry[0] == machine_id:
                entry[1] = 0
                self._collect_done()
                return
        raise ConfigurationError(f"machine {machine_id} is not in repair")

    def _collect_done(self) -> list[int]:
        reclaimed: list[int] = []
        for entry in [e for e in self._repairing if e[1] <= 0]:
            self._repairing.remove(entry)
            machine_id = entry[0]
            if not self.cluster.machine(machine_id).alive:
                self.cluster.replace_machine(machine_id)
            self._available.append(machine_id)
            reclaimed.append(machine_id)
        return reclaimed
