"""Multi-job cluster scheduling: the fleet layer above Swift's recovery.

The seed reproduces Swift for a single job on a dedicated cluster.  This
package adds the missing production layer — many jobs sharing one
cluster — so every per-job recovery mechanism (replication, logging
replay, update-undo, elasticity) composes into a fleet-level goodput
story:

* :class:`JobSpec` / :class:`Job` — a ``SwiftTrainer`` run as a
  schedulable, steppable, (optionally) elastic unit;
* :class:`JobQueue` — priority + FIFO gang queue;
* :class:`SparePool` — hot spares leased to recoveries and reclaimed
  after repair;
* :class:`Scheduler` — failure-aware gang placement, priority preemption
  via elastic scale-in/out, and machine-failure routing to owning jobs.

The round-based :class:`repro.sim.FleetSimulator` drives a whole fleet
through a failure schedule; ``python -m repro.cli fleet`` prints the
resulting per-job and cluster-wide report.
"""

from repro.jobs.queue import JobQueue
from repro.jobs.scheduler import Scheduler
from repro.jobs.spare import SparePool
from repro.jobs.spec import Job, JobSpec, JobState

__all__ = [
    "Job",
    "JobSpec",
    "JobState",
    "JobQueue",
    "SparePool",
    "Scheduler",
]
