"""Priority + FIFO job queue (gang scheduling order).

Jobs are ordered by descending :attr:`JobSpec.priority`, then by
submission order (FIFO within a priority class).  The scheduler always
tries to place the *head*; if the head's gang does not fit (even after
preemption) the queue blocks — intentional head-of-line blocking, so a
large high-priority job is never starved by small late arrivals.
"""

from __future__ import annotations

import heapq
import itertools

from repro.jobs.spec import Job

__all__ = ["JobQueue"]


class JobQueue:
    """A stable max-priority queue of pending jobs."""

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Job]] = []
        self._seq = itertools.count()

    def push(self, job: Job) -> None:
        heapq.heappush(self._heap, (-job.spec.priority, next(self._seq), job))

    def peek(self) -> Job:
        if not self._heap:
            raise IndexError("peek on empty JobQueue")
        return self._heap[0][2]

    def pop(self) -> Job:
        if not self._heap:
            raise IndexError("pop on empty JobQueue")
        return heapq.heappop(self._heap)[2]

    def pending(self) -> list[Job]:
        """Queued jobs in dequeue order (does not consume the queue)."""
        return [entry[2] for entry in sorted(self._heap)]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __contains__(self, job: Job) -> bool:
        return any(entry[2] is job for entry in self._heap)
