"""Gang scheduler: places jobs on a shared cluster, preempts, routes failures.

The scheduling model (one PR-sized slice of a production scheduler à la
ReaLHF's scheduler layer):

* **Gang placement.**  A job needs all ``num_workers`` slots at once.  The
  queue is priority-then-FIFO; the head blocks the line (no backfilling),
  so large high-priority gangs cannot be starved.
* **Failure-aware placement.**  Free slots are taken round-robin across
  machines ordered by ascending hardware ``failure_count`` — gangs spread
  over the healthiest failure domains first, which both shrinks the blast
  radius of the next crash and keeps survivors for replication recovery.
* **Priority preemption via elasticity.**  When the head job does not fit,
  lower-priority *elastic* jobs are shrunk with
  :meth:`ElasticCoordinator.scale_in` (abrupt; update-undo keeps them
  crash-consistent, paper Section 8) instead of being killed.  Freed slots
  go to the head job; shrunk jobs are re-grown by :meth:`restore` once
  capacity frees up.
* **Failure routing.**  A machine crash is routed to *every* job holding a
  slot on that machine; each runs its own Swift recovery (replication for
  DP, logging replay for PP) while all other jobs keep running.  Each
  crash consumes one spare from the :class:`SparePool`; with the pool
  empty the affected jobs block until a repair reclaims capacity.
"""

from __future__ import annotations

from repro.cluster.topology import Cluster
from repro.errors import ConfigurationError, RecoveryError
from repro.jobs.queue import JobQueue
from repro.jobs.spare import SparePool
from repro.jobs.spec import Job, JobState

__all__ = ["Scheduler"]


class Scheduler:
    """Multiplexes :class:`Job` gangs onto one shared :class:`Cluster`."""

    def __init__(self, cluster: Cluster, spares: SparePool | None = None):
        self.cluster = cluster
        self.spares = spares
        self.queue = JobQueue()
        self.jobs: dict[str, Job] = {}
        self.running: list[Job] = []
        self.blocked: list[Job] = []
        #: total workers taken from elastic jobs by preemption (cumulative)
        self.preempted_workers = 0
        #: broken machines whose replacement has already been leased while
        #: their owning job(s) were still blocked on further machines
        self._leased_pending: set[int] = set()

    # -- submission --------------------------------------------------------
    def submit(self, job: Job, now: float = 0.0) -> None:
        if job.name in self.jobs:
            raise ConfigurationError(f"duplicate job name {job.name!r}")
        self.jobs[job.name] = job
        job.submit_time = now
        self.queue.push(job)

    # -- placement ---------------------------------------------------------
    def _free_slots_by_machine(self) -> dict[int, list[tuple[int, int]]]:
        by_machine: dict[int, list[tuple[int, int]]] = {}
        for slot in self.cluster.free_slots():
            by_machine.setdefault(slot[0], []).append(slot)
        return by_machine

    def pick_slots(self, num: int) -> list[tuple[int, int]] | None:
        """Failure-aware gang placement: spread across healthy machines.

        Machines are ordered by (failure_count, machine_id); slots are
        taken round-robin, one per machine per pass, so the gang lands on
        as many distinct low-failure machines as possible.
        """
        by_machine = self._free_slots_by_machine()
        order = sorted(
            by_machine,
            key=lambda m: (self.cluster.machine(m).failure_count, m),
        )
        if sum(len(v) for v in by_machine.values()) < num:
            return None
        picked: list[tuple[int, int]] = []
        while len(picked) < num:
            for m in order:
                if by_machine[m] and len(picked) < num:
                    picked.append(by_machine[m].pop(0))
        return picked

    # -- preemption --------------------------------------------------------
    def _preempt_for(self, job: Job) -> list[tuple[int, int]] | None:
        """Shrink lower-priority elastic jobs until ``job``'s gang fits."""
        free = len(self.cluster.free_slots())
        need = job.spec.num_workers - free
        victims = sorted(
            (
                j for j in self.running
                if j.spec.priority < job.spec.priority and j.shrinkable > 0
            ),
            key=lambda j: (j.spec.priority, j.submit_time),
        )
        if need > sum(j.shrinkable for j in victims):
            return None
        for victim in victims:
            if need <= 0:
                break
            take = min(need, victim.shrinkable)
            freed = victim.shrink(take)
            self.cluster.release_slots(freed, victim.owner_tag)
            self.preempted_workers += take
            need -= take
        return self.pick_slots(job.spec.num_workers)

    def restore(self) -> int:
        """Re-grow preempted elastic jobs from free capacity.

        Runs only when the queue is empty (queued gangs outrank
        restoration).  Higher-priority victims are restored first.
        Returns the number of workers given back.
        """
        if len(self.queue):
            return 0
        restored = 0
        for job in sorted(
            self.running,
            key=lambda j: (-j.spec.priority, j.submit_time),
        ):
            missing = job.missing_workers
            if missing == 0 or job.state != JobState.RUNNING:
                continue
            slots = self.pick_slots(min(missing, len(self.cluster.free_slots())))
            if not slots:
                continue
            self.cluster.reserve_slots(slots, job.owner_tag)
            job.grow(slots)
            restored += len(slots)
        return restored

    # -- the scheduling pass -----------------------------------------------
    def schedule(self, now: float = 0.0) -> list[Job]:
        """Start as many queued gangs as fit (head-of-line order)."""
        started: list[Job] = []
        while self.queue:
            job = self.queue.peek()
            slots = self.pick_slots(job.spec.num_workers)
            if slots is None:
                slots = self._preempt_for(job)
            if slots is None:
                break
            self.queue.pop()
            self.cluster.reserve_slots(slots, job.owner_tag)
            job.start(self.cluster, slots, now=now)
            self.running.append(job)
            started.append(job)
        return started

    # -- completion --------------------------------------------------------
    def finish(self, job: Job, now: float = 0.0) -> None:
        """Release a completed job's slots and record its finish time."""
        self.cluster.release_owner(job.owner_tag)
        if job in self.running:
            self.running.remove(job)
        job.state = JobState.COMPLETED
        job.finish_time = now

    # -- failure routing ---------------------------------------------------
    def owners_of(self, machine_id: int) -> list[Job]:
        """Jobs holding at least one slot on a machine."""
        tags = self.cluster.owners_on_machine(machine_id)
        return [
            job for job in self.running + self.blocked
            if job.owner_tag in tags
        ]

    def handle_machine_failure(self, machine_id: int) -> list[Job]:
        """Route one machine crash; returns the jobs it touched.

        Exactly one spare is consumed per crash event regardless of how
        many jobs share the machine.  With no spare available the owning
        jobs block (pool reclaim unblocks them via :meth:`unblock`).
        """
        owners = self.owners_of(machine_id)
        if not owners:
            # idle machine: either a spare or genuinely free capacity
            if self.spares is not None and self.spares.is_spare(machine_id):
                self.spares.fail_spare(machine_id)
            else:
                self.cluster.fail_machine(machine_id)
            return []
        if machine_id in self._leased_pending:
            spare = 0  # this machine's replacement is already secured
        else:
            spare = self.spares.lease(machine_id) if self.spares else 0
        # fail once for every owner first (the machine stays down until
        # the first recovery replaces it), THEN run recoveries — so one
        # hardware event is one failure_count tick, and no owner re-kills
        # a machine a co-located job just restored
        for job in owners:
            job.apply_failure(machine_id)
        for job in owners:
            unpaid = (
                set(job.pending_machines)
                - {machine_id}
                - self._leased_pending
            )
            if spare is None or unpaid:
                # no replacement for this event, or the job still waits
                # on other machines: (stay) blocked.  A secured lease is
                # banked so unblock() does not buy it twice.
                if spare is not None:
                    self._leased_pending.add(machine_id)
                job.state = JobState.BLOCKED
                if job in self.running:
                    self.running.remove(job)
                if job not in self.blocked:
                    self.blocked.append(job)
            else:
                self._recover_or_fail(job)
        self._drop_leases({machine_id})
        return owners

    def unblock(self) -> list[Job]:
        """Resume blocked jobs once the spare pool has capacity again.

        Every distinct broken machine needs its own spare lease ("one
        spare per crash event"); a job blocked on several machines only
        resumes once replacements for all of them are secured.  Leases
        obtained while the pool drains again are remembered in
        ``_leased_pending`` so they are not re-bought next round.
        """
        resumed: list[Job] = []
        pending: list[int] = []
        for job in list(self.blocked):
            if not job.pending_machines:  # already recovered elsewhere
                self.blocked.remove(job)
                continue
            for m in job.pending_machines:
                if m not in pending and m not in self._leased_pending:
                    pending.append(m)
        for machine_id in pending:
            if (
                self.spares is not None
                and self.spares.lease(machine_id) is None
            ):
                break  # pool drained; the rest keep waiting
            self._leased_pending.add(machine_id)
        for job in list(self.blocked):
            machines = set(job.pending_machines)
            if not machines <= self._leased_pending:
                continue
            self._recover_or_fail(job)
            if job.state == JobState.RUNNING:
                resumed.append(job)
            self._drop_leases(machines)
        return resumed

    def _drop_leases(self, machines: set[int]) -> None:
        """Forget banked leases no still-blocked job is waiting on."""
        still_needed = {m for j in self.blocked for m in j.pending_machines}
        self._leased_pending -= machines - still_needed

    def _recover_or_fail(self, job: Job) -> None:
        # a BLOCKED job may be recovered directly (e.g. a later failure on
        # its machine arrives once spares exist): normalize membership
        if job in self.blocked:
            self.blocked.remove(job)
        # the job's recovery mechanism replaces EVERY failed machine it
        # sees (Appendix-B joint handling, written for dedicated
        # clusters).  Machines that are down for unrelated reasons —
        # failed free capacity, spares in repair, other jobs' pending
        # failures — must not be resurrected for free: remember them and
        # take them back offline afterwards.
        protected = [
            m.machine_id
            for m in self.cluster.failed_machines()
            if job.owner_tag
            not in self.cluster.owners_on_machine(m.machine_id)
        ]
        try:
            job.recover()
        except RecoveryError:
            # e.g. no surviving replica and recovery budget exhausted:
            # the job is lost; give its hardware back
            self.cluster.release_owner(job.owner_tag)
            if job in self.running:
                self.running.remove(job)
            job.state = JobState.FAILED
        else:
            if job not in self.running:
                self.running.append(job)
        for machine_id in protected:
            machine = self.cluster.machine(machine_id)
            if machine.alive:
                machine.take_offline()
