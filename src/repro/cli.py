"""Command-line interface: run paper experiments from the terminal.

Usage::

    python -m repro.cli table3
    python -m repro.cli table5 [--mtbf 17] [--repeats 10]
    python -m repro.cli fig8 {wrn|vit|bert} [--scenario NAME]
    python -m repro.cli plan --workload bert --budget-gb 200
    python -m repro.cli plan --optimize [--workload bert]
                             [--scenario NAME] [--searcher NAME] [--json]
    python -m repro.cli workloads
    python -m repro.cli fleet [--machines 6] [--devices 4] [--spares 1]
    python -m repro.cli fleet --scenario rack_burst [--scenario-seed 0]
    python -m repro.cli chaos --list
    python -m repro.cli chaos --scenario rack_burst --seeds 5
    python -m repro.cli schedule --list
    python -m repro.cli schedule --dump 1f1b -p 4 -m 8 [-o prog.jsonl]
    python -m repro.cli schedule --verify prog.jsonl
    python -m repro.cli chaos --trace traces/rack_burst_seed0.jsonl
    python -m repro.cli obs traces/telemetry.jsonl [--chrome out.json]
    python -m repro.cli obs traces/live.jsonl --follow
    python -m repro.cli serve --demo [--wal serve.jsonl]
    python -m repro.cli serve --drill [--kill-points 5]
    python -m repro.cli serve --stdio --wal serve.jsonl
    python -m repro.cli serve --replay serve.jsonl
    python -m repro.cli serve --fleet-demo [--wal fleet-wal.jsonl]

Each subcommand prints the same rows the corresponding paper artifact
reports (the pytest benchmarks under ``benchmarks/`` are the asserted
versions of the same computations).  ``chaos`` runs real engines under a
named :mod:`repro.chaos` failure scenario, one seed per run, and writes
each run's :class:`~repro.chaos.FailureTrace` as replayable JSONL;
replaying a trace re-executes the run bitwise (the goodput must match
the recorded value exactly, and the exit code says whether it did).
``serve`` runs the crash-recoverable control plane of
:mod:`repro.serve`.

Exit codes: 0 success, 1 data problem (unreadable/corrupt trace or WAL,
failed verification), 2 usage error (bad flags, unknown names).  A bad
input file never produces a bare traceback — always a one-line
diagnostic on stderr.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro.api import (
    ClusterSpec,
    DataSpec,
    Experiment,
    FaultToleranceSpec,
    FTStrategy,
    ModelSpec,
    ParallelismSpec,
    demo_fleet_specs,
    plan_workload,
)
from repro.chaos import (
    FailureTrace,
    evaluate_scenario,
    get_scenario,
    scenario_names,
)
from repro.errors import ConfigurationError, LogIntegrityError
from repro.obs import (
    JsonlSink,
    TelemetryEvent,
    TelemetryTrace,
    TraceRecorder,
    summarize_telemetry,
    telemetry_to_csv,
    to_chrome_trace,
)
from repro.serve import (
    SegmentedWriteAheadLog,
    ServeConfig,
    ServeServer,
    ServeState,
    WriteAheadLog,
    control_plane_drill,
    demo_config,
    demo_traffic,
    install_graceful_shutdown,
    network_drill,
    run_script,
    serve_stdio,
    serve_tcp,
)
from repro.sim import (
    BERT_128,
    VIT_128_32,
    WIDE_RESNET_50,
    WORKLOADS,
    CostModel,
    EndToEndSimulator,
    FleetSimulator,
    ThroughputSimulator,
)

__all__ = ["build_parser", "main"]

GB = 1e9

_WORKLOAD_ALIASES = {
    "wrn": WIDE_RESNET_50,
    "vit": VIT_128_32,
    "bert": BERT_128,
}


def cmd_workloads(_: argparse.Namespace) -> int:
    print(f"{'model':<16} {'params':>8} {'parallelism':>11} {'workers':>7} "
          f"{'batch':>6} {'state':>8}")
    for w in WORKLOADS.values():
        print(f"{w.name:<16} {w.num_params / 1e9:>7.2f}B {w.parallelism:>11} "
              f"{w.num_workers:>7} {w.batch_size:>6} "
              f"{w.state_bytes / GB:>7.2f}G")
    return 0


def cmd_table3(_: argparse.Namespace) -> int:
    print(f"{'model':<12} {'#groups':>7} {'GB/iter':>8} {'GB/s/machine':>13}")
    for w in (VIT_128_32, BERT_128):
        cost = CostModel(w)
        for groups in (16, 8):
            print(f"{w.name:<12} {groups:>7} "
                  f"{cost.logging_bytes_per_iteration(groups) / GB:>8.2f} "
                  f"{cost.logging_bandwidth_per_machine(groups) / GB:>13.3f}")
    return 0


def cmd_table5(args: argparse.Namespace) -> int:
    methods = {
        "Wide-ResNet-50": "swift_replication",
        "ViT-128/32": "swift_logging_pr",
        "BERT-128": "swift_logging_pr",
    }
    print(f"median TBF = {args.mtbf}h, repeats = {args.repeats}")
    print(f"{'model':<16} {'#fail':>5} {'ckpt':>8} {'swift':>8} {'speedup':>8}")
    for w in (WIDE_RESNET_50, VIT_128_32, BERT_128):
        sim = EndToEndSimulator(w, median_tbf_hours=args.mtbf,
                                repeats=args.repeats, seed=args.seed)
        ckpt = sim.simulate("global_checkpoint")
        swift = sim.simulate(methods[w.name])
        print(f"{w.name:<16} {ckpt.mean_failures:>5.0f} "
              f"{ckpt.mean_hours:>7.1f}h {swift.mean_hours:>7.1f}h "
              f"{ckpt.mean_hours / swift.mean_hours:>7.2f}x")
    return 0


#: fig8 column -> analytic cost-model method (for --scenario goodput)
_FIG8_METHODS = {
    "global_ckpt": "global_checkpoint",
    "checkfreq": "checkfreq",
    "elastic_horovod": "elastic_horovod",
    "swift_replication": "swift_replication",
    "swift_16groups": "swift_logging",
    "swift_8groups": "swift_logging",
    "swift_sync": "swift_logging",
    "swift_16g_PR": "swift_logging_pr",
}


def cmd_fig8(args: argparse.Namespace) -> int:
    workload = _WORKLOAD_ALIASES[args.workload]
    sim = ThroughputSimulator(workload)
    # the repro.api planner decides which recovery family the workload
    # exercises (Section 3), hence which method column set to print
    strategy = plan_workload(workload).strategy
    if strategy is FTStrategy.REPLICATION:
        timelines = {
            "global_ckpt": sim.global_checkpointing(),
            "checkfreq": sim.checkfreq(),
            "elastic_horovod": sim.elastic_horovod(),
            "swift_replication": sim.swift_replication(),
        }
    else:
        timelines = {
            "global_ckpt": sim.global_checkpointing(),
            "swift_16groups": sim.swift_logging(num_groups=16),
            "swift_8groups": sim.swift_logging(num_groups=8),
            "swift_sync": sim.swift_logging(mode="sync"),
            "swift_16g_PR": sim.swift_logging(num_groups=16,
                                              parallel_degree=16),
        }
    scenario_col = ""
    goodput_by_method: dict[str, float] = {}
    if args.scenario:
        try:
            # several fig8 columns share one analytic method (the group
            # count does not change the cost-model pricing): evaluate
            # each method once
            for method in {_FIG8_METHODS[n] for n in timelines}:
                results = evaluate_scenario(
                    args.scenario, workload, method, seeds=range(args.seeds),
                )
                goodput_by_method[method] = (
                    sum(r.goodput_fraction for r in results) / len(results)
                )
        except ConfigurationError as exc:
            print(f"fig8: {exc}", file=sys.stderr)
            return 2
        scenario_col = f" {'goodput@' + args.scenario:>22}"
    print(f"{'method':<20} {'throughput':>11} {'recovery':>9}{scenario_col}")
    for name, tl in timelines.items():
        extra = ""
        if args.scenario:
            mean = goodput_by_method[_FIG8_METHODS[name]]
            extra = f" {mean * 100:>21.1f}%"
        print(f"{name:<20} {tl.steady_throughput:>11.1f} "
              f"{tl.recovery_time:>8.1f}s{extra}")
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    if args.optimize:
        return _plan_optimize(args)
    if args.budget_gb is None:
        print("plan: --budget-gb is required without --optimize",
              file=sys.stderr)
        return 2
    workload = _WORKLOAD_ALIASES[args.workload]
    try:
        plan = plan_workload(
            workload,
            log_budget_bytes=args.budget_gb * GB,
            checkpoint_interval=args.ckpt_interval,
        )
    except ConfigurationError as exc:
        print(f"plan: {exc}", file=sys.stderr)
        return 2
    if plan.strategy is not FTStrategy.LOGGING:
        print("selective logging applies to pipeline-parallel workloads",
              file=sys.stderr)
        return 2
    result = plan.selective
    if args.json:
        from repro.utils.jsonl import canonical_json

        print(canonical_json({
            "workload": workload.name,
            "budget_gb": args.budget_gb,
            "checkpoint_interval": args.ckpt_interval,
            "strategy": plan.strategy.value,
            "groups": [list(g) for g in result.plan.groups],
            "storage_bytes": result.storage_bytes,
            "expected_recovery_time": result.expected_recovery_time,
        }))
        return 0
    print(f"workload: {workload.name}, budget {args.budget_gb} GB, "
          f"ckpt interval {args.ckpt_interval}")
    print(plan.describe())
    print(f"groups ({result.plan.num_groups}): "
          f"{[list(g) for g in result.plan.groups]}")
    print(f"storage used: {result.storage_bytes / GB:.1f} GB")
    print(f"expected recovery: {result.expected_recovery_time:.3f} s "
          f"per lost iteration")
    return 0


def _plan_optimize(args: argparse.Namespace) -> int:
    """``repro plan --optimize``: goodput-driven auto-planning."""
    from repro.plan import PlanSearchError, autoplan_workload

    workload = _WORKLOAD_ALIASES[args.workload]
    try:
        report = autoplan_workload(
            workload, args.scenario,
            searcher=args.searcher,
            seed=args.search_seed,
            eval_seeds=args.seeds,
            top_k=args.top_k,
        )
    except PlanSearchError as exc:
        # the grid had no survivors: a data problem, not a usage error
        print(f"plan: {exc}", file=sys.stderr)
        return 1
    except ConfigurationError as exc:
        print(f"plan: {exc}", file=sys.stderr)
        return 2
    print(report.to_json() if args.json else report.describe())
    return 0


def cmd_schedule(args: argparse.Namespace) -> int:
    """``repro schedule``: list/dump/verify pipeline schedule programs."""
    from repro.parallel import (
        ScheduleProgram,
        ScheduleVerificationError,
        build_program,
        default_virtual_stages,
        schedule_names,
        simulate_program,
        verify_program,
    )

    modes = sum(1 for f in (args.list, args.dump, args.verify) if f)
    if modes != 1:
        print("schedule: exactly one of --list/--dump/--verify is required",
              file=sys.stderr)
        return 2
    if args.list:
        print(f"{'schedule':<20} {'virtual stages':>14}")
        for name in schedule_names():
            print(f"{name:<20} {default_virtual_stages(name):>14}")
        return 0
    if args.verify:
        try:
            program = ScheduleProgram.load(args.verify)
        except (OSError, ValueError, KeyError, ConfigurationError) as exc:
            print(f"schedule: unreadable program {args.verify!r}: {exc}",
                  file=sys.stderr)
            return 1
        try:
            check = verify_program(program)
        except ScheduleVerificationError as exc:
            print(f"schedule: INVALID {program.name!r}: {exc}",
                  file=sys.stderr)
            return 1
        print(f"schedule {program.name!r} OK: "
              f"{program.num_stages} stages x "
              f"{program.num_microbatches} micro-batches "
              f"({program.virtual_stages} virtual), "
              f"{check.num_instructions} instructions, "
              f"peak in-flight {list(check.peak_in_flight)}")
        return 0
    # --dump NAME
    try:
        v = args.virtual_stages or default_virtual_stages(args.dump)
        program = build_program(
            args.dump, args.num_stages, args.num_microbatches, v
        )
        verify_program(program)
    except ConfigurationError as exc:
        print(f"schedule: {exc}", file=sys.stderr)
        return 2
    text = program.to_jsonl()
    if args.output:
        Path(args.output).write_text(text, encoding="utf-8")
        timing = simulate_program(
            program,
            [1e-3] * program.num_stages,
            [2e-3] * program.num_stages,
        )
        print(f"wrote {program.num_instructions} instructions to "
              f"{args.output} (simulated iteration "
              f"{timing.iteration_time * 1e3:.2f} ms)")
    else:
        sys.stdout.write(text)
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    """Multi-tenant fleet demo: mixed DP/PP jobs, preemption, failures."""
    recorder = sink = None
    if args.trace:
        try:
            trace = _load_trace(args.trace)
        except ConfigurationError as exc:
            print(f"fleet: {exc}", file=sys.stderr)
            return 1
    else:
        trace = None
    try:
        specs, failures = demo_fleet_specs(args.iterations)
        if args.scenario or trace is not None:
            # scenario/trace-driven crashes replace the demo's scripted two
            failures = []
        if args.telemetry:
            # stream events to disk as they happen so another terminal
            # can `repro obs FILE --follow` the run live
            recorder = TraceRecorder()
            sink = JsonlSink(
                args.telemetry, source="fleet",
                machines=args.machines, devices=args.devices,
                spares=args.spares,
            )
            recorder.subscribe(sink)
        sim = FleetSimulator(
            specs,
            num_machines=args.machines,
            devices_per_machine=args.devices,
            num_spares=args.spares,
            failures=failures,
            scenario=args.scenario,
            scenario_seed=args.scenario_seed,
            trace=trace,
            recorder=recorder,
        )
        report = sim.run()
    except ConfigurationError as exc:
        print(f"fleet: {exc}", file=sys.stderr)
        return 2
    finally:
        if sink is not None:
            sink.close()
    injected = (
        len(sim.chaos_trace.crashes) if sim.chaos_trace is not None
        else len(failures)
    )
    source = (
        f"scenario {sim.chaos_trace.scenario!r} "
        f"(seed {sim.chaos_trace.seed})"
        if sim.chaos_trace is not None else "scripted demo"
    )
    print(f"fleet: {len(specs)} jobs on {args.machines}x{args.devices} "
          f"shared cluster, {args.spares} spare(s), "
          f"{injected} injected failures [{source}]")
    print(report.format_table())
    if args.telemetry:
        print(f"telemetry streamed to {args.telemetry} "
              f"(summarize: python -m repro.cli obs {args.telemetry})")
    return 0


def _load_trace(path: str) -> FailureTrace:
    """Load a trace file, folding I/O and parse failures into one error.

    Unreadable or corrupt trace files are *data* problems (exit 1 at
    the CLI), never bare tracebacks.
    """
    try:
        return FailureTrace.load(path)
    except (OSError, ValueError, KeyError, ConfigurationError) as exc:
        raise ConfigurationError(f"cannot read trace {path!r}: {exc}")


def _chaos_experiment(parallelism: str, machines: int,
                      checkpoint_interval: int) -> Experiment:
    """The small deterministic MLP workload `repro chaos` drives."""
    if parallelism == "pp":
        # the flat MLP has 2*depth+1 layers; depth >= stages guarantees
        # every stage holds at least one Linear (same rule as repro.jobs)
        depth = max(2, machines)
        par = ParallelismSpec(kind="pp", num_workers=machines,
                              num_microbatches=4)
        model = ModelSpec(family="mlp", dim=8, hidden_dim=16, num_classes=4,
                          depth=depth, seed=11, optimizer="adam", lr=0.01)
    else:
        par = ParallelismSpec(kind="dp", num_workers=machines)
        model = ModelSpec(family="mlp", dim=8, hidden_dim=16, num_classes=4,
                          depth=2, seed=11, optimizer="sgd_momentum", lr=0.05)
    return Experiment(
        name="chaos",
        model=model,
        data=DataSpec(kind="classification", batch_size=16, seed=12),
        cluster=ClusterSpec(num_machines=machines, devices_per_machine=1),
        parallelism=par,
        fault_tolerance=FaultToleranceSpec(
            checkpoint_interval=checkpoint_interval,
            # multi-failure traces: later crashes must never need the
            # earlier crash's (dropped) log records
            checkpoint_after_recovery=True,
        ),
    )


def _chaos_run(trace, parallelism: str, machines: int, iterations: int,
               checkpoint_interval: int, recorder=None):
    """Execute one trace on a real engine.

    Returns ``(TrainingTrace, batch_size, Session)``; pass a
    :class:`~repro.obs.TraceRecorder` to capture telemetry
    (``session.telemetry`` afterwards).
    """
    exp = _chaos_experiment(parallelism, machines, checkpoint_interval)
    session = exp.build()
    schedule = trace.to_schedule()
    run = session.run(
        iterations,
        failures=schedule,
        max_recoveries=len(schedule) + 16,
        recorder=recorder,
    )
    return run, exp.data.batch_size, session


def _telemetry_seed_path(base: str, seed: int) -> Path:
    """Per-seed telemetry file: insert ``_seedN`` before the suffix."""
    p = Path(base)
    return p.with_name(f"{p.stem}_seed{seed}{p.suffix or '.jsonl'}")


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run (or replay) a named failure scenario on real engines."""
    if args.list:
        print(f"{'scenario':<20} {'E[fail/100h]':>12}  description")
        for name in scenario_names():
            spec = get_scenario(name)
            rate = spec.rate_per_hour(args.machines) * 100
            print(f"{name:<20} {rate:>12.1f}  {spec.description}")
        return 0

    if args.trace:
        try:
            trace = _load_trace(args.trace)
        except ConfigurationError as exc:
            print(f"chaos: {exc}", file=sys.stderr)
            return 1
        meta = trace.meta_dict
        parallelism = meta.get("parallelism", args.parallelism)
        machines = int(meta.get("machines", trace.num_machines))
        iterations = int(meta.get("iterations", trace.horizon_iters or 60))
        interval = int(meta.get("checkpoint_interval", args.ckpt_interval))
        recorder = TraceRecorder() if args.telemetry else None
        run, batch, session = _chaos_run(
            trace, parallelism, machines, iterations, interval,
            recorder=recorder,
        )
        goodput = run.goodput(batch)
        recorded = meta.get("goodput")
        print(f"replayed {args.trace}: scenario={trace.scenario} "
              f"seed={trace.seed} crashes={len(trace.crashes)}")
        print(f"  goodput: {goodput!r} samples/s "
              f"({len(run.recoveries)} recoveries, "
              f"final loss {run.losses[-1]!r})")
        if recorder is not None:
            telemetry = session.telemetry.with_meta(
                scenario=trace.scenario, scenario_seed=trace.seed,
            )
            path = telemetry.save(args.telemetry)
            print(f"  telemetry: {path} "
                  f"(summarize: python -m repro.cli obs {path})")
        if recorded is None:
            return 0
        match = repr(goodput) == recorded
        print(f"  recorded goodput: {recorded} -> "
              f"{'bitwise match' if match else 'MISMATCH'}")
        return 0 if match else 1

    if not args.scenario:
        print("chaos: pass --scenario NAME, --trace FILE, or --list",
              file=sys.stderr)
        return 2
    try:
        spec = get_scenario(args.scenario)
    except ConfigurationError as exc:
        print(f"chaos: {exc}", file=sys.stderr)
        return 2

    out_dir = Path(args.out)
    print(f"scenario {spec.name!r}: {spec.description}")
    print(f"  {args.parallelism} on {args.machines} machines, "
          f"{args.iterations} iterations/run, {args.seeds} seed(s), "
          f"expected {spec.expected_failures(args.machines):.1f} "
          "failures per horizon")
    print(f"{'seed':>4} {'crashes':>7} {'recov':>5} {'lost':>5} "
          f"{'goodput':>12} {'final_loss':>12}  trace")
    goodputs = []
    for seed in range(args.seeds):
        trace = spec.sample(seed, args.machines,
                            horizon_iters=args.iterations)
        recorder = TraceRecorder() if args.telemetry else None
        run, batch, session = _chaos_run(
            trace, args.parallelism, args.machines, args.iterations,
            args.ckpt_interval, recorder=recorder,
        )
        if recorder is not None:
            session.telemetry.with_meta(
                scenario=spec.name, scenario_seed=seed,
            ).save(_telemetry_seed_path(args.telemetry, seed))
        goodput = run.goodput(batch)
        goodputs.append(goodput)
        lost = sum(r.lost_iterations for r in run.recoveries)
        trace = trace.with_meta(
            goodput=repr(goodput),
            final_loss=repr(run.losses[-1]),
            recoveries=len(run.recoveries),
            parallelism=args.parallelism,
            machines=args.machines,
            iterations=args.iterations,
            checkpoint_interval=args.ckpt_interval,
            batch_size=batch,
        )
        path = trace.save(out_dir / f"{spec.name}_seed{seed}.jsonl")
        print(f"{seed:>4} {len(trace.crashes):>7} "
              f"{len(run.recoveries):>5} {lost:>5} "
              f"{goodput:>12.4f} {run.losses[-1]:>12.6f}  {path}")
    mean = sum(goodputs) / len(goodputs)
    print(f"\nmean goodput over {args.seeds} seed(s): "
          f"{mean:.4f} samples/s")
    print(f"replay any run bitwise:  python -m repro.cli chaos "
          f"--trace {out_dir / (spec.name + '_seed0.jsonl')}")
    if args.telemetry:
        print(f"telemetry per seed:      "
              f"{_telemetry_seed_path(args.telemetry, 0)} ...")
    return 0


def _format_event(e: TelemetryEvent) -> str:
    """One human-readable line per event (the --follow stream format)."""
    sim = f"{e.sim:12.4f}" if e.sim is not None else " " * 12
    if e.kind == "span":
        dur = e.sim_dur if e.sim_dur is not None else e.wall_dur
        return f"{sim} span    {e.name:<28} {dur:.6f}s"
    if e.kind in ("count", "gauge"):
        return f"{sim} {e.kind:<7} {e.name:<28} {e.value:g}"
    return f"{sim} instant {e.name}"


def _obs_follow(path: Path, idle_timeout: float) -> int:
    """Tail a live telemetry JSONL (a JsonlSink stream) until it idles."""
    import time as _time

    start = _time.monotonic()
    while not path.exists():
        if _time.monotonic() - start > idle_timeout:
            print(f"obs: {path} never appeared "
                  f"(waited {idle_timeout:g}s)", file=sys.stderr)
            return 2
        _time.sleep(0.1)
    try:
        return _obs_follow_loop(path, idle_timeout)
    except BrokenPipeError:
        return 0  # reader (e.g. `| head`) went away; not an error


def _obs_follow_loop(path: Path, idle_timeout: float) -> int:
    import json
    import time as _time

    header = None
    last_data = _time.monotonic()
    with path.open("rb") as fh:
        buf = b""
        while True:
            chunk = fh.readline()
            if chunk:
                buf += chunk
                if not buf.endswith(b"\n"):
                    continue  # partial line: wait for the writer's flush
                line, buf = buf.decode(), b""
                last_data = _time.monotonic()
                if header is None:
                    header = json.loads(line)
                    print(f"following {path} "
                          f"(source {header.get('source')!r}, "
                          f"v{header.get('version')})")
                    continue
                print(_format_event(TelemetryEvent.from_json(line)))
            else:
                if _time.monotonic() - last_data > idle_timeout:
                    break
                _time.sleep(0.1)
    print(f"obs: stream idle for {idle_timeout:g}s; stopped following")
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    """Summarize, export, or tail a telemetry JSONL stream."""
    path = Path(args.file)
    if args.follow:
        return _obs_follow(path, args.idle_timeout)
    try:
        trace = TelemetryTrace.load(path)
    except (OSError, ValueError, KeyError, ConfigurationError) as exc:
        print(f"obs: cannot read telemetry {args.file!r}: {exc}",
              file=sys.stderr)
        return 1
    exported = False
    if args.chrome:
        out = Path(args.chrome)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(to_chrome_trace(trace, timeline=args.timeline))
        print(f"wrote Chrome trace ({args.timeline} timeline) to {out} "
              f"-- load it at https://ui.perfetto.dev")
        exported = True
    if args.csv:
        text = telemetry_to_csv(trace)
        if args.csv == "-":
            sys.stdout.write(text)
        else:
            out = Path(args.csv)
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(text)
            print(f"wrote per-iteration CSV to {out}")
        exported = True
    if not exported:
        print(summarize_telemetry(trace))
    return 0


def _serve_config(args: argparse.Namespace,
                  wal_path: Path) -> ServeConfig | None:
    """Geometry for a ServeServer: explicit for a fresh WAL, None (derive
    from the log) when resuming an existing one."""
    if wal_path.exists() and wal_path.stat().st_size > 0:
        return None
    return ServeConfig(
        num_machines=args.machines if args.machines else 5,
        devices_per_machine=args.devices if args.devices else 2,
        num_spares=args.spares,
        repair_ticks=demo_config().repair_ticks,
        snapshot_interval=demo_config().snapshot_interval,
    )


def _serve_replay(path: str) -> int:
    """Fold a serve WAL (file or segment directory) into state."""
    import json

    try:
        if Path(path).is_dir():
            # read-only: plan recovery without renaming, truncating, or
            # opening a writer, so inspecting a live server's WAL is safe
            info = SegmentedWriteAheadLog.inspect(path)
            state = info.recover_state()
            for q in info.quarantined:
                print(f"serve: corrupt segment {q['segment']} at "
                      f"{q['path']} ({q['reason']}; seqs "
                      f"[{q['lost_first_seq']}..{q['lost_last_seq']}] "
                      f"unusable, state_loss={q['state_loss']})",
                      file=sys.stderr)
            print(f"replayed {len(info.events)} events from {path} "
                  f"(read-only; snapshot anchor at seq "
                  f"{info.anchor_base_seq}, {info.segment_count} "
                  f"segments)")
        else:
            events = WriteAheadLog.load_events(path)
            state = ServeState.replay(events)
            print(f"replayed {len(events)} events from {path}")
    except (OSError, ValueError, KeyError, ConfigurationError,
            LogIntegrityError) as exc:
        print(f"serve: cannot replay WAL {path!r}: {exc}",
              file=sys.stderr)
        return 1
    print(json.dumps(state.summary(), indent=2, sort_keys=True))
    return 0


def _serve_demo(args: argparse.Namespace) -> int:
    """Run (or crash-resume) the canonical three-tenant demo workload."""
    wal = Path(args.wal) if args.wal else Path("serve-demo.jsonl")
    try:
        server = ServeServer(wal, demo_config(), fsync=not args.no_fsync,
                             segment_bytes=args.segment_bytes)
    except (OSError, ConfigurationError) as exc:
        print(f"serve: cannot open WAL {str(wal)!r}: {exc}",
              file=sys.stderr)
        return 1
    with server:
        if server.recovered:
            print(f"recovered from {wal}: "
                  f"{len(server.wal.events)} events replayed "
                  f"(history seq {server.wal.last_seq}), "
                  f"resuming at round {server.state.round}")
        run_script(server, demo_traffic())
        state = server.state
        print(f"{'job':<14} {'tenant':<9} {'status':>9} {'iters':>5} "
              f"{'fails':>5} {'recov':>5} {'preempt':>7}")
        for job in state.jobs_with_status(*(
                "completed", "failed", "rejected", "shed")):
            print(f"{job['name']:<14} {job['tenant']:<9} "
                  f"{job['status']:>9} {job['iterations_done']:>5} "
                  f"{job['failures']:>5} {job['recoveries']:>5} "
                  f"{job['preemptions']:>7}")
        print(f"\n{server.wal.next_seq} WAL events, "
              f"{state.round} rounds, "
              f"fleet time {state.fleet_time:.1f} s, "
              f"goodput {state.goodput():.1f} samples/s")
    print(f"WAL: {wal}  (kill this process at any point and re-run "
          f"with the same --wal: recovery is replay)")
    return 0


def _serve_fleet_demo(args: argparse.Namespace) -> int:
    """Mirror a real fleet run into a serve WAL and audit the replay."""
    path = Path(args.wal) if args.wal else Path("fleet-wal.jsonl")
    machines = args.machines if args.machines else 6
    devices = args.devices if args.devices else 4
    specs, failures = demo_fleet_specs(args.iterations)
    wal = WriteAheadLog(path, fsync=not args.no_fsync,
                        meta={"service": "repro.serve.mirror"})
    try:
        sim = FleetSimulator(
            specs,
            num_machines=machines,
            devices_per_machine=devices,
            num_spares=args.spares,
            failures=failures,
            wal=wal,
        )
        report = sim.run()
    finally:
        wal.close()
    state = ServeState.replay(WriteAheadLog.load_events(path))
    mismatches = []
    if state.round != report.rounds:
        mismatches.append(
            f"rounds: wal {state.round} != fleet {report.rounds}")
    if state.fleet_time != report.makespan:
        mismatches.append(
            f"makespan: wal {state.fleet_time!r} != "
            f"fleet {report.makespan!r}")
    by_name = {j.name: j for j in report.jobs}
    for name, job in sorted(state.jobs.items()):
        fleet_job = by_name[name]
        if job["iterations_done"] != fleet_job.iterations:
            mismatches.append(
                f"{name}: wal iters {job['iterations_done']} != "
                f"fleet {fleet_job.iterations}")
        if job["status"] != fleet_job.state:
            mismatches.append(
                f"{name}: wal status {job['status']} != "
                f"fleet {fleet_job.state}")
    print(f"mirrored {len(WriteAheadLog.load_events(path))} WAL events "
          f"from a real {machines}x{devices} fleet run to {path}")
    print(report.format_table())
    if mismatches:
        print("\nreplay audit: MISMATCH", file=sys.stderr)
        for line in mismatches:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"\nreplay audit: ServeState.replay(WAL) reproduces the "
          f"fleet accounting exactly ({len(state.jobs)} jobs, "
          f"round {state.round}, makespan {state.fleet_time:.2f} s)")
    return 0


def _serve_listen(args: argparse.Namespace) -> int:
    """Serve the NDJSON protocol over stdio or TCP against one WAL."""
    if not args.wal:
        print("serve: --stdio/--tcp need --wal FILE (the WAL is what "
              "makes a SIGKILL survivable)", file=sys.stderr)
        return 2
    wal = Path(args.wal)
    try:
        server = ServeServer(wal, _serve_config(args, wal),
                             fsync=not args.no_fsync,
                             segment_bytes=args.segment_bytes)
    except (OSError, ConfigurationError) as exc:
        print(f"serve: cannot open WAL {str(wal)!r}: {exc}",
              file=sys.stderr)
        return 1
    with server:
        # SIGTERM = drain: in-flight clients get the shutting_down
        # envelope, the WAL is flushed + fsynced by close(), exit 0
        install_graceful_shutdown(server)
        if args.tcp is not None:
            def announce(port: int) -> None:
                # the crash-restart harness parses this line
                print(f"serve: listening on 127.0.0.1:{port} "
                      f"(wal {wal})", flush=True)
            try:
                serve_tcp(server, port=args.tcp,
                          ready_callback=announce)
            except OSError as exc:
                print(f"serve: cannot listen on 127.0.0.1:{args.tcp}: "
                      f"{exc}", file=sys.stderr)
                return 1
        else:
            serve_stdio(server)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """The crash-recoverable multi-tenant control plane (repro.serve)."""
    modes = [bool(args.demo), bool(args.drill), bool(args.stdio),
             args.tcp is not None, bool(args.replay),
             bool(args.fleet_demo), bool(args.netchaos)]
    if sum(modes) > 1:
        print("serve: pick one of --demo, --drill, --stdio, --tcp, "
              "--replay, --fleet-demo, --netchaos", file=sys.stderr)
        return 2
    if args.replay:
        return _serve_replay(args.replay)
    if args.netchaos:
        report = network_drill(segment_bytes=args.segment_bytes or 8192)
        print("network chaos drill: netchaos profiles x crash-restart "
              "x segment corruption, exactly-once audited per cell")
        print(report.format_table())
        return 0 if report.passed else 1
    if args.drill:
        try:
            report = control_plane_drill(kill_points=args.kill_points)
        except ConfigurationError as exc:
            print(f"serve: {exc}", file=sys.stderr)
            return 2
        print(f"control-plane crash drill: SIGKILL at "
              f"{len(report.results)} WAL offsets "
              f"(every other one torn mid-line)")
        print(report.format_table())
        return 0 if report.passed else 1
    if args.stdio or args.tcp is not None:
        return _serve_listen(args)
    if args.fleet_demo:
        return _serve_fleet_demo(args)
    return _serve_demo(args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Swift reproduction experiment runner"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list Table-2 workloads").set_defaults(
        fn=cmd_workloads
    )
    sub.add_parser("table3", help="logging space overhead").set_defaults(
        fn=cmd_table3
    )

    t5 = sub.add_parser("table5", help="end-to-end simulation study")
    t5.add_argument("--mtbf", type=float, default=17.0)
    t5.add_argument("--repeats", type=int, default=10)
    t5.add_argument("--seed", type=int, default=1)
    t5.set_defaults(fn=cmd_table5)

    f8 = sub.add_parser("fig8", help="macro-benchmark for one workload")
    f8.add_argument("workload", choices=sorted(_WORKLOAD_ALIASES))
    f8.add_argument("--scenario", default=None,
                    help="add an analytic goodput column under a named "
                         "repro.chaos scenario")
    f8.add_argument("--seeds", type=int, default=3,
                    help="scenario traces to average over")
    f8.set_defaults(fn=cmd_fig8)

    fleet = sub.add_parser(
        "fleet", help="multi-job scheduler demo on a shared cluster"
    )
    fleet.add_argument("--machines", type=int, default=6)
    fleet.add_argument("--devices", type=int, default=4)
    fleet.add_argument("--spares", type=int, default=1)
    fleet.add_argument("--iterations", type=int, default=30)
    fleet.add_argument("--scenario", default=None,
                       help="draw machine crashes from a named "
                            "repro.chaos scenario instead of the demo's "
                            "scripted two")
    fleet.add_argument("--scenario-seed", type=int, default=0)
    fleet.add_argument("--trace", default=None,
                       help="replay crashes from a saved FailureTrace "
                            "JSONL file")
    fleet.add_argument("--telemetry", default=None, metavar="FILE",
                       help="stream live telemetry JSONL to FILE "
                            "(tail it with: repro obs FILE --follow)")
    fleet.set_defaults(fn=cmd_fleet)

    chaos = sub.add_parser(
        "chaos",
        help="run or replay a named failure scenario on real engines",
    )
    chaos.add_argument("--scenario", default=None,
                       help="registered scenario name (see --list)")
    chaos.add_argument("--seeds", type=int, default=5,
                       help="number of independent seeded runs")
    chaos.add_argument("--iterations", type=int, default=60,
                       help="training iterations per run (the scenario "
                            "horizon maps onto them)")
    chaos.add_argument("--parallelism", choices=["dp", "pp"], default="dp")
    chaos.add_argument("--machines", type=int, default=4)
    chaos.add_argument("--ckpt-interval", type=int, default=20)
    chaos.add_argument("--out", default="traces",
                       help="directory for emitted trace JSONL files")
    chaos.add_argument("--trace", default=None,
                       help="replay a saved trace and verify its "
                            "recorded goodput bitwise")
    chaos.add_argument("--list", action="store_true",
                       help="list registered scenarios and exit")
    chaos.add_argument("--telemetry", default=None, metavar="FILE",
                       help="record per-phase telemetry; scenario runs "
                            "write one FILE per seed (_seedN suffix)")
    chaos.set_defaults(fn=cmd_chaos)

    obs = sub.add_parser(
        "obs", help="summarize, export, or tail a telemetry JSONL stream"
    )
    obs.add_argument("file", help="telemetry JSONL (from --telemetry, "
                                  "session.telemetry.save(), or a JsonlSink)")
    obs.add_argument("--chrome", default=None, metavar="OUT",
                     help="export Chrome trace-event JSON for Perfetto / "
                          "chrome://tracing")
    obs.add_argument("--timeline", choices=["wall", "sim"], default="wall",
                     help="clock driving the Chrome trace axis "
                          "(default: wall)")
    obs.add_argument("--csv", default=None, metavar="OUT",
                     help="export per-iteration CSV rows ('-' for stdout)")
    obs.add_argument("--follow", action="store_true",
                     help="tail a live stream (e.g. fleet --telemetry) "
                          "until it idles")
    obs.add_argument("--idle-timeout", type=float, default=5.0,
                     help="seconds of silence before --follow stops")
    obs.set_defaults(fn=cmd_obs)

    serve = sub.add_parser(
        "serve",
        help="crash-recoverable multi-tenant control plane (repro.serve)",
    )
    serve.add_argument("--wal", default=None, metavar="FILE",
                       help="write-ahead log path; an existing WAL is "
                            "resumed (crash recovery is replay)")
    serve.add_argument("--demo", action="store_true",
                       help="run the three-tenant demo workload to "
                            "completion (the default mode)")
    serve.add_argument("--drill", action="store_true",
                       help="SIGKILL the control plane at N WAL offsets "
                            "and prove zero acknowledged-job loss")
    serve.add_argument("--kill-points", type=int, default=5,
                       help="WAL cut points the drill exercises")
    serve.add_argument("--stdio", action="store_true",
                       help="serve the NDJSON protocol on stdin/stdout")
    serve.add_argument("--tcp", type=int, default=None, metavar="PORT",
                       help="serve the NDJSON protocol on TCP "
                            "(0 picks a free port)")
    serve.add_argument("--replay", default=None, metavar="WAL",
                       help="fold an existing WAL into state and print "
                            "its summary")
    serve.add_argument("--netchaos", action="store_true",
                       help="run the network-fault acceptance matrix "
                            "(drop/dup/reorder/truncate/partition x "
                            "crash-restart x segment corruption)")
    serve.add_argument("--segment-bytes", type=int, default=None,
                       metavar="N",
                       help="rotate the WAL into snapshot-anchored "
                            "segments of ~N bytes (recovery cost "
                            "becomes O(segment), not O(history))")
    serve.add_argument("--fleet-demo", action="store_true",
                       help="mirror a real FleetSimulator run into a "
                            "serve WAL and audit that replay reproduces "
                            "its accounting")
    serve.add_argument("--machines", type=int, default=None,
                       help="cluster machines (default: 5, or 6 for "
                            "--fleet-demo)")
    serve.add_argument("--devices", type=int, default=None,
                       help="devices per machine (default: 2, or 4 for "
                            "--fleet-demo)")
    serve.add_argument("--spares", type=int, default=1)
    serve.add_argument("--iterations", type=int, default=30,
                       help="per-job iterations for --fleet-demo")
    serve.add_argument("--no-fsync", action="store_true",
                       help="skip fsync on WAL appends (tests/demos)")
    serve.set_defaults(fn=cmd_serve)

    plan = sub.add_parser(
        "plan",
        help="selective-logging group planner / goodput auto-planner",
    )
    plan.add_argument("--workload", choices=sorted(_WORKLOAD_ALIASES),
                      default="bert")
    plan.add_argument("--budget-gb", type=float, default=None,
                      help="selective-logging storage budget (required "
                           "without --optimize)")
    plan.add_argument("--ckpt-interval", type=int, default=100)
    plan.add_argument("--optimize", action="store_true",
                      help="search the (parallelism x recovery x "
                           "cadence) space for the best expected goodput "
                           "under --scenario")
    plan.add_argument("--scenario", default="steady_mtbf",
                      help="named repro.chaos scenario the search "
                           "optimizes for")
    plan.add_argument("--seeds", type=int, default=3,
                      help="paired scenario traces per candidate")
    plan.add_argument("--searcher", default="auto",
                      help="registered searcher name (auto = exhaustive "
                           "for small grids, anneal beyond)")
    plan.add_argument("--search-seed", type=int, default=0,
                      help="seed for the (deterministic) search")
    plan.add_argument("--top-k", type=int, default=5,
                      help="ranked candidates to report")
    plan.add_argument("--json", action="store_true",
                      help="emit canonical JSON instead of the table")
    plan.set_defaults(fn=cmd_plan)

    sched = sub.add_parser(
        "schedule",
        help="list, dump, or verify pipeline schedule programs",
    )
    sched.add_argument("--list", action="store_true",
                       help="registered schedule generators")
    sched.add_argument("--dump", metavar="NAME", default=None,
                       help="emit NAME's instruction program as JSONL")
    sched.add_argument("--verify", metavar="FILE", default=None,
                       help="statically verify a program JSONL file")
    sched.add_argument("-p", "--num-stages", type=int, default=4)
    sched.add_argument("-m", "--num-microbatches", type=int, default=8)
    sched.add_argument("--virtual-stages", type=int, default=0,
                       help="chunks per stage (0 = schedule default)")
    sched.add_argument("-o", "--output", default=None,
                       help="write the dump here instead of stdout")
    sched.set_defaults(fn=cmd_schedule)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    try:
        code = main()
        sys.stdout.flush()
    except BrokenPipeError:
        # stdout was a pipe whose reader quit (`repro serve ... | head`);
        # the conventional exit for a SIGPIPE'd writer, not a traceback
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 141
    raise SystemExit(code)
