"""Command-line interface: run paper experiments from the terminal.

Usage::

    python -m repro.cli table3
    python -m repro.cli table5 [--mtbf 17] [--repeats 10]
    python -m repro.cli fig8 {wrn|vit|bert}
    python -m repro.cli plan --workload bert --budget-gb 200
    python -m repro.cli workloads
    python -m repro.cli fleet [--machines 6] [--devices 4] [--spares 1]

Each subcommand prints the same rows the corresponding paper artifact
reports (the pytest benchmarks under ``benchmarks/`` are the asserted
versions of the same computations).
"""

from __future__ import annotations

import argparse
import sys

from repro.api import FTStrategy, demo_fleet_specs, plan_workload
from repro.errors import ConfigurationError
from repro.sim import (
    BERT_128,
    VIT_128_32,
    WIDE_RESNET_50,
    WORKLOADS,
    CostModel,
    EndToEndSimulator,
    FleetSimulator,
    ThroughputSimulator,
)

__all__ = ["build_parser", "main"]

GB = 1e9

_WORKLOAD_ALIASES = {
    "wrn": WIDE_RESNET_50,
    "vit": VIT_128_32,
    "bert": BERT_128,
}


def cmd_workloads(_: argparse.Namespace) -> int:
    print(f"{'model':<16} {'params':>8} {'parallelism':>11} {'workers':>7} "
          f"{'batch':>6} {'state':>8}")
    for w in WORKLOADS.values():
        print(f"{w.name:<16} {w.num_params / 1e9:>7.2f}B {w.parallelism:>11} "
              f"{w.num_workers:>7} {w.batch_size:>6} "
              f"{w.state_bytes / GB:>7.2f}G")
    return 0


def cmd_table3(_: argparse.Namespace) -> int:
    print(f"{'model':<12} {'#groups':>7} {'GB/iter':>8} {'GB/s/machine':>13}")
    for w in (VIT_128_32, BERT_128):
        cost = CostModel(w)
        for groups in (16, 8):
            print(f"{w.name:<12} {groups:>7} "
                  f"{cost.logging_bytes_per_iteration(groups) / GB:>8.2f} "
                  f"{cost.logging_bandwidth_per_machine(groups) / GB:>13.3f}")
    return 0


def cmd_table5(args: argparse.Namespace) -> int:
    methods = {
        "Wide-ResNet-50": "swift_replication",
        "ViT-128/32": "swift_logging_pr",
        "BERT-128": "swift_logging_pr",
    }
    print(f"median TBF = {args.mtbf}h, repeats = {args.repeats}")
    print(f"{'model':<16} {'#fail':>5} {'ckpt':>8} {'swift':>8} {'speedup':>8}")
    for w in (WIDE_RESNET_50, VIT_128_32, BERT_128):
        sim = EndToEndSimulator(w, median_tbf_hours=args.mtbf,
                                repeats=args.repeats, seed=args.seed)
        ckpt = sim.simulate("global_checkpoint")
        swift = sim.simulate(methods[w.name])
        print(f"{w.name:<16} {ckpt.mean_failures:>5.0f} "
              f"{ckpt.mean_hours:>7.1f}h {swift.mean_hours:>7.1f}h "
              f"{ckpt.mean_hours / swift.mean_hours:>7.2f}x")
    return 0


def cmd_fig8(args: argparse.Namespace) -> int:
    workload = _WORKLOAD_ALIASES[args.workload]
    sim = ThroughputSimulator(workload)
    # the repro.api planner decides which recovery family the workload
    # exercises (Section 3), hence which method column set to print
    strategy = plan_workload(workload).strategy
    if strategy is FTStrategy.REPLICATION:
        timelines = {
            "global_ckpt": sim.global_checkpointing(),
            "checkfreq": sim.checkfreq(),
            "elastic_horovod": sim.elastic_horovod(),
            "swift_replication": sim.swift_replication(),
        }
    else:
        timelines = {
            "global_ckpt": sim.global_checkpointing(),
            "swift_16groups": sim.swift_logging(num_groups=16),
            "swift_8groups": sim.swift_logging(num_groups=8),
            "swift_sync": sim.swift_logging(mode="sync"),
            "swift_16g_PR": sim.swift_logging(num_groups=16,
                                              parallel_degree=16),
        }
    print(f"{'method':<20} {'throughput':>11} {'recovery':>9}")
    for name, tl in timelines.items():
        print(f"{name:<20} {tl.steady_throughput:>11.1f} "
              f"{tl.recovery_time:>8.1f}s")
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    workload = _WORKLOAD_ALIASES[args.workload]
    plan = plan_workload(
        workload,
        log_budget_bytes=args.budget_gb * GB,
        checkpoint_interval=args.ckpt_interval,
    )
    if plan.strategy is not FTStrategy.LOGGING:
        print("selective logging applies to pipeline-parallel workloads",
              file=sys.stderr)
        return 2
    result = plan.selective
    print(f"workload: {workload.name}, budget {args.budget_gb} GB, "
          f"ckpt interval {args.ckpt_interval}")
    print(plan.describe())
    print(f"groups ({result.plan.num_groups}): "
          f"{[list(g) for g in result.plan.groups]}")
    print(f"storage used: {result.storage_bytes / GB:.1f} GB")
    print(f"expected recovery: {result.expected_recovery_time:.3f} s "
          f"per lost iteration")
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    """Multi-tenant fleet demo: mixed DP/PP jobs, preemption, failures."""
    try:
        specs, failures = demo_fleet_specs(args.iterations)
        sim = FleetSimulator(
            specs,
            num_machines=args.machines,
            devices_per_machine=args.devices,
            num_spares=args.spares,
            failures=failures,
        )
        report = sim.run()
    except ConfigurationError as exc:
        print(f"fleet: {exc}", file=sys.stderr)
        return 2
    print(f"fleet: {len(specs)} jobs on {args.machines}x{args.devices} "
          f"shared cluster, {args.spares} spare(s), "
          f"{len(failures)} injected failures")
    print(report.format_table())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Swift reproduction experiment runner"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list Table-2 workloads").set_defaults(
        fn=cmd_workloads
    )
    sub.add_parser("table3", help="logging space overhead").set_defaults(
        fn=cmd_table3
    )

    t5 = sub.add_parser("table5", help="end-to-end simulation study")
    t5.add_argument("--mtbf", type=float, default=17.0)
    t5.add_argument("--repeats", type=int, default=10)
    t5.add_argument("--seed", type=int, default=1)
    t5.set_defaults(fn=cmd_table5)

    f8 = sub.add_parser("fig8", help="macro-benchmark for one workload")
    f8.add_argument("workload", choices=sorted(_WORKLOAD_ALIASES))
    f8.set_defaults(fn=cmd_fig8)

    fleet = sub.add_parser(
        "fleet", help="multi-job scheduler demo on a shared cluster"
    )
    fleet.add_argument("--machines", type=int, default=6)
    fleet.add_argument("--devices", type=int, default=4)
    fleet.add_argument("--spares", type=int, default=1)
    fleet.add_argument("--iterations", type=int, default=30)
    fleet.set_defaults(fn=cmd_fleet)

    plan = sub.add_parser("plan", help="selective-logging group planner")
    plan.add_argument("--workload", choices=["vit", "bert"], default="bert")
    plan.add_argument("--budget-gb", type=float, required=True)
    plan.add_argument("--ckpt-interval", type=int, default=100)
    plan.set_defaults(fn=cmd_plan)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
