"""Exception hierarchy for the Swift reproduction.

All library-specific failures derive from :class:`ReproError` so callers can
catch the whole family with one clause.  Communication and machine failures
are modelled after the fail-stop semantics of the paper (Section 3): a crash
surfaces to peers as a :class:`CommunicationError`, mirroring how Swift
detects machine failures by catching NCCL communicator errors.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ShapeError",
    "NotInvertibleError",
    "MachineFailure",
    "CommunicationError",
    "CheckpointError",
    "StorageError",
    "LogIntegrityError",
    "RecoveryError",
    "StateInconsistencyError",
]


class ReproError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """An invalid or inconsistent configuration was supplied."""


class ShapeError(ReproError):
    """A tensor had an unexpected shape."""


class NotInvertibleError(ReproError):
    """The optimizer update cannot be undone (Table 1: e.g. AMSGrad).

    Raised by :meth:`repro.optim.Optimizer.undo` when the optimizer uses
    non-invertible operators such as the element-wise running maximum.
    """


class MachineFailure(ReproError):
    """A machine crashed (fail-stop): all volatile state on it is lost."""

    def __init__(self, machine_id: int, message: str | None = None):
        self.machine_id = machine_id
        super().__init__(message or f"machine {machine_id} failed (fail-stop)")


class CommunicationError(ReproError):
    """A communication operation touched a dead peer.

    This is the simulated analogue of an asynchronous NCCL error: workers
    talking to a crashed machine observe this error and set the global
    failure flag (paper Section 6, "Failure detection").
    """

    def __init__(self, src: int, dst: int, message: str | None = None):
        self.src = src
        self.dst = dst
        super().__init__(
            message or f"communication failed between worker {src} and worker {dst}"
        )


class CheckpointError(ReproError):
    """Checkpoint could not be written, read, or validated."""


class StorageError(ReproError):
    """A storage operation failed transiently (e.g. an outage window).

    Raised by :class:`repro.cluster.GlobalStore` while an injected outage
    window is active.  Transient by design: callers are expected to wrap
    storage writes in :func:`repro.serve.retry_call` rather than treat
    this as fatal.
    """


class LogIntegrityError(ReproError):
    """A required logging record is missing or out of order.

    Once a piece of logged data is missing the original state cannot be
    recovered precisely (Section 1), so replay refuses to proceed.
    """


class RecoveryError(ReproError):
    """Failure recovery could not complete."""


class StateInconsistencyError(ReproError):
    """Workers hold model states from different logical versions.

    This is the crash-consistency problem of Section 2.3; it is resolved by
    update-undo (:mod:`repro.core.undo`).
    """
