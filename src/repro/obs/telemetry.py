"""TelemetryTrace: a versioned JSONL event stream of one observed run.

The observability counterpart of :class:`repro.chaos.FailureTrace`: one
header line (schema version + source + free-form metadata), one line per
:class:`TelemetryEvent`, serialized with ``json.dumps(sort_keys=True)``
and repr-round-tripping floats so ``to_jsonl -> from_jsonl -> to_jsonl``
is byte-stable.  Traces can be checked into version control
(``tests/traces/``), diffed, tailed live (``repro obs --follow``), and
exported to Chrome trace-event JSON, CSV, or a terminal summary
(:mod:`repro.obs.export`).

Every event carries *two* timelines:

* **wall** — ``time.perf_counter()`` seconds since the recorder's epoch:
  where the real CPU time of this reproduction goes;
* **sim** — :class:`~repro.cluster.clock.SimClock` seconds (``None``
  when the recorder has no clock bound): where the paper's modeled time
  goes — detection, rollback, replay, checkpoint stalls, communication.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.errors import ConfigurationError
from repro.utils.jsonl import salvage_jsonl

__all__ = ["TELEMETRY_VERSION", "TelemetryEvent", "TelemetryTrace"]

#: bump when the JSONL schema changes; readers reject newer versions
TELEMETRY_VERSION = 1

#: event kinds understood by this telemetry version
EVENT_KINDS = ("span", "count", "gauge", "instant")


@dataclass(frozen=True)
class TelemetryEvent:
    """One recorded observation.

    ``kind`` selects the meaning:

    * ``"span"`` — a named interval (wall + sim start/duration);
    * ``"count"`` — a monotonic counter increment of ``value``;
    * ``"gauge"`` — a sampled level set to ``value``;
    * ``"instant"`` — a point event (no duration, no value).

    >>> e = TelemetryEvent(seq=0, kind="span", name="iteration",
    ...                    wall=0.5, wall_dur=0.01, sim=3.0, sim_dur=0.2)
    >>> TelemetryEvent.from_json(e.to_json()) == e
    True
    """

    seq: int
    kind: str
    name: str
    track: str = "main"
    #: wall-clock start, seconds since the recorder's epoch
    wall: float = 0.0
    wall_dur: float = 0.0
    #: simulated-clock start (``None`` when no sim clock was bound)
    sim: float | None = None
    sim_dur: float | None = None
    #: counter increment / gauge level (``None`` for spans and instants)
    value: float | None = None
    #: free-form attributes as sorted ``(key, value-string)`` pairs so
    #: events stay hashable and serialization stays order-independent
    attrs: tuple[tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ConfigurationError(
                f"unknown telemetry event kind {self.kind!r}; "
                f"known: {EVENT_KINDS}"
            )
        if self.seq < 0:
            raise ConfigurationError("seq must be >= 0")
        if self.wall_dur < 0 or (self.sim_dur is not None and self.sim_dur < 0):
            raise ConfigurationError("durations must be >= 0")
        object.__setattr__(
            self, "attrs",
            tuple(sorted((str(k), str(v)) for k, v in self.attrs)),
        )

    @property
    def attrs_dict(self) -> dict[str, str]:
        return dict(self.attrs)

    def to_json(self) -> str:
        payload = {
            "seq": self.seq,
            "k": self.kind,
            "name": self.name,
            "track": self.track,
            "w": self.wall,
            "wd": self.wall_dur,
            "s": self.sim,
            "sd": self.sim_dur,
            "v": self.value,
            "attrs": dict(self.attrs),
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "TelemetryEvent":
        d = json.loads(line)
        return cls(
            seq=int(d["seq"]),
            kind=str(d["k"]),
            name=str(d["name"]),
            track=str(d.get("track", "main")),
            wall=float(d.get("w", 0.0)),
            wall_dur=float(d.get("wd", 0.0)),
            sim=None if d.get("s") is None else float(d["s"]),
            sim_dur=None if d.get("sd") is None else float(d["sd"]),
            value=None if d.get("v") is None else float(d["v"]),
            attrs=tuple(sorted(
                (str(k), str(v))
                for k, v in dict(d.get("attrs", {})).items()
            )),
        )


@dataclass(frozen=True)
class TelemetryTrace:
    """The full event stream of one observed run.

    >>> e = TelemetryEvent(seq=0, kind="count", name="iterations", value=1.0)
    >>> trace = TelemetryTrace(source="demo", events=(e,))
    >>> restored = TelemetryTrace.from_jsonl(trace.to_jsonl())
    >>> restored == trace                    # byte-stable round trip
    True
    >>> restored.counter_totals()
    {'iterations': 1.0}
    """

    source: str
    events: tuple[TelemetryEvent, ...] = ()
    version: int = TELEMETRY_VERSION
    #: free-form run metadata (experiment name, batch size, scenario, ...)
    meta: tuple[tuple[str, str], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.version > TELEMETRY_VERSION:
            raise ConfigurationError(
                f"telemetry version {self.version} is newer than supported "
                f"version {TELEMETRY_VERSION}"
            )
        object.__setattr__(self, "events", tuple(self.events))
        object.__setattr__(
            self, "meta",
            tuple(sorted((str(k), str(v)) for k, v in self.meta)),
        )

    # -- views ------------------------------------------------------------
    @property
    def meta_dict(self) -> dict[str, str]:
        return dict(self.meta)

    @property
    def spans(self) -> tuple[TelemetryEvent, ...]:
        return tuple(e for e in self.events if e.kind == "span")

    @property
    def counts(self) -> tuple[TelemetryEvent, ...]:
        return tuple(e for e in self.events if e.kind == "count")

    @property
    def gauges(self) -> tuple[TelemetryEvent, ...]:
        return tuple(e for e in self.events if e.kind == "gauge")

    @property
    def instants(self) -> tuple[TelemetryEvent, ...]:
        return tuple(e for e in self.events if e.kind == "instant")

    def spans_named(self, name: str) -> tuple[TelemetryEvent, ...]:
        return tuple(e for e in self.spans if e.name == name)

    def span_names(self) -> list[str]:
        """Distinct span names, in first-seen order."""
        seen: dict[str, None] = {}
        for e in self.spans:
            seen.setdefault(e.name, None)
        return list(seen)

    def total(self, name: str, timeline: str = "sim") -> float:
        """Summed duration of all spans named ``name`` on a timeline."""
        if timeline not in ("sim", "wall"):
            raise ConfigurationError(
                f"timeline must be 'sim' or 'wall', got {timeline!r}"
            )
        total = 0.0
        for e in self.spans_named(name):
            dur = e.sim_dur if timeline == "sim" else e.wall_dur
            if dur is not None:
                total += dur
        return total

    def counter_totals(self) -> dict[str, float]:
        """Final value of every counter (sum of recorded increments)."""
        totals: dict[str, float] = {}
        for e in self.counts:
            totals[e.name] = totals.get(e.name, 0.0) + (e.value or 0.0)
        return totals

    def last_gauges(self) -> dict[str, float]:
        """Most recent level of every gauge."""
        last: dict[str, float] = {}
        for e in self.gauges:
            if e.value is not None:
                last[e.name] = e.value
        return last

    def gauge_series(self, name: str) -> list[tuple[float | None, float]]:
        """``(sim_time, value)`` samples of one gauge, in record order."""
        return [
            (e.sim, e.value) for e in self.gauges
            if e.name == name and e.value is not None
        ]

    def recovery_breakdown(self) -> dict[str, float]:
        """Per-phase simulated seconds spent inside recovery paths.

        Sums the ``recovery/<phase>`` spans (detect, rollback, rejoin,
        replay) the trainer emits for every recovery; the totals add up
        to the run's ``TrainingTrace.recovery_time_total`` — the paper's
        recovery-time decomposition, straight from telemetry.
        """
        breakdown: dict[str, float] = {}
        for e in self.spans:
            if e.name.startswith("recovery/") and e.sim_dur is not None:
                phase = e.name[len("recovery/"):]
                breakdown[phase] = breakdown.get(phase, 0.0) + e.sim_dur
        return breakdown

    def with_meta(self, **kv: object) -> "TelemetryTrace":
        """Return a copy with extra metadata entries recorded."""
        merged = dict(self.meta)
        merged.update({str(k): str(v) for k, v in kv.items()})
        return replace(self, meta=tuple(sorted(merged.items())))

    # -- serialization ----------------------------------------------------
    def to_jsonl(self) -> str:
        header = {
            "version": self.version,
            "source": self.source,
            "meta": dict(self.meta),
        }
        lines = [json.dumps(header, sort_keys=True, separators=(",", ":"))]
        lines.extend(e.to_json() for e in self.events)
        return "\n".join(lines) + "\n"

    @classmethod
    def from_jsonl(cls, text: str) -> "TelemetryTrace":
        lines = [ln for ln in text.splitlines() if ln.strip()]
        if not lines:
            raise ConfigurationError("empty telemetry trace")
        try:
            header = json.loads(lines[0])
            events = tuple(TelemetryEvent.from_json(ln) for ln in lines[1:])
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"telemetry trace is not valid JSONL: {exc}"
            ) from exc
        if not isinstance(header, dict) or "version" not in header:
            raise ConfigurationError("telemetry header missing 'version'")
        return cls(
            source=str(header.get("source", "unknown")),
            version=int(header["version"]),
            meta=tuple(sorted(
                (str(k), str(v))
                for k, v in dict(header.get("meta", {})).items()
            )),
            events=events,
        )

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_jsonl())
        return path

    @classmethod
    def load(cls, path: str | Path) -> "TelemetryTrace":
        """Load a trace file, tolerating a torn final line.

        A recorder killed mid-write (crash, ``kill -9``) can leave the
        last JSONL line truncated; the valid prefix is still a complete
        trace, so it is recovered with a :class:`UserWarning` instead of
        raising.  Corruption anywhere *before* the final line still
        raises :class:`~repro.errors.ConfigurationError`.
        """
        path = Path(path)
        good, torn = salvage_jsonl(path.read_text())
        if torn is not None:
            warnings.warn(
                f"{path}: dropped torn final line "
                f"({len(torn)} bytes, crash mid-write?)",
                UserWarning,
                stacklevel=2,
            )
        return cls.from_jsonl("\n".join(good) + "\n" if good else "")
