"""Recorders: zero-overhead-when-disabled instrumentation.

The instrumented code (trainer, engines, fleet) holds a
:class:`Recorder` and calls ``recorder.span(...)`` / ``count`` /
``gauge`` unconditionally.  The default :data:`NULL_RECORDER` makes
every call a cheap no-op returning a shared inert context manager —
no event objects, no string formatting, no timestamps — so the hot
paths stay bitwise-identical and within the <2% overhead budget
(gated by ``benchmarks/bench_obs_overhead.py``).  Attaching a
:class:`TraceRecorder` turns the same call sites into a
:class:`~repro.obs.telemetry.TelemetryTrace` stream.

Expensive attribute computation should be guarded on
``recorder.enabled`` so the null path never pays for it::

    if recorder.enabled:
        recorder.gauge("tlog/bytes", tlog.total_bytes())
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable

from repro.errors import ConfigurationError
from repro.obs.telemetry import TelemetryEvent, TelemetryTrace
from repro.utils.jsonl import JsonlWriter

__all__ = [
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "TraceRecorder",
    "Span",
    "JsonlSink",
    "record_recovery_phases",
]


class _NullSpan:
    """Shared inert context manager returned by disabled recorders."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set(self, **attrs):
        return self


_NULL_SPAN = _NullSpan()


class Recorder:
    """No-op base recorder; the protocol every instrumented site uses.

    Subclass and override to capture events.  The base class *is* the
    null implementation so that call sites never branch: ``span`` hands
    back a shared inert context manager, ``count``/``gauge``/``instant``
    return immediately.

    >>> r = Recorder()
    >>> r.enabled
    False
    >>> with r.span("engine/allreduce", bytes=1024) as s:
    ...     _ = s.set(workers=8)    # no-op
    >>> r.count("iterations")       # no-op
    """

    #: gate for expensive attribute computation at call sites
    enabled = False

    def span(self, name: str, **attrs: object) -> object:
        """Open a named interval; use as a context manager."""
        return _NULL_SPAN

    def span_at(
        self,
        name: str,
        *,
        sim: float,
        sim_dur: float,
        wall: float | None = None,
        wall_dur: float = 0.0,
        track: str | None = None,
        **attrs: object,
    ) -> None:
        """Record a synthetic span at explicit sim-time coordinates.

        For phases whose timing is known only after the fact (the
        recovery reports decompose detection/rollback/replay times once
        recovery has already finished).
        """

    def count(self, name: str, value: float = 1.0, **attrs: object) -> None:
        """Increment a monotonic counter."""

    def gauge(self, name: str, value: float, **attrs: object) -> None:
        """Sample the current level of a quantity."""

    def instant(self, name: str, **attrs: object) -> None:
        """Record a point event."""

    def subscribe(self, callback: Callable[[TelemetryEvent], None]) -> None:
        """Attach a live event callback (no-op when disabled)."""

    def unsubscribe(self, callback: Callable[[TelemetryEvent], None]) -> None:
        """Detach a previously attached callback."""


class NullRecorder(Recorder):
    """The explicit do-nothing recorder (identical to the base class).

    >>> NullRecorder().enabled
    False
    """


#: process-wide default recorder: always safe to call, never records
NULL_RECORDER = NullRecorder()


class Span:
    """A live interval being recorded by a :class:`TraceRecorder`.

    Captures wall time (``perf_counter``) and sim time (when the
    recorder has a clock bound) at ``__enter__``, emits one ``span``
    event at ``__exit__``.  ``set(**attrs)`` adds attributes any time
    before exit.
    """

    __slots__ = ("_recorder", "name", "track", "_attrs",
                 "_wall0", "_sim0", "_done")

    def __init__(self, recorder: "TraceRecorder", name: str,
                 track: str, attrs: dict):
        self._recorder = recorder
        self.name = name
        self.track = track
        self._attrs = attrs
        self._wall0 = 0.0
        self._sim0: float | None = None
        self._done = False

    def set(self, **attrs: object) -> "Span":
        self._attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._wall0 = time.perf_counter()
        clock = self._recorder.clock
        self._sim0 = clock.now if clock is not None else None
        return self

    def __exit__(self, *exc) -> bool:
        if self._done:  # idempotent: re-exit records nothing
            return False
        self._done = True
        rec = self._recorder
        wall1 = time.perf_counter()
        clock = rec.clock
        sim1 = clock.now if clock is not None else None
        rec._emit(TelemetryEvent(
            seq=rec._next_seq(),
            kind="span",
            name=self.name,
            track=self.track,
            wall=self._wall0 - rec._epoch,
            wall_dur=max(0.0, wall1 - self._wall0),
            sim=self._sim0,
            sim_dur=(
                max(0.0, sim1 - self._sim0)
                if sim1 is not None and self._sim0 is not None
                else None
            ),
            attrs=tuple(
                (str(k), str(v)) for k, v in self._attrs.items()
            ),
        ))
        return False


class TraceRecorder(Recorder):
    """Recorder that captures every event into a telemetry stream.

    Bind a sim clock (any object with a ``.now`` float attribute, e.g.
    :class:`~repro.cluster.clock.SimClock`) to timestamp events on the
    simulated timeline too; ``repro.api.Session.run(recorder=...)`` and
    ``SwiftTrainer`` do this automatically.

    >>> r = TraceRecorder()
    >>> with r.span("demo/work", detail="x"):
    ...     r.count("items", 3)
    >>> t = r.trace("doctest")
    >>> [e.kind for e in t.events]
    ['count', 'span']
    >>> t.counter_totals()
    {'items': 3.0}
    """

    enabled = True

    def __init__(self, clock: object | None = None, track: str = "main"):
        #: object with a ``.now`` attribute giving simulated seconds
        self.clock = clock
        self.track = track
        self._epoch = time.perf_counter()
        self._events: list[TelemetryEvent] = []
        self._seq = 0
        #: running counter totals, live-readable during a run
        self.counters: dict[str, float] = {}
        #: last-seen gauge levels, live-readable during a run
        self.gauges: dict[str, float] = {}
        self._subscribers: list[Callable[[TelemetryEvent], None]] = []

    # -- internals --------------------------------------------------------
    def _next_seq(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    def _emit(self, event: TelemetryEvent) -> None:
        self._events.append(event)
        for cb in self._subscribers:
            cb(event)

    def _now(self) -> tuple[float, float | None]:
        wall = time.perf_counter() - self._epoch
        sim = self.clock.now if self.clock is not None else None
        return wall, sim

    @staticmethod
    def _attrs(attrs: dict) -> tuple[tuple[str, str], ...]:
        return tuple((str(k), str(v)) for k, v in attrs.items())

    # -- recording API ----------------------------------------------------
    def span(self, name: str, **attrs: object) -> Span:
        return Span(self, name, self.track, dict(attrs))

    def span_at(
        self,
        name: str,
        *,
        sim: float,
        sim_dur: float,
        wall: float | None = None,
        wall_dur: float = 0.0,
        track: str | None = None,
        **attrs: object,
    ) -> None:
        if wall is None:
            wall = time.perf_counter() - self._epoch
        self._emit(TelemetryEvent(
            seq=self._next_seq(), kind="span", name=name,
            track=track if track is not None else self.track,
            wall=wall, wall_dur=wall_dur, sim=sim, sim_dur=sim_dur,
            attrs=self._attrs(attrs),
        ))

    def count(self, name: str, value: float = 1.0, **attrs: object) -> None:
        wall, sim = self._now()
        self.counters[name] = self.counters.get(name, 0.0) + value
        self._emit(TelemetryEvent(
            seq=self._next_seq(), kind="count", name=name, track=self.track,
            wall=wall, sim=sim, value=float(value),
            attrs=self._attrs(attrs),
        ))

    def gauge(self, name: str, value: float, **attrs: object) -> None:
        wall, sim = self._now()
        self.gauges[name] = float(value)
        self._emit(TelemetryEvent(
            seq=self._next_seq(), kind="gauge", name=name, track=self.track,
            wall=wall, sim=sim, value=float(value),
            attrs=self._attrs(attrs),
        ))

    def instant(self, name: str, **attrs: object) -> None:
        wall, sim = self._now()
        self._emit(TelemetryEvent(
            seq=self._next_seq(), kind="instant", name=name, track=self.track,
            wall=wall, sim=sim,
            attrs=self._attrs(attrs),
        ))

    # -- subscribers ------------------------------------------------------
    def subscribe(self, callback: Callable[[TelemetryEvent], None]) -> None:
        if callback not in self._subscribers:
            self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[TelemetryEvent], None]) -> None:
        if callback in self._subscribers:
            self._subscribers.remove(callback)

    # -- export -----------------------------------------------------------
    @property
    def events(self) -> tuple[TelemetryEvent, ...]:
        return tuple(self._events)

    def trace(self, source: str = "run", **meta: object) -> TelemetryTrace:
        """Freeze the recorded stream into a :class:`TelemetryTrace`."""
        return TelemetryTrace(
            source=source,
            events=tuple(self._events),
            meta=tuple(sorted(
                (str(k), str(v)) for k, v in meta.items()
            )),
        )

    def clear(self) -> None:
        """Drop all recorded events (counters and gauges included)."""
        self._events.clear()
        self._seq = 0
        self.counters.clear()
        self.gauges.clear()


class JsonlSink:
    """Subscriber that streams events to a JSONL file as they happen.

    Writes the versioned header up front and flushes after every event,
    so ``repro obs --follow`` (or any ``tail -f``) can watch a live run.
    The file is a valid :class:`TelemetryTrace` JSONL at every instant.
    With ``fsync=True`` every event is forced to stable storage before
    the call returns, so the file survives a ``kill -9`` mid-run; either
    way ``close()`` flushes first, so no buffered event is ever dropped
    by an orderly shutdown.  The underlying primitive is
    :class:`repro.utils.jsonl.JsonlWriter` — the same one the
    :mod:`repro.serve` write-ahead log is built on.

    >>> import tempfile, os
    >>> path = os.path.join(tempfile.mkdtemp(), "live.jsonl")
    >>> r = TraceRecorder()
    >>> sink = JsonlSink(path, source="doctest", fsync=True)
    >>> r.subscribe(sink)
    >>> r.count("iterations")
    >>> sink.close()
    >>> TelemetryTrace.load(path).counter_totals()
    {'iterations': 1.0}
    """

    def __init__(self, path: str | Path, source: str = "live",
                 fsync: bool = False, **meta: object):
        self.path = Path(path)
        header = TelemetryTrace(
            source=source,
            meta=tuple(sorted((str(k), str(v)) for k, v in meta.items())),
        ).to_jsonl()
        self._writer = JsonlWriter(self.path, fsync=fsync)
        self._writer.write_line(header.rstrip("\n"))

    def __call__(self, event: TelemetryEvent) -> None:
        if self._writer.closed:
            raise ConfigurationError(
                f"JsonlSink {self.path} already closed"
            )
        self._writer.write_line(event.to_json())

    def close(self) -> None:
        self._writer.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


#: recovery phases in the order the recovery paths advance the clock,
#: mapped to their RecoveryReport field
RECOVERY_PHASES = (
    ("detect", "detection_time"),
    ("rollback", "undo_time"),
    ("rejoin", "init_time"),
    ("replay", "restore_time"),
)


def record_recovery_phases(recorder: Recorder, report: object,
                           sim_end: float, **attrs: object) -> None:
    """Decompose one finished recovery into per-phase telemetry spans.

    The recovery paths advance the sim clock internally (detect →
    rollback → rejoin → replay), so their phase boundaries are known
    only from the :class:`~repro.core.replication.RecoveryReport`.  This
    reconstructs ``recovery/<phase>`` spans ending at ``sim_end`` (the
    clock reading when recovery returned); their durations sum to
    ``report.total_time``, the paper's recovery-time decomposition.

    >>> from types import SimpleNamespace
    >>> rep = SimpleNamespace(detection_time=1.0, undo_time=0.5,
    ...                       init_time=0.25, restore_time=2.0,
    ...                       strategy="logging")
    >>> r = TraceRecorder()
    >>> record_recovery_phases(r, rep, sim_end=10.0)
    >>> r.trace("x").recovery_breakdown() == {
    ...     'detect': 1.0, 'rollback': 0.5, 'rejoin': 0.25, 'replay': 2.0}
    True
    """
    if not recorder.enabled:
        return
    start = sim_end - (
        report.detection_time + report.undo_time
        + report.init_time + report.restore_time
    )
    attrs = dict(attrs)
    attrs.setdefault("strategy", getattr(report, "strategy", "?"))
    for phase, field_name in RECOVERY_PHASES:
        dur = getattr(report, field_name)
        if dur < 0:
            raise ConfigurationError(
                f"recovery report has negative {field_name}: {dur}"
            )
        recorder.span_at(
            f"recovery/{phase}", sim=start, sim_dur=dur, **attrs
        )
        start += dur
