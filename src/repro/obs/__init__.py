"""repro.obs — spans, counters, and a versioned telemetry event stream.

The observability layer of the reproduction.  Instrumented components
(:class:`~repro.core.trainer.SwiftTrainer`, the DP/PP/FSDP engines,
:class:`~repro.sim.fleet.FleetSimulator`, and
:class:`repro.api.Session`) accept a :class:`Recorder`; the default
:data:`NULL_RECORDER` costs nothing and changes nothing, while a
:class:`TraceRecorder` captures every iteration phase, recovery phase,
counter, and gauge into a versioned :class:`TelemetryTrace` that
round-trips byte-stably through JSONL and exports to Chrome trace-event
JSON (Perfetto), CSV, or a terminal summary.

>>> from repro.obs import TraceRecorder, summarize_telemetry
>>> r = TraceRecorder()
>>> with r.span("demo/phase"):
...     r.count("iterations")
>>> print(summarize_telemetry(r.trace("quickstart")).splitlines()[0])
telemetry: quickstart (v1, 2 events)
"""

from repro.obs.export import (
    summarize_telemetry,
    telemetry_to_csv,
    to_chrome_trace,
)
from repro.obs.recorder import (
    NULL_RECORDER,
    JsonlSink,
    NullRecorder,
    Recorder,
    Span,
    TraceRecorder,
    record_recovery_phases,
)
from repro.obs.telemetry import (
    TELEMETRY_VERSION,
    TelemetryEvent,
    TelemetryTrace,
)

__all__ = [
    "TELEMETRY_VERSION",
    "TelemetryEvent",
    "TelemetryTrace",
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "TraceRecorder",
    "Span",
    "JsonlSink",
    "record_recovery_phases",
    "to_chrome_trace",
    "telemetry_to_csv",
    "summarize_telemetry",
]
