"""Exporters: telemetry → Chrome trace JSON, CSV, terminal summary.

``to_chrome_trace`` emits the Trace Event Format consumed by Perfetto
(https://ui.perfetto.dev) and ``chrome://tracing`` — drag the file in
and every span, counter, and instant lands on a labeled track.
``telemetry_to_csv`` reconstructs the per-iteration rows of
:func:`repro.utils.metrics.trace_to_csv` from the trainer's iteration
spans.  ``summarize_telemetry`` renders the terminal report behind
``repro obs``.
"""

from __future__ import annotations

import json

from repro.errors import ConfigurationError
from repro.obs.telemetry import TelemetryTrace

__all__ = ["to_chrome_trace", "telemetry_to_csv", "summarize_telemetry"]

_TIMELINES = ("wall", "sim")


def _coords(event, timeline: str) -> tuple[float, float] | None:
    """(start, duration) of an event on a timeline, or None if absent."""
    if timeline == "wall":
        return event.wall, event.wall_dur
    if event.sim is None:
        return None
    return event.sim, event.sim_dur if event.sim_dur is not None else 0.0


def to_chrome_trace(trace: TelemetryTrace, timeline: str = "wall") -> str:
    """Serialize a telemetry trace as Chrome trace-event JSON.

    ``timeline`` selects which clock drives the horizontal axis:
    ``"wall"`` (default, real CPU seconds) or ``"sim"`` (the simulated
    cluster clock — the paper's time axis; events recorded without a
    bound sim clock are omitted there).

    >>> from repro.obs import TraceRecorder
    >>> r = TraceRecorder()
    >>> with r.span("demo/work"):
    ...     r.count("items", 2)
    >>> doc = json.loads(to_chrome_trace(r.trace("doctest")))
    >>> sorted({e["ph"] for e in doc["traceEvents"]})
    ['C', 'M', 'X']
    """
    if timeline not in _TIMELINES:
        raise ConfigurationError(
            f"timeline must be one of {_TIMELINES}, got {timeline!r}"
        )
    pid = 1
    tids: dict[str, int] = {}
    events: list[dict] = [{
        "ph": "M", "pid": pid, "name": "process_name",
        "args": {"name": f"repro:{trace.source}"},
    }]

    def tid_for(track: str) -> int:
        if track not in tids:
            tids[track] = len(tids) + 1
            events.append({
                "ph": "M", "pid": pid, "tid": tids[track],
                "name": "thread_name", "args": {"name": track},
            })
        return tids[track]

    for e in trace.events:
        coords = _coords(e, timeline)
        if coords is None:
            continue
        ts, dur = coords
        tid = tid_for(e.track)
        args = dict(e.attrs)
        if e.kind == "span":
            events.append({
                "ph": "X", "pid": pid, "tid": tid, "name": e.name,
                "ts": ts * 1e6, "dur": dur * 1e6, "args": args,
            })
        elif e.kind in ("count", "gauge"):
            events.append({
                "ph": "C", "pid": pid, "tid": tid, "name": e.name,
                "ts": ts * 1e6, "args": {"value": e.value or 0.0},
            })
        else:  # instant
            events.append({
                "ph": "i", "pid": pid, "tid": tid, "name": e.name,
                "ts": ts * 1e6, "s": "t", "args": args,
            })

    return json.dumps(
        {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": dict(trace.meta),
        },
        sort_keys=True,
    )


def telemetry_to_csv(trace: TelemetryTrace,
                     samples_per_iteration: int | None = None) -> str:
    """Per-iteration CSV rows reconstructed from ``trainer/iteration`` spans.

    Pulls iteration number and loss out of each span's attributes and the
    iteration time from its sim duration, then delegates row formatting
    to :func:`repro.utils.metrics.trace_to_csv`.  When
    ``samples_per_iteration`` is not given it falls back to the trace's
    ``batch_size`` metadata (1 if absent).

    >>> from repro.obs import TraceRecorder
    >>> r = TraceRecorder()
    >>> r.span_at("trainer/iteration", sim=0.0, sim_dur=0.5,
    ...           iteration=0, loss=1.25)
    >>> print(telemetry_to_csv(r.trace("doctest"), 16).strip())
    iteration,loss,sim_time_s,throughput
    0,1.25000000,0.500000,32.000
    """
    # imported lazily: repro.core.trainer itself imports repro.obs
    from repro.core.trainer import TrainingTrace
    from repro.utils.metrics import trace_to_csv

    numbers: list[int] = []
    losses: list[float] = []
    times: list[float] = []
    for e in trace.spans_named("trainer/iteration"):
        attrs = e.attrs_dict
        if "iteration" not in attrs:
            continue
        numbers.append(int(attrs["iteration"]))
        losses.append(float(attrs.get("loss", "nan")))
        times.append(e.sim_dur if e.sim_dur is not None else e.wall_dur)
    if samples_per_iteration is None:
        samples_per_iteration = int(
            float(trace.meta_dict.get("batch_size", "1"))
        )
    rebuilt = TrainingTrace(
        losses=losses, iteration_times=times, iteration_numbers=numbers
    )
    return trace_to_csv(rebuilt, samples_per_iteration)


def _fmt_seconds(x: float) -> str:
    return f"{x:12.6f}"


def summarize_telemetry(trace: TelemetryTrace) -> str:
    """Render the terminal summary printed by ``repro obs``.

    >>> from repro.obs import TraceRecorder
    >>> r = TraceRecorder()
    >>> r.count("iterations", 3)
    >>> print(summarize_telemetry(r.trace("doctest")).splitlines()[0])
    telemetry: doctest (v1, 1 events)
    """
    lines = [
        f"telemetry: {trace.source} "
        f"(v{trace.version}, {len(trace.events)} events)"
    ]
    if trace.meta:
        lines.append("meta:")
        for k, v in trace.meta:
            lines.append(f"  {k}: {v}")

    spans = trace.spans
    if spans:
        lines += ["", f"{'span':<28} {'count':>6} {'sim_s':>12} "
                      f"{'wall_s':>12}"]
        for name in trace.span_names():
            named = trace.spans_named(name)
            lines.append(
                f"{name:<28} {len(named):>6} "
                f"{_fmt_seconds(trace.total(name, 'sim'))} "
                f"{_fmt_seconds(trace.total(name, 'wall'))}"
            )

    breakdown = trace.recovery_breakdown()
    if breakdown:
        total = sum(breakdown.values())
        lines += ["", "recovery breakdown (sim seconds):"]
        for phase, dur in sorted(
            breakdown.items(), key=lambda kv: -kv[1]
        ):
            share = dur / total if total > 0 else 0.0
            lines.append(
                f"  {phase:<10} {_fmt_seconds(dur)}  ({share:6.1%})"
            )
        lines.append(f"  {'total':<10} {_fmt_seconds(total)}")

    totals = trace.counter_totals()
    if totals:
        lines += ["", "counters:"]
        for name in sorted(totals):
            value = totals[name]
            shown = int(value) if value == int(value) else value
            lines.append(f"  {name:<28} {shown}")

    gauges = trace.last_gauges()
    if gauges:
        lines += ["", "gauges (last value):"]
        for name in sorted(gauges):
            lines.append(f"  {name:<28} {gauges[name]:g}")

    return "\n".join(lines)
