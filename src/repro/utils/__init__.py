"""Shared utilities: RNG streams, state (de)serialization, zero-copy views."""

from repro.utils.cow import StateView, freeze_array
from repro.utils.flat import FlatArena, FlatBuffer
from repro.utils.metrics import (
    TraceSummary,
    goodput,
    loss_curve_distance,
    summarize_trace,
    trace_to_csv,
)
from repro.utils.jsonl import JsonlWriter, canonical_json, salvage_jsonl
from repro.utils.pool import BufferPool, PooledBuffer
from repro.utils.seeding import RngStream, derive_seed, stream
from repro.utils.serialization import (
    clone_state,
    state_allclose,
    state_equal,
    state_nbytes,
    load_state_bytes,
    save_state_bytes,
    tree_map,
)

__all__ = [
    "StateView",
    "freeze_array",
    "FlatArena",
    "FlatBuffer",
    "BufferPool",
    "PooledBuffer",
    "JsonlWriter",
    "canonical_json",
    "salvage_jsonl",
    "RngStream",
    "derive_seed",
    "stream",
    "clone_state",
    "state_allclose",
    "state_equal",
    "state_nbytes",
    "save_state_bytes",
    "load_state_bytes",
    "tree_map",
    "TraceSummary",
    "summarize_trace",
    "goodput",
    "loss_curve_distance",
    "trace_to_csv",
]
