"""State-dict utilities: cloning, comparison, and byte-level serialization.

A *state dict* throughout this library is a flat ``dict[str, np.ndarray]``
(model parameters, optimizer moments, counters).  Checkpoints, snapshots,
replicas, and logging payloads all move state dicts around, so the helpers
here are the common currency of every recovery mechanism.
"""

from __future__ import annotations

import io
from collections.abc import Callable, Mapping

import numpy as np

__all__ = [
    "clone_state",
    "state_equal",
    "state_allclose",
    "state_nbytes",
    "save_state_bytes",
    "load_state_bytes",
    "tree_map",
]

StateDict = dict[str, np.ndarray]


def clone_state(state: Mapping[str, np.ndarray]) -> StateDict:
    """Deep-copy a state dict (the snapshot primitive of CheckFreq et al.)."""
    return {k: np.array(v, copy=True) for k, v in state.items()}


def state_equal(a: Mapping[str, np.ndarray], b: Mapping[str, np.ndarray]) -> bool:
    """True iff both states have identical keys and bitwise-equal arrays."""
    if a.keys() != b.keys():
        return False
    return all(
        np.asarray(a[k]).shape == np.asarray(b[k]).shape
        and np.array_equal(np.asarray(a[k]), np.asarray(b[k]))
        for k in a
    )


def state_allclose(
    a: Mapping[str, np.ndarray],
    b: Mapping[str, np.ndarray],
    rtol: float = 1e-5,
    atol: float = 1e-7,
) -> bool:
    """True iff both states match within floating-point tolerance.

    Update-undo recovers a state that may differ from the original by
    floating-point rounding (paper Section 4), so undo tests compare with
    this rather than :func:`state_equal`.
    """
    if a.keys() != b.keys():
        return False
    return all(
        np.allclose(np.asarray(a[k]), np.asarray(b[k]), rtol=rtol, atol=atol)
        for k in a
    )


def state_nbytes(state: Mapping[str, np.ndarray]) -> int:
    """Total payload size in bytes (used by the checkpoint cost model)."""
    return int(sum(np.asarray(v).nbytes for v in state.values()))


def save_state_bytes(state: Mapping[str, np.ndarray]) -> bytes:
    """Serialize a state dict to a compressed byte string."""
    buf = io.BytesIO()
    np.savez(buf, **{k: np.asarray(v) for k, v in state.items()})
    return buf.getvalue()


def load_state_bytes(payload: bytes) -> StateDict:
    """Inverse of :func:`save_state_bytes`."""
    buf = io.BytesIO(payload)
    with np.load(buf) as npz:
        return {k: np.array(npz[k]) for k in npz.files}


def tree_map(
    fn: Callable[[np.ndarray], np.ndarray], state: Mapping[str, np.ndarray]
) -> StateDict:
    """Apply ``fn`` to every leaf array, returning a new state dict."""
    return {k: fn(np.asarray(v)) for k, v in state.items()}
