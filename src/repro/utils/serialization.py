"""State-dict utilities: cloning, comparison, and byte-level serialization.

A *state dict* throughout this library is a flat ``dict[str, np.ndarray]``
(model parameters, optimizer moments, counters).  Checkpoints, snapshots,
replicas, and logging payloads all move state dicts around, so the helpers
here are the common currency of every recovery mechanism.

Zero-copy counterparts live in :mod:`repro.utils.cow`: where
:func:`clone_state` eagerly duplicates every leaf, a
:class:`~repro.utils.cow.StateView` captures the same dict in O(#keys).
The byte-level serializers support *incremental* (delta) persists: pass
``keys`` to :func:`save_state_bytes` to write only the changed leaves, and
``base`` to :func:`load_state_bytes` to overlay a delta onto the state it
was taken against.
"""

from __future__ import annotations

import io
from collections.abc import Callable, Mapping

import numpy as np

__all__ = [
    "clone_state",
    "state_equal",
    "state_allclose",
    "state_nbytes",
    "save_state_bytes",
    "load_state_bytes",
    "tree_map",
]

StateDict = dict[str, np.ndarray]


def clone_state(state: Mapping[str, np.ndarray]) -> StateDict:
    """Deep-copy a state dict (the snapshot primitive of CheckFreq et al.)."""
    return {k: np.array(v, copy=True) for k, v in state.items()}


def state_equal(a: Mapping[str, np.ndarray], b: Mapping[str, np.ndarray]) -> bool:
    """True iff both states have identical keys and bitwise-equal arrays."""
    if a.keys() != b.keys():
        return False
    pairs = [(np.asarray(a[k]), np.asarray(b[k])) for k in a]
    # shape mismatches settle the answer without touching any values
    if any(x.shape != y.shape for x, y in pairs):
        return False
    return all(x is y or np.array_equal(x, y) for x, y in pairs)


def state_allclose(
    a: Mapping[str, np.ndarray],
    b: Mapping[str, np.ndarray],
    rtol: float = 1e-5,
    atol: float = 1e-7,
) -> bool:
    """True iff both states match within floating-point tolerance.

    Update-undo recovers a state that may differ from the original by
    floating-point rounding (paper Section 4), so undo tests compare with
    this rather than :func:`state_equal`.
    """
    if a.keys() != b.keys():
        return False
    pairs = [(np.asarray(a[k]), np.asarray(b[k])) for k in a]
    # shape mismatch is never "close" — and must not silently broadcast
    if any(x.shape != y.shape for x, y in pairs):
        return False
    return all(x is y or np.allclose(x, y, rtol=rtol, atol=atol)
               for x, y in pairs)


def state_nbytes(state: Mapping[str, np.ndarray]) -> int:
    """Total payload size in bytes (used by the checkpoint cost model)."""
    return int(sum(np.asarray(v).nbytes for v in state.values()))


def save_state_bytes(
    state: Mapping[str, np.ndarray], keys: set[str] | list[str] | None = None
) -> bytes:
    """Serialize a state dict (or a subset of its leaves) to bytes.

    ``keys`` selects an incremental persist: only the named leaves are
    written, producing a *delta* blob that :func:`load_state_bytes` can
    overlay onto the base state it was taken against.
    """
    if keys is not None:
        missing = set(keys) - state.keys()
        if missing:
            raise KeyError(f"delta keys not in state: {sorted(missing)}")
        state = {k: state[k] for k in keys}
    buf = io.BytesIO()
    np.savez(buf, **{k: np.asarray(v) for k, v in state.items()})
    return buf.getvalue()


def load_state_bytes(
    payload: bytes, base: Mapping[str, np.ndarray] | None = None
) -> StateDict:
    """Inverse of :func:`save_state_bytes`.

    With ``base``, ``payload`` is treated as a delta: the result is the
    base state overlaid with the deserialized leaves.  Unchanged leaves
    are shared with ``base`` by reference (zero-copy overlay); call
    :func:`clone_state` on the result if private arrays are needed.
    """
    buf = io.BytesIO(payload)
    with np.load(buf) as npz:
        # npz arrays are freshly decompressed — no defensive copy needed
        loaded = {k: npz[k] for k in npz.files}
    if base is None:
        return loaded
    merged: StateDict = {k: np.asarray(v) for k, v in base.items()}
    merged.update(loaded)
    return merged


def tree_map(
    fn: Callable[[np.ndarray], np.ndarray], state: Mapping[str, np.ndarray]
) -> StateDict:
    """Apply ``fn`` to every leaf array, returning a new state dict."""
    return {k: fn(np.asarray(v)) for k, v in state.items()}
