"""Copy-on-write state views: the zero-copy snapshot primitive.

Every recovery mechanism in this library moves *state dicts* (flat
``dict[str, np.ndarray]``) around: checkpoints, CheckFreq-style snapshots,
replica broadcasts, shard mirrors.  The eager way to protect a snapshot
from later training updates is a deep copy (:func:`repro.utils.clone_state`)
— O(state bytes) of memcpy squarely on the critical path, which is exactly
the overhead the paper says a recovery mechanism must avoid.

The observation that makes zero-copy safe here: every producer of a state
dict (``Module.state_dict``, ``Optimizer.state_dict``, ``full_state``)
already hands out *private* arrays, and every consumer that writes state
back (``load_state_dict``, ``load_full_state``) copies on ingest.  The
second defensive copy at the snapshot boundary protects against nothing —
except accidental in-place mutation, which a read-only view rejects just
as well at O(1) cost.

:class:`StateView` therefore captures a state dict by *reference*:

* construction is O(#keys) — no array data is touched;
* every leaf is frozen in place (``writeable=False``), so a later
  in-place write through the captured array object — or any view derived
  from it afterwards — raises ``ValueError`` instead of silently
  corrupting the snapshot (out-of-place rebinding, the way the
  optimizers and modules actually update state, never touches the view).
  Writable arrays that do not own their buffer are copied on capture,
  so a caller passing a slice of a live tensor cannot mutate the
  snapshot through the base either.  The one hole NumPy cannot close:
  a writable alias that existed *before* capture — producers must hand
  over private arrays, which every ``state_dict``/``full_state`` in
  this library does;
* writes go through :meth:`child`, which shares unchanged leaves and
  records the overwritten keys as *dirty* — the copy-on-write step is
  O(changed bytes), not O(state bytes);
* :meth:`materialize` produces a plain writable deep copy on demand
  (materialize-on-write: the copy happens only when a consumer needs
  mutable arrays, e.g. checkpoint *restore*).

Views are versioned: each construction draws a fresh monotonically
increasing version number, and children remember their parent's version,
so incremental checkpointing can name the base a delta applies to.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator, Mapping

import numpy as np

__all__ = ["StateView", "freeze_array"]

#: process-wide monotonic version source for views
_VERSIONS = itertools.count(1)


def freeze_array(value: object) -> np.ndarray:
    """Return ``value`` as a read-only ndarray, freezing it in place.

    The copy-on-write tripwire: the array object is marked non-writeable
    (no copy), so in-place writes through it — or through views derived
    from it later — fail loudly instead of mutating a live snapshot.

    ``setflags`` is per-object, not per-buffer: it cannot revoke write
    access from aliases that already exist.  Writable arrays that do not
    own their buffer (views/slices of something else) are therefore
    copied, closing the commonest aliasing hole; a pre-existing alias of
    an *owning* array remains the producer's responsibility — hand over
    private arrays, as every state producer in this library does.
    """
    arr = np.asarray(value)
    if arr.flags.writeable:
        if not arr.flags.owndata:
            arr = np.array(arr, copy=True)
        arr.setflags(write=False)
    return arr


class StateView(Mapping):
    """An immutable, versioned, zero-copy view of a state dict."""

    __slots__ = ("_leaves", "version", "parent_version", "dirty")

    def __init__(
        self,
        leaves: dict[str, np.ndarray],
        version: int,
        parent_version: int | None,
        dirty: frozenset[str],
    ):
        self._leaves = leaves
        #: unique monotonically increasing id of this view
        self.version = version
        #: version of the view this one was derived from (None for roots)
        self.parent_version = parent_version
        #: keys whose leaves differ from the parent (all keys for roots)
        self.dirty = dirty

    # -- construction -------------------------------------------------------
    @classmethod
    def of(cls, state: Mapping[str, np.ndarray]) -> "StateView":
        """Capture ``state`` by reference in O(#keys).

        Takes ownership of the leaf arrays: they are frozen in place.  A
        ``StateView`` passed in is returned unchanged (already immutable).
        """
        if isinstance(state, StateView):
            return state
        leaves = {k: freeze_array(v) for k, v in state.items()}
        return cls(leaves, next(_VERSIONS), None, frozenset(leaves))

    def child(self, updates: Mapping[str, np.ndarray]) -> "StateView":
        """Derive a new view with some leaves replaced (the COW write).

        Unchanged leaves are shared by reference with this view; only the
        keys in ``updates`` get new (frozen) arrays and are recorded as
        dirty relative to this view.
        """
        unknown = updates.keys() - self._leaves.keys()
        if unknown:
            raise KeyError(f"unknown state keys {sorted(unknown)}")
        leaves = dict(self._leaves)
        for k, v in updates.items():
            leaves[k] = freeze_array(v)
        return StateView(
            leaves, next(_VERSIONS), self.version, frozenset(updates)
        )

    def select(self, keys: Mapping[str, object] | set[str] | list[str]
               ) -> "StateView":
        """Zero-copy sub-view restricted to ``keys`` (e.g. a delta)."""
        leaves = {k: self._leaves[k] for k in keys}
        return StateView(
            leaves, next(_VERSIONS), self.version, frozenset(leaves)
        )

    # -- Mapping interface ---------------------------------------------------
    def __getitem__(self, key: str) -> np.ndarray:
        return self._leaves[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._leaves)

    def __len__(self) -> int:
        return len(self._leaves)

    def __repr__(self) -> str:
        return (
            f"StateView(version={self.version}, keys={len(self._leaves)}, "
            f"nbytes={self.nbytes})"
        )

    # -- materialization -----------------------------------------------------
    def materialize(self, keys: list[str] | None = None
                    ) -> dict[str, np.ndarray]:
        """Writable deep copy of the view (or of a subset of its keys).

        This is the only O(bytes) operation; it runs on the *restore* path
        where the consumer genuinely needs private mutable arrays.
        """
        names = self._leaves if keys is None else keys
        return {k: np.array(self._leaves[k], copy=True) for k in names}

    # -- queries ---------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        return int(sum(v.nbytes for v in self._leaves.values()))

    def diff_keys(self, other: Mapping[str, np.ndarray]) -> set[str]:
        """Keys whose leaves differ from ``other`` (identity fast path).

        Leaves shared by reference (the COW case) are recognized in O(1);
        distinct arrays fall back to a bitwise comparison.
        """
        changed = set(self._leaves.keys() ^ other.keys())
        for k in self._leaves.keys() & other.keys():
            a, b = self._leaves[k], np.asarray(other[k])
            if a is b:
                continue
            if a.shape != b.shape or not np.array_equal(a, b):
                changed.add(k)
        return changed
