"""Training-trace analysis and export.

Turns :class:`~repro.core.trainer.TrainingTrace` objects into the summary
statistics the paper reports (steady throughput, recovery breakdowns,
goodput) and exports them as CSV for external plotting.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass

import numpy as np

__all__ = ["TraceSummary", "summarize_trace", "trace_to_csv",
           "goodput", "loss_curve_distance"]


@dataclass(frozen=True)
class TraceSummary:
    """Aggregate statistics of one training run."""

    iterations: int
    total_sim_time: float
    median_iteration_time: float
    steady_throughput: float  # samples / second at the median iteration
    num_checkpoints: int
    checkpoint_time: float
    num_recoveries: int
    recovery_time: float
    final_loss: float | None

    @property
    def overhead_fraction(self) -> float:
        """Share of wall time not spent on useful iterations.

        Well-defined (0.0) for empty and zero-iteration traces — never
        NaN, never a ZeroDivisionError.
        """
        if not np.isfinite(self.total_sim_time) or self.total_sim_time <= 0:
            return 0.0
        useful = self.iterations * self.median_iteration_time
        if not np.isfinite(useful):
            return 0.0
        return max(0.0, 1.0 - useful / self.total_sim_time)


def summarize_trace(trace, samples_per_iteration: int) -> TraceSummary:
    """Reduce a TrainingTrace to headline numbers.

    Safe on empty and degenerate traces: zero iterations, zero or
    non-finite iteration times all reduce to well-defined zeros.
    """
    times = np.asarray(trace.iteration_times, dtype=float)
    median_time = float(np.median(times)) if times.size else 0.0
    if not np.isfinite(median_time):
        median_time = 0.0
    recovery_time = trace.recovery_time_total
    checkpoint_time = sum(t for _, t in trace.checkpoints)
    return TraceSummary(
        iterations=len(trace.iteration_times),
        total_sim_time=trace.total_time,
        median_iteration_time=median_time,
        steady_throughput=(
            samples_per_iteration / median_time if median_time else 0.0
        ),
        num_checkpoints=len(trace.checkpoints),
        checkpoint_time=checkpoint_time,
        num_recoveries=len(trace.recoveries),
        recovery_time=recovery_time,
        final_loss=trace.losses[-1] if trace.losses else None,
    )


def goodput(trace, samples_per_iteration: int) -> float:
    """Samples per simulated second over the whole run, stalls included.

    Thin alias of :meth:`TrainingTrace.goodput`, kept for callers holding
    trace-like objects.  Empty and zero-time traces yield 0.0 (never NaN
    or a ZeroDivisionError).
    """
    value = trace.goodput(samples_per_iteration)
    return value if np.isfinite(value) else 0.0


def loss_curve_distance(a: list[float], b: list[float]) -> float:
    """Max absolute pointwise difference between two loss curves.

    The Figure 11 metric: zero (or fp-epsilon) when recovery preserved the
    training trajectory.
    """
    if len(a) != len(b):
        raise ValueError(f"curve lengths differ: {len(a)} vs {len(b)}")
    if not a:
        return 0.0
    return float(np.max(np.abs(np.asarray(a) - np.asarray(b))))


def trace_to_csv(trace, samples_per_iteration: int) -> str:
    """Serialize per-iteration rows (iteration, loss, time, throughput)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["iteration", "loss", "sim_time_s", "throughput"])
    for it, loss, t in zip(trace.iteration_numbers, trace.losses,
                           trace.iteration_times):
        writer.writerow([
            it, f"{loss:.8f}", f"{t:.6f}",
            f"{samples_per_iteration / t:.3f}" if t else "0",
        ])
    return buf.getvalue()
