"""A size-classed buffer arena for the send + log hot path.

Without pooling, every inter-stage message costs two fresh allocations and
two copies: :meth:`Transport.send` clones the outgoing tensor so the sender
may keep mutating its buffers, and the tensor log's tap clones it *again*
into the log record.  Both copies protect the same bytes.

With a :class:`BufferPool` the path performs **one** copy into a pooled,
read-only buffer that the message and the log record share.  Reference
counting decides when the buffer can be recycled:

* ``Transport.send`` captures the tensor (ref held by the in-flight
  message);
* the tensor log's tap retains the same buffer for its record;
* ``Transport.recv`` releases the message's ref, marking the buffer as
  consumer-visible — the receiver keeps using the view it was handed;
* log garbage collection (a global checkpoint truncating the log) and
  transport channel drops release with recycling, returning the storage
  to the arena once no tracked holder remains.

Storage that a consumer may still alias is not reused immediately: it
passes through *two* quarantine generations (nursery → limbo → free),
advancing one generation per :meth:`BufferPool.advance_epoch` — which
the tensor log calls at the start of every garbage collection.  A
received tensor therefore stays valid until at least the *second*
global checkpoint after its buffer was released, whether or not the
message was logged (selective logging releases unlogged buffers at
``recv`` time, logged ones at gc time).  Consumers must not retain
received tensors longer than that (engines never do: activations and
gradients die with their iteration); copy with ``np.array(t,
copy=True)`` to keep one indefinitely.

Buffers are rounded up to power-of-two size classes so tensors of the
same shape class reuse each other's storage — the steady state of a
checkpointing training loop serves sends from recycled arena buffers
instead of fresh allocations.

"""

from __future__ import annotations

import numpy as np

__all__ = ["BufferPool", "PooledBuffer"]

#: smallest size class, bytes (sub-256B tensors share one class)
_MIN_CLASS = 256


class PooledBuffer:
    """One captured tensor: a read-only view over arena storage + refcount."""

    __slots__ = ("pool", "array", "_storage", "_refs", "seen_by_consumer")

    def __init__(self, pool: "BufferPool | None", array: np.ndarray,
                 storage: np.ndarray):
        self.pool = pool
        #: the read-only, correctly shaped/dtyped view consumers see
        self.array = array
        self._storage = storage
        self._refs = 1
        #: set by Transport.recv: a receiver may still alias the view, so
        #: the storage must age through both quarantine generations
        #: before being reused
        self.seen_by_consumer = False

    @property
    def refs(self) -> int:
        return self._refs

    def retain(self) -> "PooledBuffer":
        """Register one more holder of this buffer."""
        self._refs += 1
        return self

    def release(self, recycle: bool = True) -> None:
        """Drop one holder; recycle the storage when none remain.

        ``recycle=False`` detaches instead: the storage is handed over to
        whatever consumer still aliases it and simply becomes a normal
        garbage-collected array.  Consumer-visible buffers recycle via the
        quarantine generation (see :meth:`BufferPool.advance_epoch`).
        """
        if self._refs <= 0:
            raise ValueError("release() on an already-dead pooled buffer")
        self._refs -= 1
        if self._refs == 0 and self.pool is not None:
            pool, self.pool = self.pool, None
            if recycle:
                pool._recycle(self._storage,
                              quarantine=self.seen_by_consumer)


class BufferPool:
    """Arena of reusable byte buffers, organised in power-of-two classes."""

    def __init__(self, max_pooled_bytes: int = 256 * 1024 * 1024):
        #: cap on idle bytes kept in the free lists (excess is dropped to
        #: the allocator instead of hoarded)
        self.max_pooled_bytes = int(max_pooled_bytes)
        self._free: dict[int, list[np.ndarray]] = {}
        self._idle_bytes = 0
        #: quarantine generations for storage a consumer may still alias:
        #: releases land in the nursery, advance_epoch moves nursery ->
        #: limbo -> free, so reuse needs two epoch advances (both bounded
        #: by max_pooled_bytes together with _free)
        self._nursery: list[np.ndarray] = []
        self._nursery_bytes = 0
        self._limbo: list[np.ndarray] = []
        self._limbo_bytes = 0
        # -- stats (read by benchmarks and tests) --
        self.hits = 0
        self.misses = 0
        self.recycled = 0
        self.captured_bytes = 0

    @staticmethod
    def _size_class(nbytes: int) -> int:
        cls = _MIN_CLASS
        while cls < nbytes:
            cls <<= 1
        return cls

    def capture(self, tensor: np.ndarray) -> PooledBuffer:
        """Copy ``tensor`` once into pooled storage; returns the buffer.

        The returned :attr:`PooledBuffer.array` is a read-only view with
        the tensor's shape and dtype, safe to share between a message and
        its log record.
        """
        arr = np.asarray(tensor)
        cls = self._size_class(arr.nbytes)
        free = self._free.get(cls)
        if free:
            storage = free.pop()
            self._idle_bytes -= cls
            self.hits += 1
        else:
            storage = np.empty(cls, dtype=np.uint8)
            self.misses += 1
        view = storage[: arr.nbytes].view(arr.dtype).reshape(arr.shape)
        np.copyto(view, arr)
        view.setflags(write=False)
        self.captured_bytes += int(arr.nbytes)
        return PooledBuffer(self, view, storage)

    def _recycle(self, storage: np.ndarray, quarantine: bool = False) -> None:
        cls = storage.nbytes
        pooled = self._idle_bytes + self._limbo_bytes + self._nursery_bytes
        if pooled + cls > self.max_pooled_bytes:
            return  # over budget: let the allocator reclaim it
        # the storage may still be aliased by frozen views of the retired
        # tensor; re-enable writes on the backing buffer for its next life
        storage.setflags(write=True)
        if quarantine:
            self._nursery.append(storage)
            self._nursery_bytes += cls
        else:
            self._free.setdefault(cls, []).append(storage)
            self._idle_bytes += cls
        self.recycled += 1

    def advance_epoch(self) -> int:
        """Age the quarantine generations by one checkpoint.

        Called when a global checkpoint truncates the tensor log.  Limbo
        storage (released two epochs ago) becomes allocatable; nursery
        storage (released since the previous checkpoint) moves to limbo.
        Returns the number of buffers promoted to the free lists.
        """
        promoted = len(self._limbo)
        for storage in self._limbo:
            self._free.setdefault(storage.nbytes, []).append(storage)
        self._idle_bytes += self._limbo_bytes
        self._limbo = self._nursery
        self._limbo_bytes = self._nursery_bytes
        self._nursery = []
        self._nursery_bytes = 0
        return promoted

    # -- introspection -----------------------------------------------------
    @property
    def idle_bytes(self) -> int:
        return self._idle_bytes

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "recycled": self.recycled,
            "captured_bytes": self.captured_bytes,
            "idle_bytes": self._idle_bytes,
            "limbo_bytes": self._limbo_bytes + self._nursery_bytes,
        }
