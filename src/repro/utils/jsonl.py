"""Durable JSONL primitives shared by every event-log format.

Three formats in this repo are "one JSON header line + one JSON line per
event": :class:`repro.chaos.FailureTrace`, :class:`repro.obs.TelemetryTrace`,
and the :mod:`repro.serve` write-ahead log.  They share the failure modes
of append-only files — a process killed mid-write leaves a *torn* final
line — and the durability needs of a log that must survive ``kill -9``.
This module is their common substrate:

* :func:`canonical_json` — the byte-stable serialization every format
  uses (sorted keys, no whitespace, repr-round-tripping floats);
* :func:`crc32_text` — the record checksum the serve WAL stamps on every
  line, so mid-file bit rot (not just torn tails) is *detected* instead
  of silently replayed;
* :func:`salvage_jsonl` — split a JSONL text into its valid prefix and
  the torn tail (if any), so readers can recover from a crash-mid-write
  instead of raising;
* :class:`JsonlWriter` — append-only line writer with flush-per-line and
  optional ``fsync`` durability, the primitive under both
  :class:`repro.obs.JsonlSink` and :class:`repro.serve.WriteAheadLog`.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path

__all__ = ["canonical_json", "crc32_text", "salvage_jsonl", "JsonlWriter"]


def canonical_json(payload: object) -> str:
    """Serialize to the repo's byte-stable JSON form.

    Sorted keys, no whitespace, floats via Python's repr-based
    formatting (which round-trips exactly), so serializing the parse of
    a canonical line reproduces it byte-for-byte.

    >>> canonical_json({"b": 1.5, "a": [1, 2]})
    '{"a":[1,2],"b":1.5}'
    >>> canonical_json(json.loads(canonical_json({"x": 0.1}))) == \
            canonical_json({"x": 0.1})
    True
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def crc32_text(text: str) -> int:
    """CRC-32 of a text's UTF-8 bytes (the WAL record checksum).

    Platform-independent (:func:`zlib.crc32` is the IEEE polynomial
    everywhere), cheap enough to stamp on every log line, and strong
    enough to catch single-bit rot anywhere in a record — the failure
    mode torn-tail salvage alone cannot see.

    >>> crc32_text('{"a":1}')
    1444654255
    >>> crc32_text('{"a":2}') != crc32_text('{"a":1}')
    True
    """
    return zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF


def salvage_jsonl(text: str) -> tuple[list[str], str | None]:
    """Split JSONL text into valid lines plus a torn final line (if any).

    A process killed mid-append (``kill -9``, power loss) leaves a file
    whose last line may be truncated.  The valid prefix is still a
    complete, consistent log; only the final line can be torn, and it
    was — by the write-ahead discipline — never acknowledged.  This
    helper returns ``(good_lines, torn_tail)`` where ``torn_tail`` is
    the unparseable final line (``None`` when the file is clean).

    A malformed line *before* the end is real corruption, not a torn
    write; it is returned as part of ``good_lines`` so strict parsers
    still reject it.

    >>> salvage_jsonl('{"a":1}\\n{"b":2}\\n')
    (['{"a":1}', '{"b":2}'], None)
    >>> salvage_jsonl('{"a":1}\\n{"b":')
    (['{"a":1}'], '{"b":')
    """
    lines = [ln for ln in text.splitlines() if ln.strip()]
    if not lines:
        return [], None
    try:
        json.loads(lines[-1])
    except json.JSONDecodeError:
        return lines[:-1], lines[-1]
    return lines, None


class JsonlWriter:
    """Append-only JSONL file with flush-per-line and optional fsync.

    Every ``write_line`` flushes to the OS so a concurrent reader (or a
    ``tail -f``) sees complete lines only; with ``fsync=True`` each line
    is additionally forced to stable storage before the call returns —
    the durability a write-ahead log needs before acknowledging.
    ``close()`` always flushes (and fsyncs, when enabled) first, so no
    buffered line is ever lost to an orderly shutdown.

    >>> import tempfile, os
    >>> path = os.path.join(tempfile.mkdtemp(), "log.jsonl")
    >>> with JsonlWriter(path) as w:
    ...     w.write_line('{"event":"demo"}')
    >>> open(path).read()
    '{"event":"demo"}\\n'
    """

    def __init__(self, path: str | Path, *, fsync: bool = False,
                 append: bool = False):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.fsync = bool(fsync)
        self._fh = self.path.open("a" if append else "w")

    @property
    def closed(self) -> bool:
        return self._fh.closed

    def write_line(self, line: str) -> None:
        """Append one complete line durably (see class docstring)."""
        if self._fh.closed:
            raise ValueError(f"JsonlWriter {self.path} already closed")
        self._fh.write(line + "\n")
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        """Flush (and fsync, when enabled) then close; idempotent."""
        if self._fh.closed:
            return
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        self._fh.close()

    def __enter__(self) -> "JsonlWriter":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
