"""Deterministic, named random-number streams.

Swift's logging-based recovery requires *deterministic* computation: the same
input must always produce the same output, otherwise replaying logged tensors
would diverge from the pre-failure execution (paper Section 5.1,
"Consistency" and Section 6, "Determinism in Logging").  The paper achieves
this on GPUs by pinning cuDNN algorithms; in this NumPy reproduction we
achieve it by deriving every random stream from a root seed plus a stable
string key, so that re-running any component (weight init, data shuffling,
dropout masks) reproduces bit-identical numbers regardless of call order in
other components.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "stream", "RngStream"]

_MASK64 = (1 << 64) - 1


def derive_seed(root: int, *keys: object) -> int:
    """Derive a stable 64-bit seed from a root seed and a key path.

    The derivation hashes the textual representation of ``keys`` with
    SHA-256, so it is stable across processes and Python versions (unlike
    ``hash()``).

    >>> derive_seed(0, "model", "layer", 3) == derive_seed(0, "model", "layer", 3)
    True
    >>> derive_seed(0, "a") != derive_seed(0, "b")
    True
    """
    h = hashlib.sha256()
    h.update(str(int(root)).encode())
    for key in keys:
        h.update(b"\x1f")
        h.update(repr(key).encode())
    return int.from_bytes(h.digest()[:8], "little") & _MASK64


def stream(root: int, *keys: object) -> np.random.Generator:
    """Return a fresh :class:`numpy.random.Generator` for a named stream."""
    return np.random.default_rng(derive_seed(root, *keys))


class RngStream:
    """A factory of named, reproducible random generators.

    Components receive an ``RngStream`` and derive private sub-streams with
    :meth:`child` or draw generators with :meth:`generator`.  Two streams
    constructed from the same root and key path are interchangeable.
    """

    def __init__(self, root: int, *keys: object):
        self.root = int(root)
        self.keys: tuple[object, ...] = tuple(keys)

    def child(self, *keys: object) -> "RngStream":
        """Derive a sub-stream for a named component."""
        return RngStream(self.root, *self.keys, *keys)

    def generator(self, *keys: object) -> np.random.Generator:
        """Return a fresh generator for this stream (plus optional keys)."""
        return stream(self.root, *self.keys, *keys)

    @property
    def seed(self) -> int:
        return derive_seed(self.root, *self.keys)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        path = "/".join(str(k) for k in self.keys)
        return f"RngStream(root={self.root}, path={path!r})"
