"""Flat-parameter arenas: the fused training-step substrate.

Per-parameter training loops pay one Python-level NumPy call per parameter
per operation — for a P-parameter model on W data-parallel replicas that is
``O(P * W)`` interpreter round-trips per iteration just for gradient
synchronization and the optimizer update.  A :class:`FlatBuffer` packs all
of a module's parameters (or gradients, or one optimizer slot) into a
*single* contiguous float64 vector with named slices, so the same work
becomes a handful of fused vector operations:

* gradient synchronization is **one** all-reduce over the flat gradient
  buffer instead of P per-parameter calls;
* optimizer updates run **vectorized kernels** over the whole arena (or a
  prefix of it) instead of P ``step_param`` calls;
* the wait-free/layer-wise update semantics survive because the arena is
  laid out in *update order*: "the first k parameters were updated" is
  exactly the contiguous prefix ``data[:prefix_stop(k)]``, so a MID_UPDATE
  crash budget maps to a fused kernel over a prefix slice.

Because every fused operation performs the same elementwise arithmetic, in
the same order, with the same scalars as the per-parameter path, results
are bitwise identical — the property the equivalence suite in
``tests/test_flat.py`` and ``benchmarks/bench_step.py`` pins down.

:class:`FlatArena` bundles the three buffers one optimizer needs (params,
grads, one buffer per slot tensor) in one object; adoption/sharing policy
lives with the consumers (:class:`repro.optim.base.Optimizer`,
:class:`repro.parallel.data_parallel.DataParallelEngine`).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import numpy as np

__all__ = ["FlatBuffer", "FlatArena"]


class FlatBuffer:
    """One contiguous float64 vector with named, ordered slices.

    Parameters
    ----------
    shapes:
        Name → array shape of every leaf to lay out.
    order:
        Layout order of the names (default: ``shapes`` iteration order).
        The order is load-bearing: prefix slices (wait-free update budgets)
        cover the first *k* names in this order.
    """

    __slots__ = ("order", "shapes", "slices", "data", "_views", "_frozen")

    def __init__(
        self,
        shapes: Mapping[str, tuple[int, ...]],
        order: Iterable[str] | None = None,
    ):
        self.order: list[str] = list(order) if order is not None else list(shapes)
        self.shapes: dict[str, tuple[int, ...]] = {
            name: tuple(shapes[name]) for name in self.order
        }
        offset = 0
        self.slices: dict[str, slice] = {}
        for name in self.order:
            size = int(np.prod(self.shapes[name], dtype=np.int64)) if self.shapes[name] else 1
            self.slices[name] = slice(offset, offset + size)
            offset += size
        self.data: np.ndarray = np.zeros(offset, dtype=np.float64)
        self._views: dict[str, np.ndarray] | None = None
        self._frozen: dict[str, np.ndarray] | None = None

    # -- geometry -----------------------------------------------------------
    @property
    def size(self) -> int:
        return int(self.data.size)

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def prefix_stop(self, count: int) -> int:
        """Flat index one past the last element of the first ``count`` names.

        ``data[:prefix_stop(k)]`` is the contiguous span covering the first
        ``k`` parameters in layout order — the slice a wait-free update
        budget of ``k`` parameters fuses over.
        """
        if count <= 0:
            return 0
        count = min(count, len(self.order))
        return self.slices[self.order[count - 1]].stop

    # -- named views ----------------------------------------------------------
    def views(self) -> dict[str, np.ndarray]:
        """Shape-restored writable views into the buffer (cached objects).

        The returned arrays share memory with :attr:`data`; the *same* view
        objects are returned every call, so consumers can test adoption
        with an ``is`` check instead of comparing buffer pointers.
        """
        if self._views is None:
            self._views = {
                name: self.data[sl].reshape(self.shapes[name])
                for name, sl in self.slices.items()
            }
        return self._views

    def view(self, name: str) -> np.ndarray:
        return self.views()[name]

    def frozen_views(self) -> dict[str, np.ndarray]:
        """Read-only counterparts of :meth:`views` (cached objects).

        These are what a canonical replica hands to its copy-on-write
        followers: the followers see every in-place arena update for free,
        while their own accidental in-place writes raise ``ValueError``
        instead of corrupting the shared buffer.
        """
        if self._frozen is None:
            frozen = {}
            for name, sl in self.slices.items():
                v = self.data[sl].reshape(self.shapes[name])
                v.setflags(write=False)
                frozen[name] = v
            self._frozen = frozen
        return self._frozen

    # -- bulk movement ---------------------------------------------------------
    def pack(self, arrays: Mapping[str, np.ndarray],
             names: Iterable[str] | None = None) -> None:
        """Copy named arrays into their slices (the gather step)."""
        views = self.views()
        for name in (self.order if names is None else names):
            views[name][...] = arrays[name]

    def unpack(self, names: Iterable[str] | None = None) -> dict[str, np.ndarray]:
        """Private (copied) arrays per name (the scatter step)."""
        views = self.views()
        return {
            name: np.array(views[name], copy=True)
            for name in (self.order if names is None else names)
        }

    def zero(self) -> None:
        self.data[:] = 0.0

    def copy_from(self, other: "FlatBuffer | np.ndarray") -> None:
        """Bulk copy of another buffer's contents (one fused memcpy)."""
        src = other.data if isinstance(other, FlatBuffer) else other
        np.copyto(self.data, src)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FlatBuffer(names={len(self.order)}, size={self.size})"


class FlatArena:
    """Params + grads + per-slot flat buffers for one optimizer.

    All buffers share one layout (``shapes`` in ``order``), so a span
    ``[lo:hi)`` addresses the same parameters in every buffer — which is
    what lets an optimizer kernel update parameters, read gradients, and
    advance slot tensors with aligned fused vector operations.
    """

    __slots__ = ("params", "grads", "slots", "_scratch")

    def __init__(
        self,
        shapes: Mapping[str, tuple[int, ...]],
        order: Iterable[str] | None = None,
        slot_names: Iterable[str] = (),
    ):
        self.params = FlatBuffer(shapes, order)
        self.grads = FlatBuffer(shapes, self.params.order)
        self.slots: dict[str, FlatBuffer] = {
            slot: FlatBuffer(shapes, self.params.order) for slot in slot_names
        }
        self._scratch: dict[str, np.ndarray] = {}

    @property
    def order(self) -> list[str]:
        return self.params.order

    @property
    def nbytes(self) -> int:
        return (
            self.params.nbytes
            + self.grads.nbytes
            + sum(b.nbytes for b in self.slots.values())
        )

    def span(self, count: int) -> slice:
        """Flat slice covering the first ``count`` names in every buffer."""
        return slice(0, self.params.prefix_stop(count))

    def local_slice(self, name: str) -> slice:
        return self.params.slices[name]

    def scratch(self, name: str) -> np.ndarray:
        """A reusable arena-sized work vector (allocated once per name).

        Kernels chain ``out=`` ufuncs through these instead of allocating a
        fresh temporary per elementwise pass — the arithmetic (and thus the
        bits) is unchanged, only the allocator traffic goes away.
        """
        buf = self._scratch.get(name)
        if buf is None:
            buf = np.empty(self.params.size, dtype=np.float64)
            self._scratch[name] = buf
        return buf
