"""One engine-construction entry point over the divergent constructors.

:class:`~repro.parallel.DataParallelEngine`,
:class:`~repro.parallel.PipelineEngine`, and
:class:`~repro.parallel.FSDPEngine` each grew their own constructor
shape; :func:`build_engine` normalizes all of them behind the
:class:`~repro.api.ExecutionPlan`, deriving every factory (model,
optimizer, loss, task) from the validated specs.  The old constructors
keep working unchanged — they are the thin layer this function targets.
"""

from __future__ import annotations

from repro.api.experiment import ExecutionPlan
from repro.cluster.clock import SimClock
from repro.cluster.topology import Cluster
from repro.errors import ConfigurationError
from repro.parallel.data_parallel import DataParallelEngine
from repro.parallel.fsdp import FSDPEngine
from repro.parallel.pipeline import PipelineEngine

__all__ = ["build_engine"]


def build_engine(
    plan: ExecutionPlan,
    cluster: Cluster | None = None,
    clock: SimClock | None = None,
):
    """Construct the engine an :class:`ExecutionPlan` calls for.

    ``cluster`` defaults to a fresh one from the experiment's
    :class:`~repro.api.ClusterSpec`; pass an existing cluster (and
    clock) to share hardware with other jobs.

    >>> from repro.api import Experiment, ModelSpec, ParallelismSpec
    >>> plan = Experiment(
    ...     model=ModelSpec(family="mlp", dim=4, hidden_dim=8),
    ...     parallelism=ParallelismSpec(kind="dp", num_workers=2),
    ... ).plan()
    >>> type(build_engine(plan)).__name__
    'DataParallelEngine'
    """
    exp = plan.experiment
    if exp is None:
        raise ConfigurationError(
            f"plan for analytic workload {plan.workload_name!r} carries "
            "no buildable experiment spec"
        )
    cluster = cluster if cluster is not None else exp.cluster.build()
    model_spec, data, par = exp.model, exp.data, exp.parallelism
    task = data.build(model_spec)
    placement = list(plan.placement)

    if plan.engine_kind == "dp":
        return DataParallelEngine(
            cluster,
            model_factory=model_spec.build,
            opt_factory=model_spec.build_optimizer,
            loss_factory=data.loss_factory(),
            task=task,
            placement=placement,
            clock=clock,
            fused=par.fused,
        )
    if plan.engine_kind == "pp":
        return PipelineEngine(
            cluster,
            model_factory=model_spec.build,
            partition_sizes=list(plan.partition_sizes),
            placement=placement,
            num_microbatches=par.num_microbatches,
            opt_factory=model_spec.build_optimizer,
            loss_factory=data.loss_factory(),
            task=task,
            clock=clock,
            schedule=par.schedule,
            comm_time=par.comm_time,
        )
    if plan.engine_kind == "fsdp":
        return FSDPEngine(
            cluster,
            model_factory=model_spec.build,
            opt_factory=model_spec.build_optimizer,
            loss_factory=data.loss_factory(),
            task=task,
            placement=placement,
            clock=clock,
        )
    raise ConfigurationError(f"unknown engine kind {plan.engine_kind!r}")
