"""repro.api — one declarative experiment surface over the whole stack.

The paper's Section 6 usage story, as an API: describe an experiment with
five validated sub-specs, inspect every pre-training decision as an
:class:`ExecutionPlan`, then either build a live :class:`Session` or
lower the same spec into the fleet scheduler::

    from repro.api import Experiment, ModelSpec, ParallelismSpec

    exp = Experiment(
        name="quickstart",
        model=ModelSpec(family="mlp", dim=16, hidden_dim=32, seed=42),
        parallelism=ParallelismSpec(kind="dp", num_workers=4),
    )
    print(exp.plan().describe())     # strategy, checkpoints, log volume
    session = exp.build()            # cluster + engine + SwiftTrainer
    trace = session.run(100)         # fault-tolerant training
    job = session.submit(100)        # or a repro.jobs.JobSpec instead

Validation is eager (:class:`~repro.errors.ConfigurationError` at
composition time), planning is deterministic, and ``Session.run``
produces traces bitwise-equal to hand-wiring the engines and
:class:`~repro.core.SwiftTrainer` directly.
"""

from repro.api.engines import build_engine
from repro.api.experiment import ExecutionPlan, Experiment
from repro.api.session import Session
from repro.api.specs import (
    ClusterSpec,
    DataSpec,
    FaultToleranceSpec,
    ModelSpec,
    ParallelismSpec,
)
from repro.api.workloads import demo_fleet_specs, plan_workload
from repro.chaos import (
    FailureTrace,
    ScenarioSpec,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.core.policies import (
    RecoveryPolicy,
    get_recovery_policy,
    recovery_policy_names,
    register_recovery_policy,
)
from repro.core.strategy import FTStrategy

__all__ = [
    "Experiment",
    "ExecutionPlan",
    "Session",
    "ModelSpec",
    "DataSpec",
    "ClusterSpec",
    "ParallelismSpec",
    "FaultToleranceSpec",
    "FTStrategy",
    "build_engine",
    "plan_workload",
    "demo_fleet_specs",
    "RecoveryPolicy",
    "register_recovery_policy",
    "get_recovery_policy",
    "recovery_policy_names",
    "FailureTrace",
    "ScenarioSpec",
    "get_scenario",
    "register_scenario",
    "scenario_names",
]
