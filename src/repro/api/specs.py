"""Declarative experiment sub-specs (paper Section 6, Usage).

The paper's usability claim — "a user only needs to provide a UDF to
train one iteration and specify fault tolerance and training
configurations" — becomes five small frozen dataclasses:

* :class:`ModelSpec`   — which network and optimizer (Table 2 families);
* :class:`DataSpec`    — which synthetic task feeds it;
* :class:`ClusterSpec` — the simulated testbed (Section 7 defaults);
* :class:`ParallelismSpec` — DP / PP / sharded-DP layout (Sections 2, 8);
* :class:`FaultToleranceSpec` — the fault-tolerance configuration
  (Sections 3-5: strategy, checkpoint cadence, logging mode, parallel
  recovery degree).

Each spec validates its own fields eagerly in ``__post_init__``;
cross-spec constraints (model/task agreement, placement vs. cluster
bounds, strategy vs. parallelism) are enforced by
:class:`repro.api.Experiment` at composition time, so every
misconfiguration surfaces as a :class:`~repro.errors.ConfigurationError`
before any engine is built.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.cluster.topology import BandwidthModel, Cluster
from repro.core.policies import recovery_policy_names
from repro.core.strategy import FTStrategy
from repro.core.tlog import GroupingPlan, LoggingMode
from repro.core.trainer import TrainerConfig
from repro.data import ClassificationTask, ImageTask, TokenTask
from repro.errors import ConfigurationError
from repro.models import make_bert, make_mlp, make_vit, make_wide_resnet
from repro.nn import CrossEntropyLoss, MSELoss
from repro.optim import (
    OPTIMIZER_FAMILIES,
    OPTIMIZER_TABLE1_NAMES,
    make_optimizer,
)

__all__ = [
    "ModelSpec",
    "DataSpec",
    "ClusterSpec",
    "ParallelismSpec",
    "FaultToleranceSpec",
]

GiB = 1024**3

MODEL_FAMILIES = ("mlp", "bert", "vit", "wide_resnet")
LOSSES = {"cross_entropy": CrossEntropyLoss, "mse": MSELoss}


@dataclass(frozen=True)
class ModelSpec:
    """Which network to train, and the optimizer updating it.

    The families are scaled-down instances of the paper's Table 2
    workloads; ``optimizer`` matters beyond numerics because strategy
    selection (Section 3) requires an *invertible* optimizer for
    update-undo (Table 1) before replication-based recovery applies.

    >>> spec = ModelSpec(family="mlp", dim=4, hidden_dim=8, num_classes=2)
    >>> model = spec.build()            # deterministic seeded instance
    >>> spec.param_elements() == sum(
    ...     int(p.data.size) for _, p in model.named_parameters())
    True
    >>> ModelSpec(family="resnet-9000")
    Traceback (most recent call last):
        ...
    repro.errors.ConfigurationError: unknown model family 'resnet-9000'; \
known: ('mlp', 'bert', 'vit', 'wide_resnet')
    """

    family: str = "mlp"
    #: hidden width (MLP hidden input dim / transformer model dim)
    dim: int = 16
    #: MLP hidden layer width
    hidden_dim: int = 32
    num_classes: int = 4
    #: hidden layers (mlp) / encoder blocks (bert, vit) / blocks per
    #: group (wide_resnet)
    depth: int = 2
    seed: int = 0
    # -- transformer knobs (bert / vit) -----------------------------------
    vocab_size: int = 32
    max_len: int = 8
    num_heads: int = 2
    # -- image knobs (vit / wide_resnet) ----------------------------------
    image_size: int = 16
    patch: int = 8
    in_channels: int = 3
    base_channels: int = 16
    # -- optimizer --------------------------------------------------------
    optimizer: str = "sgd_momentum"
    lr: float | None = None
    momentum: float = 0.9

    def __post_init__(self) -> None:
        if self.family not in MODEL_FAMILIES:
            raise ConfigurationError(
                f"unknown model family {self.family!r}; "
                f"known: {MODEL_FAMILIES}"
            )
        if self.optimizer not in OPTIMIZER_FAMILIES:
            raise ConfigurationError(
                f"unknown optimizer family {self.optimizer!r}; "
                f"known: {sorted(OPTIMIZER_FAMILIES)}"
            )
        for name in ("dim", "hidden_dim", "num_classes", "depth"):
            if getattr(self, name) < 1:
                raise ConfigurationError(f"{name} must be >= 1")
        if self.family in ("bert", "vit") and self.dim % self.num_heads:
            raise ConfigurationError(
                f"dim ({self.dim}) must divide evenly into "
                f"num_heads ({self.num_heads}) attention heads"
            )
        if self.family == "vit" and self.image_size % self.patch:
            raise ConfigurationError(
                f"image_size ({self.image_size}) must be a multiple of "
                f"patch ({self.patch})"
            )

    @property
    def table1_optimizer(self) -> str:
        """Table-1 operator-universe row for invertibility checks."""
        return OPTIMIZER_TABLE1_NAMES[self.optimizer]

    # -- builders ---------------------------------------------------------
    def build(self):
        """Fresh deterministic model instance (all replicas identical)."""
        if self.family == "mlp":
            return make_mlp(self.dim, self.hidden_dim, self.num_classes,
                            depth=self.depth, seed=self.seed)
        if self.family == "bert":
            return make_bert(
                vocab_size=self.vocab_size, max_len=self.max_len,
                dim=self.dim, depth=self.depth, num_heads=self.num_heads,
                seed=self.seed,
            )
        if self.family == "vit":
            return make_vit(
                image_size=self.image_size, patch=self.patch, dim=self.dim,
                depth=self.depth, num_heads=self.num_heads,
                num_classes=self.num_classes, in_channels=self.in_channels,
                seed=self.seed,
            )
        return make_wide_resnet(
            num_classes=self.num_classes, base_channels=self.base_channels,
            blocks_per_group=self.depth, in_channels=self.in_channels,
            seed=self.seed,
        )

    def build_optimizer(self, params):
        return make_optimizer(
            self.optimizer, params, lr=self.lr, momentum=self.momentum
        )

    def num_partitionable_layers(self) -> int:
        """Length of the flat Sequential (pipeline partitioning unit)."""
        return _model_metrics(self)[0]

    def param_elements(self) -> int:
        """Total parameter element count (planning-time sizing)."""
        return _model_metrics(self)[1]

    def boundary_elements(self, micro_batch_size: int) -> int:
        """Per-micro-batch element count of one inter-stage tensor.

        Feeds the Section 5.4 logging calculus: for transformers this is
        the paper's micro_batch x seq_len x hidden_size; for MLPs the
        hidden width; image models use their widest activation map.
        """
        if self.family == "bert":
            return micro_batch_size * self.max_len * self.dim
        if self.family == "vit":
            patches = (self.image_size // self.patch) ** 2
            return micro_batch_size * patches * self.dim
        if self.family == "wide_resnet":
            return (micro_batch_size * self.base_channels
                    * self.image_size * self.image_size)
        return micro_batch_size * self.hidden_dim


@lru_cache(maxsize=256)
def _model_metrics(spec: ModelSpec) -> tuple[int, int]:
    """(num_layers, param_elements) of one built instance, cached.

    Planning (``Experiment.plan``/``validate``) needs these repeatedly;
    the cache keeps the plan path from re-allocating full seeded models
    just to count layers and bytes (specs are frozen, so safe keys).
    """
    model = spec.build()
    elements = sum(
        int(p.data.size) for _, p in model.named_parameters()
    )
    return len(model), elements


@dataclass(frozen=True)
class DataSpec:
    """Synthetic task feeding the model (deterministic, replayable).

    Geometry (feature dim, classes, sequence length, image size) comes
    from the :class:`ModelSpec` so the two can never disagree; the task
    kind itself is cross-checked against the model family by
    ``Experiment.validate``.

    >>> task = DataSpec(kind="classification", batch_size=8).build(
    ...     ModelSpec(family="mlp", dim=4))
    >>> task.batch(iteration=0)[0].shape   # deterministic synthetic data
    (8, 4)
    >>> DataSpec(kind="tokens").compatible_families()
    ('bert',)
    """

    kind: str = "classification"  # classification | tokens | images
    batch_size: int = 32
    seed: int = 0
    noise: float = 0.5
    loss: str = "cross_entropy"

    def __post_init__(self) -> None:
        if self.kind not in ("classification", "tokens", "images"):
            raise ConfigurationError(
                f"unknown data kind {self.kind!r}; expected "
                "'classification', 'tokens', or 'images'"
            )
        if self.batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        if self.loss not in LOSSES:
            raise ConfigurationError(
                f"unknown loss {self.loss!r}; known: {sorted(LOSSES)}"
            )

    def compatible_families(self) -> tuple[str, ...]:
        return {
            "classification": ("mlp",),
            "tokens": ("bert",),
            "images": ("vit", "wide_resnet"),
        }[self.kind]

    def build(self, model: ModelSpec):
        if self.kind == "classification":
            return ClassificationTask(
                dim=model.dim, num_classes=model.num_classes,
                batch_size=self.batch_size, seed=self.seed,
                noise=self.noise,
            )
        if self.kind == "tokens":
            return TokenTask(
                vocab_size=model.vocab_size, seq_len=model.max_len,
                batch_size=self.batch_size, seed=self.seed,
            )
        return ImageTask(
            image_size=model.image_size, num_classes=model.num_classes,
            batch_size=self.batch_size, in_channels=model.in_channels,
            seed=self.seed, noise=self.noise,
        )

    def loss_factory(self):
        return LOSSES[self.loss]


@dataclass(frozen=True)
class ClusterSpec:
    """The simulated testbed (Section 7 defaults: DGX-2-class machines).

    Bandwidth overrides of ``None`` keep the paper's numbers (40 Gbps
    Ethernet, NVLink intra-machine, PCIe 3.0 x16 GPU-CPU).

    >>> spec = ClusterSpec(num_machines=4, devices_per_machine=2)
    >>> spec.num_slots
    8
    >>> spec.build().num_machines      # a live simulated cluster
    4
    """

    num_machines: int = 2
    devices_per_machine: int = 2
    device_memory_gib: int = 32
    network_bw: float | None = None
    nvlink_bw: float | None = None
    pcie_bw: float | None = None
    latency: float | None = None

    def __post_init__(self) -> None:
        if self.num_machines < 1:
            raise ConfigurationError("num_machines must be >= 1")
        if self.devices_per_machine < 1:
            raise ConfigurationError("devices_per_machine must be >= 1")
        if self.device_memory_gib < 1:
            raise ConfigurationError("device_memory_gib must be >= 1")
        for name in ("network_bw", "nvlink_bw", "pcie_bw"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ConfigurationError(f"{name} must be > 0 (or None)")
        if self.latency is not None and self.latency < 0:
            raise ConfigurationError("latency must be >= 0 (or None)")

    @property
    def num_slots(self) -> int:
        return self.num_machines * self.devices_per_machine

    def bandwidth_model(self) -> BandwidthModel:
        defaults = BandwidthModel()
        return BandwidthModel(
            network=(
                defaults.network if self.network_bw is None
                else self.network_bw
            ),
            nvlink=(
                defaults.nvlink if self.nvlink_bw is None
                else self.nvlink_bw
            ),
            pcie=defaults.pcie if self.pcie_bw is None else self.pcie_bw,
            latency=(
                defaults.latency if self.latency is None else self.latency
            ),
        )

    def build(self) -> Cluster:
        return Cluster(
            num_machines=self.num_machines,
            devices_per_machine=self.devices_per_machine,
            device_memory=self.device_memory_gib * GiB,
            bandwidth=self.bandwidth_model(),
        )


@dataclass(frozen=True)
class ParallelismSpec:
    """How workers map onto the cluster (Sections 2.1 and 8).

    ``kind="dp"`` replicates the model (replication-based recovery
    territory), ``"pp"`` pipelines it across machines (logging-based
    recovery territory), ``"fsdp"`` shards it with cross-machine mirrors
    (the Section 8 extension).  ``placement=None`` block-fills machines
    device-major: rank r -> (r // devices_per_machine, r % ...).

    >>> par = ParallelismSpec(kind="dp", num_workers=4)
    >>> par.resolve_placement(ClusterSpec(num_machines=2,
    ...                                   devices_per_machine=2))
    ((0, 0), (0, 1), (1, 0), (1, 1))
    """

    kind: str = "dp"
    num_workers: int = 4
    placement: tuple[tuple[int, int], ...] | None = None
    # -- pipeline-only knobs ----------------------------------------------
    num_microbatches: int = 4
    partition_sizes: tuple[int, ...] | None = None
    #: any schedule registered via :func:`repro.parallel.register_schedule`
    schedule: str = "1f1b"
    #: model chunks per pipeline stage (Megatron-style interleaving); 0
    #: means "the schedule's default" (1 for flat schedules, 2 for
    #: interleaved_1f1b)
    virtual_stages: int = 0
    comm_time: float = 0.0
    #: fused flat-buffer reduce+update path (DP; bitwise-equal to eager)
    fused: bool = True

    def __post_init__(self) -> None:
        from repro.parallel.programs import schedule_names

        if self.kind not in ("dp", "pp", "fsdp"):
            raise ConfigurationError(
                f"unknown parallelism kind {self.kind!r}; expected "
                "'dp', 'pp', or 'fsdp'"
            )
        if self.num_workers < 1:
            raise ConfigurationError("num_workers must be >= 1")
        if self.kind == "fsdp" and self.num_workers < 2:
            raise ConfigurationError(
                "sharded replication needs >= 2 workers"
            )
        if self.num_microbatches < 1:
            raise ConfigurationError("num_microbatches must be >= 1")
        if self.schedule not in schedule_names():
            raise ConfigurationError(
                f"unknown schedule {self.schedule!r}; registered "
                f"schedules: {', '.join(schedule_names())}"
            )
        if self.virtual_stages < 0:
            raise ConfigurationError("virtual_stages must be >= 0")
        if self.virtual_stages > 1 and self.kind != "pp":
            raise ConfigurationError(
                "virtual_stages only applies to pipeline parallelism"
            )
        if (
            self.placement is not None
            and len(self.placement) != self.num_workers
        ):
            raise ConfigurationError(
                f"placement has {len(self.placement)} entries for "
                f"{self.num_workers} workers"
            )
        if self.partition_sizes is not None:
            if self.kind != "pp":
                raise ConfigurationError(
                    "partition_sizes only applies to pipeline parallelism"
                )
            if self.resolved_virtual_stages() > 1:
                raise ConfigurationError(
                    "explicit partition_sizes are unsupported with "
                    "virtual stages; layers are split into "
                    "num_workers * virtual_stages balanced chunks"
                )
            if len(self.partition_sizes) != self.num_workers:
                raise ConfigurationError(
                    f"partition_sizes has {len(self.partition_sizes)} "
                    f"stages for {self.num_workers} workers"
                )
            if any(s < 1 for s in self.partition_sizes):
                raise ConfigurationError("every partition size must be >= 1")

    def resolved_virtual_stages(self) -> int:
        """The effective chunk multiplier (0 -> the schedule's default).

        >>> ParallelismSpec(kind="pp").resolved_virtual_stages()
        1
        >>> ParallelismSpec(kind="pp", schedule="interleaved_1f1b",
        ...                 num_microbatches=2, num_workers=2,
        ...                 ).resolved_virtual_stages()
        2
        """
        from repro.parallel.programs import default_virtual_stages

        if self.virtual_stages > 0:
            return self.virtual_stages
        if self.kind != "pp":
            return 1
        return default_virtual_stages(self.schedule)

    def resolve_placement(
        self, cluster: ClusterSpec
    ) -> tuple[tuple[int, int], ...]:
        """Concrete ``(machine, device)`` per worker, bounds-checked."""
        if self.placement is None:
            if self.num_workers > cluster.num_slots:
                raise ConfigurationError(
                    f"{self.num_workers} workers do not fit on "
                    f"{cluster.num_machines}x{cluster.devices_per_machine} "
                    "devices"
                )
            d = cluster.devices_per_machine
            return tuple((r // d, r % d) for r in range(self.num_workers))
        for machine, dev in self.placement:
            if not 0 <= machine < cluster.num_machines:
                raise ConfigurationError(
                    f"placement machine {machine} outside cluster "
                    f"(0..{cluster.num_machines - 1})"
                )
            if not 0 <= dev < cluster.devices_per_machine:
                raise ConfigurationError(
                    f"placement device {dev} outside machine "
                    f"(0..{cluster.devices_per_machine - 1})"
                )
        return tuple(tuple(p) for p in self.placement)


@dataclass(frozen=True)
class FaultToleranceSpec:
    """The fault-tolerance configuration of the Section 6 usage story.

    ``strategy="auto"`` runs the paper's Section 3 decision chain at
    planning time; explicit :class:`FTStrategy` values are validated
    against the parallelism layout.  Checkpoint fields configure the
    always-on global checkpointing net; logging fields shape the tensor
    log (Section 5); ``parallel_recovery_degree`` enables parallel
    replay (Section 5.2).  ``scenario`` names a registered
    :mod:`repro.chaos` failure scenario: ``plan()`` then predicts the
    failure rate and expected goodput, and ``Session.run`` samples the
    scenario (seeded by ``scenario_seed``) whenever no explicit failure
    schedule is passed.

    >>> ft = FaultToleranceSpec(checkpoint_interval=50,
    ...                         scenario="steady_mtbf")
    >>> ft.to_trainer_config().checkpoint_interval
    50
    >>> ft.resolve_scenario().name
    'steady_mtbf'
    """

    strategy: str = "auto"
    #: named :mod:`repro.chaos` scenario (or a ScenarioSpec) driving
    #: stochastic failure injection; ``None`` = no injected failures
    scenario: object | None = None
    scenario_seed: int = 0
    #: re-baseline the tensor log (fresh checkpoint) after each logging
    #: recovery so later failures never need the crashed machine's
    #: records; ``None`` = enabled exactly when a scenario is set (the
    #: multi-failure regime that requires it)
    checkpoint_after_recovery: bool | None = None
    checkpoint_interval: int = 100
    checkpoint_at_start: bool = True
    parallel_recovery_degree: int = 1
    replacement_join_time: float = 5.0
    incremental_checkpoints: bool = False
    incremental_full_every: int = 8
    pooled_messaging: bool = True
    logging_mode: str = "bubble"
    grouping: GroupingPlan | None = None
    #: selective-logging storage budget (Section 5.3); None = unplanned
    log_budget_bytes: float | None = None
    checkpoint_prefix: str = "ckpt"
    max_recoveries: int = 16

    def __post_init__(self) -> None:
        strategy = self.strategy
        if isinstance(strategy, FTStrategy):
            object.__setattr__(self, "strategy", strategy.value)
            strategy = strategy.value
        # "auto", the paper's three mechanisms, or any custom-registered
        # recovery policy (the repro.api extension point)
        valid = ("auto",) + tuple(recovery_policy_names())
        if strategy not in valid:
            raise ConfigurationError(
                f"unknown strategy {strategy!r}; expected one of {valid}"
            )
        try:
            LoggingMode(self.logging_mode)
        except ValueError:
            raise ConfigurationError(
                f"unknown logging mode {self.logging_mode!r}; expected "
                f"{[m.value for m in LoggingMode]}"
            ) from None
        if self.max_recoveries < 1:
            raise ConfigurationError("max_recoveries must be >= 1")
        if self.scenario is not None:
            # resolve eagerly so unknown names fail at composition time
            self.resolve_scenario()
        if self.log_budget_bytes is not None and self.log_budget_bytes < 0:
            raise ConfigurationError("log_budget_bytes must be >= 0")
        # interval/degree/full_every bounds match TrainerConfig; build one
        # eagerly so the two vocabularies can never drift
        self.to_trainer_config()

    def resolve_scenario(self):
        """The registered :class:`~repro.chaos.ScenarioSpec` (or None)."""
        if self.scenario is None:
            return None
        from repro.chaos import get_scenario

        return get_scenario(self.scenario)

    def to_trainer_config(self) -> TrainerConfig:
        """Lower into the trainer-level config (shared validation)."""
        return TrainerConfig(
            checkpoint_interval=self.checkpoint_interval,
            checkpoint_at_start=self.checkpoint_at_start,
            parallel_recovery_degree=self.parallel_recovery_degree,
            replacement_join_time=self.replacement_join_time,
            strategy=self.strategy,
            incremental_checkpoints=self.incremental_checkpoints,
            incremental_full_every=self.incremental_full_every,
            pooled_messaging=self.pooled_messaging,
            checkpoint_after_recovery=(
                self.scenario is not None
                if self.checkpoint_after_recovery is None
                else self.checkpoint_after_recovery
            ),
        )

    @property
    def logging_mode_enum(self) -> LoggingMode:
        return LoggingMode(self.logging_mode)
