"""Experiment-surface adapters for the paper's Table-2 workloads.

Two bridges keep the CLI and the analytic examples on the same
:mod:`repro.api` surface as the runnable engines:

* :func:`plan_workload` produces an :class:`~repro.api.ExecutionPlan`
  for a published workload (Wide-ResNet-50, ViT-128/32, BERT-128) from
  the calibrated :class:`~repro.sim.CostModel` instead of a live model —
  same Section 3 strategy chain, same Section 5.4 feasibility calculus,
  same Section 5.3 selective-logging planner;
* :func:`demo_fleet_specs` lowers the canonical five-job fleet demo
  through :meth:`Experiment.to_job_spec`, so the ``repro fleet`` CLI and
  ``examples/fleet_scheduler.py`` exercise the declarative path
  end-to-end.
"""

from __future__ import annotations

from repro.api.experiment import ExecutionPlan, Experiment
from repro.api.specs import (
    ClusterSpec,
    DataSpec,
    FaultToleranceSpec,
    ModelSpec,
    ParallelismSpec,
)
from repro.core.selective import PipelineProfile, SelectiveLoggingPlanner
from repro.core.strategy import FTStrategy, choose_strategy, logging_worth_it
from repro.errors import ConfigurationError
from repro.jobs.spec import JobSpec
from repro.parallel.hybrid import ParallelLayout, StagePlacement
from repro.sim.costmodel import CostModel
from repro.sim.fleet import FleetFailure
from repro.sim.workloads import Workload

__all__ = ["plan_workload", "demo_fleet_specs"]

#: published optimizer names -> Table-1 operator-universe rows
_TABLE1_NAMES = {
    "SGD": "SGD",
    "SGDMomentum": "SGD",
    "Adam": "Adam",
    "AdamW": "AdamW",
    "LAMB": "LAMB",
    "AMSGrad": "AMSGrad",
}


def _workload_layout(w: Workload) -> ParallelLayout:
    """Replica/stage placement question for a Table-2 workload."""
    if w.parallelism == "DP":
        stages = [
            StagePlacement(
                0,
                tuple(
                    (rank // w.gpus_per_machine,)
                    for rank in range(w.num_workers)
                ),
            )
        ]
    else:
        per_machine = max(1, w.num_stages // w.num_machines)
        stages = [
            StagePlacement(sid, ((min(sid // per_machine,
                                      w.num_machines - 1),),))
            for sid in range(w.num_stages)
        ]
    return ParallelLayout(stages=list(stages)).validate()


def plan_workload(
    w: Workload,
    log_budget_bytes: float | None = None,
    checkpoint_interval: int | None = None,
) -> ExecutionPlan:
    """Run the pre-training decision chain for a published workload.

    The plan carries no buildable experiment (these models are the
    paper-scale originals, priced by the cost model) — it is the
    inspection/planning half of the API: strategy, feasibility, and the
    selective-logging grouping under ``log_budget_bytes``.

    >>> from repro.sim import BERT_128, WIDE_RESNET_50
    >>> plan_workload(WIDE_RESNET_50).strategy.value
    'replication'
    >>> plan = plan_workload(BERT_128, log_budget_bytes=200e9)
    >>> (plan.strategy.value, plan.selective.storage_bytes <= 200e9)
    ('logging', True)
    """
    cost = CostModel(w)
    layout = _workload_layout(w)
    interval = (
        checkpoint_interval
        if checkpoint_interval is not None
        else (w.checkpoint_interval_iters or 100)
    )
    feasibility = None
    log_bytes = 0.0
    if w.parallelism == "PP":
        log_bytes = cost.logging_bytes_per_machine()
        feasibility = logging_worth_it(
            log_bytes,
            cost.iteration_time,
            w.num_stages,
            w.num_microbatches,
            cost.hw.pcie_bw,
            model_state_bytes=w.state_bytes,
        )
    strategy = choose_strategy(
        layout, feasibility,
        optimizer_name=_TABLE1_NAMES.get(w.optimizer),
    )
    selective = None
    if strategy is FTStrategy.LOGGING and log_budget_bytes is not None:
        n = w.num_machines
        stages_per_machine = w.num_stages // n
        profile = PipelineProfile(
            tuple(
                [w.num_microbatches * stages_per_machine * cost.slot_time]
                * n
            ),
            tuple(
                [2.0 * w.num_microbatches * w.boundary_bytes] * (n - 1)
            ),
        )
        planner = SelectiveLoggingPlanner(
            profile,
            checkpoint_interval=interval,
            network_bandwidth=cost.hw.network_bw,
        )
        selective = planner.plan(log_budget_bytes)
    if w.parallelism == "DP":
        placement = tuple(
            (rank // w.gpus_per_machine, rank % w.gpus_per_machine)
            for rank in range(w.num_workers)
        )
    else:
        placement = tuple(
            (sid * w.num_machines // w.num_stages,
             sid % w.gpus_per_machine)
            for sid in range(w.num_stages)
        )
    return ExecutionPlan(
        experiment=None,
        engine_kind="dp" if w.parallelism == "DP" else "pp",
        placement=placement,
        partition_sizes=None,
        layout=layout,
        strategy=strategy,
        strategy_source="auto",
        feasibility=feasibility,
        predicted_log_bytes_per_iteration=log_bytes,
        model_state_bytes=w.state_bytes,
        checkpoint_prefix="ckpt",
        checkpoint_interval=interval,
        incremental_checkpoints=False,
        selective=selective,
        workload_name=w.name,
    )


def demo_fleet_specs(
    iterations: int = 30,
) -> tuple[list[JobSpec], list[FleetFailure]]:
    """The canonical five-job fleet demo, lowered through the API.

    Mixed DP/PP gangs of different priorities (two elastic, one
    preempting high-priority arrival, one queued non-elastic gang) plus
    the two machine crashes of the registered ``"demo_fleet_crashes"``
    :mod:`repro.chaos` scenario — byte-for-byte the schedule
    ``repro.sim.demo_fleet`` used to hand-write.

    >>> specs, failures = demo_fleet_specs(iterations=10)
    >>> [s.name for s in specs]
    ['dp-main', 'pp-chain', 'dp-batch', 'dp-rush', 'dp-late']
    >>> [(f.round, f.machine_id) for f in failures]
    [(4, 0), (10, 2)]
    """
    if iterations < 1:
        raise ConfigurationError("iterations must be >= 1")
    fleet_cluster = ClusterSpec(num_machines=6, devices_per_machine=4)

    def mlp_experiment(name: str, kind: str, workers: int,
                       seed: int) -> Experiment:
        return Experiment(
            name=name,
            model=ModelSpec(family="mlp", dim=8, hidden_dim=16,
                            num_classes=4, depth=2, seed=seed,
                            # the legacy demo's exact optimizers/lrs
                            optimizer=("sgd_momentum" if kind == "dp"
                                       else "adam"),
                            lr=(0.05 if kind == "dp" else 0.01)),
            data=DataSpec(kind="classification", batch_size=16, seed=seed),
            cluster=fleet_cluster,
            parallelism=ParallelismSpec(kind=kind, num_workers=workers),
            fault_tolerance=FaultToleranceSpec(checkpoint_interval=10),
        )

    specs = [
        # the workhorse: elastic, so preemption shrinks it
        mlp_experiment("dp-main", "dp", 8, seed=11).to_job_spec(
            iterations, priority=1, elastic=True, min_workers=4,
        ),
        # pipeline-parallel job: recovers via tensor-log replay
        mlp_experiment("pp-chain", "pp", 4, seed=12).to_job_spec(
            iterations, priority=2,
        ),
        # background batch job, lowest priority, elastic
        mlp_experiment("dp-batch", "dp", 4, seed=13).to_job_spec(
            max(2, iterations // 2), priority=0, elastic=True,
            min_workers=2,
        ),
        # high-priority gang arriving later: triggers preemption
        mlp_experiment("dp-rush", "dp", 8, seed=14).to_job_spec(
            max(2, iterations // 2), priority=5, arrival=6,
        ),
        # low-priority non-elastic gang: cannot preempt, must queue
        mlp_experiment("dp-late", "dp", 8, seed=15).to_job_spec(
            max(2, iterations // 3), priority=0, arrival=8,
        ),
    ]
    # the demo's two crashes live in the scenario registry (scripted
    # events carry their rounds, so no horizon mapping is needed)
    from repro.chaos import get_scenario

    failures = get_scenario("demo_fleet_crashes").sample(
        seed=0, num_machines=fleet_cluster.num_machines
    ).to_fleet_failures()
    return specs, failures
