"""Session: the live facade an Experiment builds into (Section 6 usage).

A Session owns the materialized cluster, engine, and — for DP/PP plans —
the :class:`~repro.core.SwiftTrainer` assembled through the recovery
policy registry.  Sharded-DP (FSDP) plans run through the Section 8
mirror machinery instead (no trainer exists for it), behind the same
``run``/``step``/``trace`` surface.

The facade adds nothing numeric: ``Session.run`` produces traces
bitwise-equal to driving a hand-wired ``SwiftTrainer`` with the same
seeds and schedule.
"""

from __future__ import annotations

from repro.api.engines import build_engine
from repro.api.experiment import ExecutionPlan, Experiment
from repro.cluster.clock import SimClock
from repro.cluster.failures import FailureSchedule
from repro.cluster.topology import Cluster
from repro.core.detector import FailureDetector
from repro.core.sharded_recovery import ShardedReplicationRecovery
from repro.core.strategy import FTStrategy
from repro.core.trainer import SwiftTrainer, TrainingTrace
from repro.errors import ConfigurationError, RecoveryError
from repro.jobs.spec import Job, JobSpec
from repro.obs import (
    NULL_RECORDER,
    Recorder,
    TelemetryTrace,
    record_recovery_phases,
)
from repro.parallel.results import IterationResult

__all__ = ["Session"]


class Session:
    """A built experiment: engine + fault tolerance + lifetime trace.

    >>> from repro.api import (ClusterSpec, Experiment, ModelSpec,
    ...                        ParallelismSpec)
    >>> session = Experiment(
    ...     model=ModelSpec(family="mlp", dim=4, hidden_dim=8, seed=2),
    ...     cluster=ClusterSpec(num_machines=2, devices_per_machine=1),
    ...     parallelism=ParallelismSpec(kind="dp", num_workers=2),
    ... ).build()
    >>> trace = session.run(3)
    >>> len(trace.losses), session.engine.iteration
    (3, 3)
    >>> session.trace.losses == trace.losses   # lifetime trace
    True
    """

    def __init__(
        self,
        experiment: Experiment,
        plan: ExecutionPlan,
        cluster: Cluster | None = None,
        clock: SimClock | None = None,
    ):
        self.experiment = experiment
        self.plan = plan
        self.cluster = (
            cluster if cluster is not None else experiment.cluster.build()
        )
        self.clock = clock or SimClock()
        self.engine = build_engine(plan, self.cluster, self.clock)
        #: instrumentation sink; attach one via run(recorder=...) or
        #: :meth:`attach_recorder`
        self._recorder: Recorder = NULL_RECORDER
        #: the last scenario trace sampled by :meth:`run` (if any)
        self.chaos_trace = None
        ft = experiment.fault_tolerance
        self.trainer: SwiftTrainer | None = None
        self.recovery = None
        if plan.engine_kind in ("dp", "pp"):
            # run the strategy the PLAN decided, not the raw spec value:
            # "auto" may have resolved past the engine default (e.g. a DP
            # layout with no second machine, or a non-invertible
            # optimizer, plans checkpoint_only) and the session must
            # honor the decision plan() reported
            config = ft.to_trainer_config()
            config.strategy = (
                plan.strategy.value
                if isinstance(plan.strategy, FTStrategy) else plan.strategy
            )
            self.trainer = SwiftTrainer(
                self.engine,
                config,
                clock=self.clock,
                grouping=ft.grouping,
                logging_mode=ft.logging_mode_enum,
                checkpoint_prefix=ft.checkpoint_prefix,
            )
            self.recovery = self.trainer.recovery
        else:  # fsdp: Section 8 sharded replication, trainerless
            self.detector = FailureDetector(self.cluster.kvstore, self.clock)
            self.recovery = ShardedReplicationRecovery(
                self.engine, self.detector, self.clock,
                replacement_join_time=ft.replacement_join_time,
            )
            self._trace = TrainingTrace()
            self._recoveries = 0
            self._max_recoveries = ft.max_recoveries

    # -- observability ----------------------------------------------------
    @property
    def trace(self) -> TrainingTrace:
        """Lifetime trace across every run()/step() call."""
        if self.trainer is not None:
            return self.trainer.trace
        return self._trace

    @property
    def recorder(self) -> Recorder:
        """The attached instrumentation sink (NULL_RECORDER by default)."""
        return self._recorder

    def attach_recorder(self, recorder: Recorder) -> None:
        """Route this session's instrumentation through ``recorder``.

        Binds the session's sim clock to the recorder (unless it already
        has one) and threads the recorder through the trainer and engine
        so every iteration phase, recovery phase, counter, and gauge
        lands in the same telemetry stream.
        """
        self._recorder = recorder
        if recorder.enabled and getattr(recorder, "clock", None) is None:
            recorder.clock = self.clock
        if self.trainer is not None:
            self.trainer.recorder = recorder
        self.engine.recorder = recorder

    @property
    def telemetry(self) -> TelemetryTrace:
        """Telemetry of this session's recorded runs, metadata-stamped.

        Requires a :class:`~repro.obs.TraceRecorder` attached via
        ``run(recorder=...)`` or :meth:`attach_recorder`.
        """
        rec = self._recorder
        if not rec.enabled or not hasattr(rec, "trace"):
            raise ConfigurationError(
                "no TraceRecorder attached; pass recorder= to run() "
                "or call attach_recorder() first"
            )
        ft = self.experiment.fault_tolerance
        meta = {
            "experiment": self.experiment.name,
            "engine": self.plan.engine_kind,
            "strategy": str(
                getattr(self.plan.strategy, "value", self.plan.strategy)
            ),
            "batch_size": self.experiment.data.batch_size,
        }
        if ft.scenario is not None:
            meta["scenario"] = ft.scenario
            meta["scenario_seed"] = ft.scenario_seed
        return rec.trace(source=f"session:{self.experiment.name}", **meta)

    def describe(self) -> str:
        lines = [self.plan.describe()]
        lines.append(
            f"  session:         {type(self.engine).__name__} live on "
            f"{self.cluster.num_machines} machines, "
            f"iteration {self.engine.iteration}"
        )
        return "\n".join(lines)

    # -- driving ----------------------------------------------------------
    def run(
        self,
        iterations: int,
        failures: FailureSchedule | None = None,
        max_recoveries: int | None = None,
        recorder: Recorder | None = None,
    ) -> TrainingTrace:
        """Train to ``iterations``, recovering from scheduled failures.

        Returns the trace of *this call* (the lifetime trace stays on
        :attr:`trace`), exactly like ``SwiftTrainer.train``.

        When the experiment's :class:`FaultToleranceSpec` names a
        :mod:`repro.chaos` ``scenario`` and no explicit ``failures`` are
        passed, the scenario is sampled (seeded by ``scenario_seed``)
        over this run's iteration horizon; the sampled trace is kept on
        :attr:`chaos_trace` for saving/replay.

        Pass ``recorder=`` (e.g. a :class:`~repro.obs.TraceRecorder`) to
        capture per-phase telemetry; it stays attached for later calls
        and :attr:`telemetry` freezes the stream.  The default null
        recorder keeps the run bitwise-identical to an uninstrumented
        one.
        """
        if recorder is not None:
            self.attach_recorder(recorder)
        ft = self.experiment.fault_tolerance
        if failures is None and ft.scenario is not None:
            # the scenario describes the [0, iterations) timeline; a
            # continuation run keeps only the events it can still hit,
            # so chaos_trace records exactly what this call injected
            trace = ft.resolve_scenario().sample(
                ft.scenario_seed,
                self.cluster.num_machines,
                horizon_iters=iterations,
            ).after_iteration(self.engine.iteration)
            self.chaos_trace = trace
            failures = trace.to_schedule()
        limit = (
            self.experiment.fault_tolerance.max_recoveries
            if max_recoveries is None else max_recoveries
        )
        if self.trainer is not None:
            return self.trainer.train(
                iterations, failures=failures, max_recoveries=limit
            )
        return self._run_fsdp(iterations, failures, limit)

    def step(
        self, failures: FailureSchedule | None = None
    ) -> IterationResult:
        """Run (at most) one iteration — the cooperative scheduling unit."""
        if self.trainer is not None:
            return self.trainer.step(failures)
        return self._step_fsdp(failures or FailureSchedule())

    # -- fsdp driving (no SwiftTrainer exists for sharded engines) --------
    def _step_fsdp(self, failures: FailureSchedule) -> IterationResult:
        rec = self._recorder
        it = self.engine.iteration
        failure = SwiftTrainer._due_failure(failures, it)
        with rec.span("trainer/iteration") as sp:
            result = self.engine.run_iteration(failure=failure)
            if result.failed:
                sp.set(iteration=it, failed=True)
            else:
                sp.set(iteration=result.iteration, loss=result.loss)
        if result.failed:
            rec.count("trainer/failures")
            self._recoveries += 1
            if self._recoveries > self._max_recoveries:
                raise RecoveryError("too many recoveries; giving up")
            with rec.span("trainer/recovery") as sp:
                report = self.recovery.recover()
                sp.set(strategy=report.strategy,
                       lost_iterations=report.lost_iterations)
            self._trace.recoveries.append(report)
            rec.count("trainer/recoveries")
            record_recovery_phases(
                rec, report, sim_end=self.clock.now,
                resume_iteration=report.resume_iteration,
            )
            return result
        rec.count("trainer/iterations")
        if rec.enabled:
            rec.gauge("trainer/loss", result.loss)
        self._trace.losses.append(result.loss)
        self._trace.iteration_times.append(result.sim_time)
        self._trace.iteration_numbers.append(result.iteration)
        self._trace.wall_times.append(self.clock.now)
        return result

    def _run_fsdp(
        self,
        iterations: int,
        failures: FailureSchedule | None,
        max_recoveries: int,
    ) -> TrainingTrace:
        failures = failures or FailureSchedule()
        self._max_recoveries = max_recoveries
        self._recoveries = 0
        start = len(self._trace.losses)
        start_rec = len(self._trace.recoveries)
        while self.engine.iteration < iterations:
            self._step_fsdp(failures)
        return TrainingTrace(
            losses=self._trace.losses[start:],
            iteration_times=self._trace.iteration_times[start:],
            iteration_numbers=self._trace.iteration_numbers[start:],
            checkpoints=[],
            recoveries=self._trace.recoveries[start_rec:],
            wall_times=self._trace.wall_times[start:],
        )

    # -- fleet lowering ---------------------------------------------------
    def submit(
        self,
        iterations: int,
        scheduler=None,
        now: float = 0.0,
        **spec_kwargs,
    ) -> JobSpec | Job:
        """Lower this experiment into the fleet layer.

        Returns the :class:`JobSpec`; when ``scheduler`` (a
        :class:`repro.jobs.Scheduler`) is given, wraps it in a
        :class:`Job`, submits it, and returns the Job instead.
        """
        spec = self.experiment.to_job_spec(iterations, **spec_kwargs)
        if scheduler is None:
            return spec
        job = Job(spec)
        scheduler.submit(job, now=now)
        return job
