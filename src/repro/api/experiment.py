"""Experiment composition: validate -> plan -> build (paper Section 6).

An :class:`Experiment` composes the five sub-specs of
:mod:`repro.api.specs` and enforces every cross-spec constraint eagerly,
so misconfigurations fail at construction with a
:class:`~repro.errors.ConfigurationError` rather than mid-training.

``plan()`` runs the paper's *pre-training* decisions without building any
engine: the Section 3 strategy chain over the placement-derived
:class:`~repro.parallel.ParallelLayout`, the Section 5.4 logging
feasibility calculus, the Section 5.3 selective-logging grouping under a
storage budget, and the checkpoint layout.  The returned
:class:`ExecutionPlan` is inspectable (``describe()``) and deterministic:
the same specs always produce the same plan.

``build()`` lowers the plan into a live :class:`repro.api.Session`;
``to_job_spec()`` lowers the same specs into a
:class:`repro.jobs.JobSpec` for fleet scheduling instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.api.specs import (
    ClusterSpec,
    DataSpec,
    FaultToleranceSpec,
    ModelSpec,
    ParallelismSpec,
)
from repro.core.selective import (
    PipelineProfile,
    PlanResult,
    SelectiveLoggingPlanner,
)
from repro.core.strategy import (
    FTStrategy,
    LoggingFeasibility,
    choose_strategy,
    logging_worth_it,
)
from repro.errors import ConfigurationError
from repro.jobs.spec import JobSpec
from repro.parallel.hybrid import ParallelLayout, StagePlacement
from repro.parallel.programs import build_program
from repro.parallel.schedules import simulate_program

__all__ = ["Experiment", "ExecutionPlan"]

GB = 1e9
#: float64 numpy tensors everywhere in the substrate
DTYPE_BYTES = 8
#: engine-default per-micro-batch stage compute times (seconds), matching
#: PipelineEngine's defaults so planned and simulated timing agree
DEFAULT_FWD_TIME = 1e-3
DEFAULT_BWD_TIME = 2e-3
#: optimizer state multiplier over parameter bytes (params + slots)
_STATE_MULTIPLIER = {
    "sgd": 1, "sgd_momentum": 2, "adam": 3, "adamw": 3, "lamb": 3,
    "amsgrad": 4,
}

_STRATEGY_KINDS = {
    FTStrategy.REPLICATION: ("dp", "fsdp"),
    FTStrategy.LOGGING: ("pp",),
    FTStrategy.CHECKPOINT_ONLY: ("dp", "pp"),
}


@dataclass(frozen=True)
class ExecutionPlan:
    """Everything decided before training starts, in inspectable form.

    >>> from repro.api import (ClusterSpec, Experiment, ModelSpec,
    ...                        ParallelismSpec)
    >>> plan = Experiment(
    ...     model=ModelSpec(family="mlp", dim=4, hidden_dim=8),
    ...     cluster=ClusterSpec(num_machines=2, devices_per_machine=1),
    ...     parallelism=ParallelismSpec(kind="pp", num_workers=2,
    ...                                 num_microbatches=2),
    ... ).plan()
    >>> (plan.engine_kind, plan.strategy.value)
    ('pp', 'logging')
    >>> "strategy:" in plan.describe()
    True
    """

    #: the composed spec this plan was derived from (None for analytic
    #: Table-2 workload plans, see :mod:`repro.api.workloads`)
    experiment: "Experiment | None"
    engine_kind: str
    placement: tuple[tuple[int, int], ...]
    partition_sizes: tuple[int, ...] | None
    layout: ParallelLayout
    #: an :class:`FTStrategy` member, or the name of a custom-registered
    #: recovery policy when the spec asked for one explicitly
    strategy: FTStrategy | str
    #: "auto" when the Section 3 chain chose, "explicit" when the spec did
    strategy_source: str
    feasibility: LoggingFeasibility | None
    #: per-iteration bytes the busiest sender must log (0 for DP)
    predicted_log_bytes_per_iteration: float
    model_state_bytes: float
    checkpoint_prefix: str
    checkpoint_interval: int
    incremental_checkpoints: bool
    #: pipeline schedule program the engine will execute ("1f1b" unless
    #: the spec asked for another registered schedule)
    schedule: str = "1f1b"
    #: virtual pipeline stages per worker (1 = flat; >1 = interleaved,
    #: ``partition_sizes`` then lists one entry per *chunk*)
    virtual_stages: int = 1
    #: Section 5.3 grouping under ``log_budget_bytes`` (logging plans only)
    selective: PlanResult | None = None
    workload_name: str | None = None
    #: named :mod:`repro.chaos` scenario the run will sample (if any)
    scenario: str | None = None
    #: analytic machine-crash rate of the scenario on this cluster
    predicted_failure_rate_per_hour: float | None = None
    #: expected crashes over one scenario horizon
    expected_failures: float | None = None
    #: predicted useful fraction of wall-clock under the scenario
    #: (failure-free time / total time, over a default-length run)
    expected_goodput_fraction: float | None = None
    #: "user" for hand-composed plans; ``autoplan:<searcher>:<scenario>``
    #: when :meth:`Experiment.autoplan` chose the configuration
    provenance: str = "user"

    @property
    def machines(self) -> tuple[int, ...]:
        return tuple(sorted({m for m, _ in self.placement}))

    def describe(self) -> str:
        """Human-readable plan summary (the ``repro plan`` output core)."""
        name = self.workload_name or (
            self.experiment.name if self.experiment else "experiment"
        )
        lines = [
            f"plan for {name!r}:",
            f"  engine:          {self.engine_kind} "
            f"({len(self.placement)} workers on machines "
            f"{list(self.machines)})",
            f"  strategy:        "
            f"{getattr(self.strategy, 'value', self.strategy)} "
            f"({self.strategy_source})",
        ]
        if self.engine_kind == "pp":
            lines.append(
                f"  schedule:        {self.schedule}"
                + (
                    f" ({self.virtual_stages} virtual stages/worker)"
                    if self.virtual_stages > 1 else ""
                )
            )
        lines += [
            f"  checkpoints:     every {self.checkpoint_interval} "
            f"iterations under {self.checkpoint_prefix!r}"
            + (" (incremental)" if self.incremental_checkpoints else ""),
            f"  model state:     {self.model_state_bytes / GB:.3g} GB",
            "  instrumentation: repro.obs spans on trainer + engine "
            "hot paths (attach via Session.run(recorder=...))",
        ]
        if self.feasibility is not None:
            f = self.feasibility
            lines.append(
                f"  log volume:      "
                f"{self.predicted_log_bytes_per_iteration / GB:.3g} GB/iter "
                f"(copy {f.copy_time * 1e3:.2f} ms vs bubble "
                f"{f.bubble_time * 1e3:.2f} ms -> "
                f"{'worth it' if f.worth_it else 'not worth it'}: "
                f"{f.reason})"
            )
        if self.selective is not None:
            groups = "+".join(
                str(len(g)) for g in self.selective.plan.groups
            )
            lines.append(
                f"  selective log:   {self.selective.plan.num_groups} "
                f"groups [{groups}], "
                f"{self.selective.storage_bytes / GB:.1f} GB stored, "
                f"E[recovery] {self.selective.expected_recovery_time:.3f} "
                "s/lost-iteration"
            )
        if self.scenario is not None:
            cluster_machines = (
                self.experiment.cluster.num_machines
                if self.experiment is not None else len(self.machines)
            )
            lines.append(
                f"  scenario:        {self.scenario} "
                f"(~{self.predicted_failure_rate_per_hour * 100:.1f} "
                f"failures/100h on {cluster_machines} machines, "
                f"E[{self.expected_failures:.1f}] per horizon; "
                f"expected goodput "
                f"~{self.expected_goodput_fraction * 100:.0f}% of "
                "failure-free)"
            )
        if self.provenance != "user":
            lines.append(f"  provenance:      {self.provenance}")
        return "\n".join(lines)


@dataclass(frozen=True)
class Experiment:
    """One declarative, validated experiment over the whole stack.

    Misconfigurations fail at composition time; ``plan()`` is a pure
    function of the specs; ``build()`` yields a live
    :class:`~repro.api.Session` whose traces are bitwise-equal to
    hand-wiring the engines.

    >>> from repro.api import ModelSpec, ParallelismSpec
    >>> exp = Experiment(
    ...     name="doc",
    ...     model=ModelSpec(family="mlp", dim=4, hidden_dim=8, seed=1),
    ...     parallelism=ParallelismSpec(kind="dp", num_workers=2),
    ... )
    >>> exp.plan().engine_kind
    'dp'
    >>> exp.with_(name="doc2").name        # functional update
    'doc2'
    >>> Experiment(model=ModelSpec(family="bert"))  # doctest: +ELLIPSIS
    Traceback (most recent call last):
        ...
    repro.errors.ConfigurationError: data kind 'classification' feeds ...
    """

    name: str = "experiment"
    model: ModelSpec = field(default_factory=ModelSpec)
    data: DataSpec = field(default_factory=DataSpec)
    cluster: ClusterSpec = field(default_factory=ClusterSpec)
    parallelism: ParallelismSpec = field(default_factory=ParallelismSpec)
    fault_tolerance: FaultToleranceSpec = field(
        default_factory=FaultToleranceSpec
    )

    def __post_init__(self) -> None:
        self.validate()

    # -- eager cross-spec validation --------------------------------------
    def validate(self) -> "Experiment":
        model, data, par = self.model, self.data, self.parallelism
        if model.family not in data.compatible_families():
            raise ConfigurationError(
                f"data kind {data.kind!r} feeds model families "
                f"{data.compatible_families()}, not {model.family!r}"
            )
        placement = par.resolve_placement(self.cluster)
        if par.kind == "fsdp" and len({m for m, _ in placement}) < 2:
            raise ConfigurationError(
                "sharded replication mirrors need >= 2 machines in the "
                "placement"
            )
        if par.kind == "pp":
            if data.batch_size < par.num_microbatches:
                raise ConfigurationError(
                    f"batch_size ({data.batch_size}) must cover "
                    f"num_microbatches ({par.num_microbatches})"
                )
            num_layers = model.num_partitionable_layers()
            v = par.resolved_virtual_stages()
            if par.partition_sizes is not None:
                if sum(par.partition_sizes) != num_layers:
                    raise ConfigurationError(
                        f"partition_sizes sum to "
                        f"{sum(par.partition_sizes)} but the "
                        f"{model.family} model has {num_layers} layers"
                    )
            elif num_layers < par.num_workers * v:
                raise ConfigurationError(
                    f"cannot split {num_layers} layers over "
                    f"{par.num_workers} pipeline stages"
                    + (f" x {v} virtual stages" if v > 1 else "")
                )
            # surface schedule-shape errors (e.g. interleaved needs
            # num_microbatches % num_workers == 0) at composition time
            build_program(
                par.schedule, par.num_workers, par.num_microbatches, v
            )
        strategy = self.fault_tolerance.strategy
        if strategy != "auto":
            try:
                allowed = _STRATEGY_KINDS[FTStrategy(strategy)]
            except ValueError:
                # custom-registered policy: engine compatibility is the
                # policy's own call, checked when the trainer is built
                allowed = None
            if allowed is not None and par.kind not in allowed:
                raise ConfigurationError(
                    f"strategy {strategy!r} requires parallelism in "
                    f"{allowed}, got {par.kind!r}"
                )
        return self

    # -- derived views ----------------------------------------------------
    def resolved_placement(self) -> tuple[tuple[int, int], ...]:
        return self.parallelism.resolve_placement(self.cluster)

    def resolved_partition_sizes(self) -> tuple[int, ...] | None:
        """Pipeline layer counts per chunk (balanced when unspecified).

        One entry per stage for flat schedules; with virtual stages the
        model is cut into ``num_workers * virtual_stages`` chunks and
        chunk ``c`` lives on stage ``c % num_workers``.
        """
        if self.parallelism.kind != "pp":
            return None
        if self.parallelism.partition_sizes is not None:
            return tuple(self.parallelism.partition_sizes)
        chunks = (
            self.parallelism.num_workers
            * self.parallelism.resolved_virtual_stages()
        )
        layers = self.model.num_partitionable_layers()
        base, rem = divmod(layers, chunks)
        return tuple(base + 1 if c < rem else base for c in range(chunks))

    def derive_layout(self) -> ParallelLayout:
        """Placement as the Section 3 replica/stage question."""
        placement = self.resolved_placement()
        if self.parallelism.kind == "pp":
            stages = [
                StagePlacement(sid, ((machine,),))
                for sid, (machine, _) in enumerate(placement)
            ]
        else:
            # DP replicas / FSDP mirror-holders: one replica per worker
            stages = [
                StagePlacement(0, tuple((m,) for m, _ in placement))
            ]
        return ParallelLayout(stages=list(stages)).validate()

    # -- the plan ---------------------------------------------------------
    def _iteration_time_estimate(self) -> float:
        """Engine-default schedule makespan (pp) — the timing the logging
        calculus compares the PCIe copy against."""
        par = self.parallelism
        program = build_program(
            par.schedule,
            par.num_workers,
            par.num_microbatches,
            par.resolved_virtual_stages(),
        )
        timing = simulate_program(
            program,
            [DEFAULT_FWD_TIME] * par.num_workers,
            [DEFAULT_BWD_TIME] * par.num_workers,
            par.comm_time,
        )
        return timing.iteration_time

    def _predicted_log_bytes(self) -> float:
        """Busiest sender's per-iteration log volume (Section 5.4)."""
        par, data = self.parallelism, self.data
        if par.kind != "pp":
            return 0.0
        micro = max(1, data.batch_size // par.num_microbatches)
        elems = self.model.boundary_elements(micro)
        # forward activation out + backward gradient out, per micro-batch
        return 2.0 * par.num_microbatches * elems * DTYPE_BYTES

    def _model_state_bytes(self) -> float:
        param_bytes = self.model.param_elements() * DTYPE_BYTES
        return param_bytes * _STATE_MULTIPLIER[self.model.optimizer]

    def plan(self) -> ExecutionPlan:
        """Run every pre-training decision; pure function of the specs."""
        self.validate()
        par, ft = self.parallelism, self.fault_tolerance
        placement = self.resolved_placement()
        layout = self.derive_layout()
        state_bytes = self._model_state_bytes()
        feasibility = None
        log_bytes = self._predicted_log_bytes()
        virtual_stages = par.resolved_virtual_stages() if par.kind == "pp" else 1
        if par.kind == "pp":
            feasibility = logging_worth_it(
                log_bytes,
                self._iteration_time_estimate(),
                par.num_workers,
                par.num_microbatches,
                self.cluster.bandwidth_model().pcie,
                model_state_bytes=state_bytes,
            )
            if virtual_stages > 1:
                # logging replay rebuilds a *contiguous* layer span per
                # stage; interleaved schedules scatter each stage's
                # chunks across the pipeline, so replay is unsupported
                feasibility = replace(
                    feasibility,
                    worth_it=False,
                    reason=(
                        f"schedule {par.schedule!r} interleaves "
                        f"{virtual_stages} virtual stages per worker; "
                        "logging replay needs contiguous stages — using "
                        "checkpoints"
                    ),
                )
            if (
                virtual_stages > 1
                and ft.strategy == FTStrategy.LOGGING.value
            ):
                raise ConfigurationError(
                    "strategy 'logging' cannot replay interleaved "
                    f"schedules (schedule {par.schedule!r} uses "
                    f"{virtual_stages} virtual stages per worker); use "
                    "'auto' or 'checkpoint_only'"
                )
        if ft.strategy == "auto":
            strategy = choose_strategy(
                layout, feasibility,
                optimizer_name=self.model.table1_optimizer,
            )
            source = "auto"
        else:
            try:
                strategy = FTStrategy(ft.strategy)
            except ValueError:
                strategy = ft.strategy  # custom-registered policy name
            source = "explicit"
            if (
                strategy is FTStrategy.REPLICATION
                and not layout.replication_covers_all_failures()
            ):
                raise ConfigurationError(
                    "strategy 'replication' needs a surviving replica for "
                    "every machine failure; spread workers over >= 2 "
                    "machines"
                )
        selective = None
        if (
            strategy is FTStrategy.LOGGING
            and ft.log_budget_bytes is not None
        ):
            selective = self._plan_selective_logging(placement, log_bytes)
        scenario_name = rate = expected = goodput = None
        chaos_spec = ft.resolve_scenario()
        if chaos_spec is not None:
            scenario_name = chaos_spec.name
            n = self.cluster.num_machines
            rate = chaos_spec.rate_per_hour(n)
            expected = chaos_spec.expected_failures(n)
            goodput = self._expected_goodput(chaos_spec, strategy, expected)
        return ExecutionPlan(
            experiment=self,
            engine_kind=par.kind,
            placement=placement,
            partition_sizes=self.resolved_partition_sizes(),
            layout=layout,
            strategy=strategy,
            strategy_source=source,
            feasibility=feasibility,
            predicted_log_bytes_per_iteration=log_bytes,
            model_state_bytes=state_bytes,
            checkpoint_prefix=ft.checkpoint_prefix,
            checkpoint_interval=ft.checkpoint_interval,
            incremental_checkpoints=ft.incremental_checkpoints,
            schedule=par.schedule,
            virtual_stages=virtual_stages,
            selective=selective,
            scenario=scenario_name,
            predicted_failure_rate_per_hour=rate,
            expected_failures=expected,
            expected_goodput_fraction=goodput,
        )

    def _expected_goodput(
        self, chaos_spec, strategy, expected_failures: float
    ) -> float:
        """Availability estimate under a scenario (plan-time, analytic).

        Useful time over useful time plus expected recovery cost, for a
        ``default_iters``-iteration run mapped over the scenario
        horizon.  Lost work per failure is half a checkpoint interval
        (checkpoint restart), divided by the parallel-replay degree for
        logging, and zero for replication (update-undo loses nothing).
        """
        ft = self.fault_tolerance
        if self.parallelism.kind == "pp":
            iter_time = self._iteration_time_estimate()
        else:
            iter_time = DEFAULT_FWD_TIME + DEFAULT_BWD_TIME
        if strategy is FTStrategy.REPLICATION:
            lost_iters = 0.0
        elif strategy is FTStrategy.LOGGING:
            lost_iters = ft.checkpoint_interval / 2.0 / max(
                1, ft.parallel_recovery_degree
            )
        else:
            lost_iters = ft.checkpoint_interval / 2.0
        # detection is ~0.1 s of simulated time; provisioning dominates
        per_failure = ft.replacement_join_time + 0.1 + lost_iters * iter_time
        useful = chaos_spec.default_iters * iter_time
        return useful / (useful + expected_failures * per_failure)

    def _plan_selective_logging(
        self,
        placement: tuple[tuple[int, int], ...],
        log_bytes: float,
    ) -> PlanResult:
        """Section 5.3 grouping under the spec's storage budget."""
        par = self.parallelism
        machine_order: list[int] = []
        stages_per_machine: dict[int, int] = {}
        for machine, _ in placement:
            if machine not in stages_per_machine:
                machine_order.append(machine)
            stages_per_machine[machine] = (
                stages_per_machine.get(machine, 0) + 1
            )
        per_stage = DEFAULT_FWD_TIME + DEFAULT_BWD_TIME
        compute = tuple(
            par.num_microbatches * stages_per_machine[m] * per_stage
            for m in machine_order
        )
        boundaries = tuple(
            [log_bytes] * (len(machine_order) - 1)
        )
        planner = SelectiveLoggingPlanner(
            PipelineProfile(compute, boundaries),
            checkpoint_interval=self.fault_tolerance.checkpoint_interval,
            network_bandwidth=self.cluster.bandwidth_model().network,
        )
        return planner.plan(self.fault_tolerance.log_budget_bytes)

    # -- lowering ---------------------------------------------------------
    def build(self, cluster=None, clock=None) -> "Session":
        """Materialize cluster + engine + trainer behind a Session."""
        from repro.api.session import Session

        return Session(self, self.plan(), cluster=cluster, clock=clock)

    def to_job_spec(
        self,
        iterations: int,
        priority: int = 0,
        elastic: bool = False,
        min_workers: int = 1,
        arrival: int = 0,
    ) -> JobSpec:
        """Lower the spec into a fleet-schedulable :class:`JobSpec`.

        The jobs layer rebuilds engines from the spec on whatever slots
        the scheduler grants, so only the workload families it can
        express are accepted (the deterministic MLP classification
        task over DP or PP gangs).
        """
        model, data, par = self.model, self.data, self.parallelism
        if model.family != "mlp" or data.kind != "classification":
            raise ConfigurationError(
                "fleet submission supports the MLP classification "
                f"workload; got model {model.family!r} over data "
                f"{data.kind!r}"
            )
        if par.kind not in ("dp", "pp"):
            raise ConfigurationError(
                f"fleet submission supports 'dp' and 'pp' gangs, "
                f"got {par.kind!r}"
            )
        ft = self.fault_tolerance
        return JobSpec(
            name=self.name,
            parallelism=par.kind,
            num_workers=par.num_workers,
            iterations=iterations,
            priority=priority,
            elastic=elastic,
            min_workers=min_workers,
            arrival=arrival,
            batch_size=data.batch_size,
            checkpoint_interval=ft.checkpoint_interval,
            strategy=ft.strategy,
            incremental_checkpoints=ft.incremental_checkpoints,
            dim=model.dim,
            hidden_dim=model.hidden_dim,
            num_classes=model.num_classes,
            depth=model.depth,
            num_microbatches=par.num_microbatches,
            seed=model.seed,
            task_seed=data.seed,
            optimizer=model.optimizer,
            lr=model.lr,
            momentum=model.momentum,
        )

    def with_(self, **overrides) -> "Experiment":
        """Functional update (frozen dataclass convenience)."""
        return replace(self, **overrides)

    def autoplan(
        self,
        scenario: str | None = None,
        *,
        searcher: str = "auto",
        seed: int = 0,
        eval_seeds: int = 3,
        top_k: int = 5,
        validate_top_k: int = 0,
        validate_seeds: int = 2,
        validate_iterations: int = 60,
        **space_options,
    ):
        """Search (parallelism x recovery x cadence) around this spec.

        Treats this experiment as the anchor of an
        :class:`~repro.plan.ExperimentSearchSpace` — its model, data,
        and cluster are fixed while parallelism kind/degree,
        recovery strategy, checkpoint cadence, parallel-replay degree,
        and selective-logging budget are searched — and returns the
        ranked, deterministic :class:`~repro.plan.PlanSearchReport`.
        ``scenario`` defaults to the spec's own chaos scenario (or
        ``"steady_mtbf"``); ``validate_top_k > 0`` confirms the ranking
        with engine-measured paired runs.  Extra keyword arguments are
        forwarded to the search space (``intervals=...``,
        ``kinds=...``, ...).  The winning :class:`ExecutionPlan` is
        ``space.to_experiment(report.winner).plan()`` stamped with an
        ``autoplan:...`` provenance — see
        :meth:`repro.plan.ExperimentSearchSpace.winning_plan`.

        >>> from repro.api import ClusterSpec, ModelSpec, ParallelismSpec
        >>> exp = Experiment(
        ...     model=ModelSpec(family="mlp", dim=4, hidden_dim=8),
        ...     cluster=ClusterSpec(num_machines=2, devices_per_machine=1),
        ...     parallelism=ParallelismSpec(kind="dp", num_workers=2))
        >>> report = exp.autoplan(eval_seeds=1, top_k=2,
        ...                       kinds=("dp",), intervals=(10, 50))
        >>> report.scenario
        'steady_mtbf'
        >>> (report.winner_score.goodput_samples_per_sec
        ...  >= report.baseline.goodput_samples_per_sec)
        True
        """
        from repro.plan import ExperimentSearchSpace, autoplan

        if scenario is None:
            spec = self.fault_tolerance.resolve_scenario()
            scenario = spec.name if spec is not None else "steady_mtbf"
        space = ExperimentSearchSpace(self, **space_options)
        return autoplan(
            space, scenario, searcher=searcher, seed=seed,
            eval_seeds=eval_seeds, top_k=top_k,
            validate_top_k=validate_top_k, validate_seeds=validate_seeds,
            validate_iterations=validate_iterations,
        )
